"""Exception hierarchy for the Optimus reproduction.

Every exception raised on purpose by this library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` and friends pass
through untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised deliberately by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with invalid or inconsistent parameters.

    Also a :class:`ValueError`: malformed external inputs (trace files,
    scenario specs, CSV rows) are value errors in the standard library's
    sense, and callers holding only stdlib exceptions can still catch
    them without importing :mod:`repro`.
    """


class CapacityError(ReproError):
    """A resource request exceeded the capacity of a server or cluster."""


class PlacementError(ReproError):
    """A task placement could not be produced for the given allocation."""


class SchedulingError(ReproError):
    """The scheduling pipeline hit an unrecoverable inconsistency."""


class FittingError(ReproError):
    """A model fit could not be performed (e.g. too few data points)."""


class SimulationError(ReproError):
    """The discrete-time simulator reached an invalid state."""


class KVStoreError(ReproError):
    """An operation on the etcd-like key/value store failed."""


class TransientKVError(KVStoreError):
    """A KV-store/API operation failed transiently and may be retried.

    Raised by the fault-injection substrate (:class:`repro.faults.FlakyKVStore`)
    and by anything modelling a flaky network hop; callers wrap such
    operations with :mod:`repro.common.retry`.
    """


class FaultInjectionError(ReproError):
    """A fault plan or fault configuration is invalid."""


class ControllerCrashed(ReproError):
    """The scheduler process "died" at an injected controller crash point.

    Raised by :class:`repro.faults.CrashPointInjector` inside
    :meth:`repro.k8s.controller.JobController.reconcile` to simulate the
    pod being killed mid-cycle. Deliberately *not* a :class:`KVStoreError`:
    nothing in the control plane may catch and absorb it -- a dead process
    does not degrade gracefully, it restarts and recovers from the store.
    """


class StaleLeaderError(ReproError):
    """A deposed controller tried to write through its fenced store.

    Raised by :class:`repro.k8s.election.FencedKVStore` when the holder's
    fencing epoch no longer matches the reigning leader record (its lease
    expired, or a successor was elected). Like :class:`ControllerCrashed`,
    deliberately *not* a :class:`KVStoreError`: retry wrappers and the
    reconcile degradation path must never absorb it -- a fenced leader
    does not degrade gracefully, it stands down and (maybe) re-campaigns.
    """


class DataStoreError(ReproError):
    """An operation on the HDFS-like chunk store failed."""
