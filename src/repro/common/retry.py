"""Bounded retry with exponential backoff and deterministic jitter.

The §5.5 substrate (KV store, API server, job controller) must survive
transient failures: a flaky etcd hop should be retried a bounded number of
times with exponentially growing delays, and then fail loudly. This module
is the one retry implementation shared by the whole stack:

* :class:`RetryPolicy` -- the immutable knobs (attempt budget, backoff
  schedule, jitter fraction);
* :func:`call_with_retry` -- run a callable under a policy, with hooks for
  observability (``on_retry`` / ``on_exhausted``) and an injectable
  ``sleep`` so simulations and tests never actually block.

Jitter is drawn from a caller-provided :class:`numpy.random.Generator`
(usually a :class:`~repro.common.rand.RandomSource` child), so two runs
with the same seed back off identically -- randomised retries must not
break simulation reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.common.errors import ConfigurationError, TransientKVError

T = TypeVar("T")

#: Default exception types considered retryable.
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (TransientKVError,)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry knobs.

    ``max_attempts`` counts the *total* number of tries, including the
    first one: a policy with ``max_attempts=4`` retries at most 3 times
    before giving up. Delays grow as ``base_delay * multiplier**(n-1)``,
    capped at ``max_delay``, and are perturbed by ``±jitter`` (a fraction)
    when a generator is supplied.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ConfigurationError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def backoff(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Delay (seconds) after the *attempt*-th failed try (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers start at 1")
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if rng is not None and self.jitter > 0 and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(delay, 0.0)


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    rng: Optional[np.random.Generator] = None,
    sleep: Optional[Callable[[float], None]] = None,
    on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    on_exhausted: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call *fn* under *policy*, retrying the exceptions in *retry_on*.

    ``sleep`` defaults to ``None`` -- no real waiting, which is what a
    simulation wants; pass ``time.sleep`` in a live deployment. ``on_retry``
    fires before each retry with ``(attempt, delay, exc)``; ``on_exhausted``
    fires once with ``(attempts, exc)`` right before the final exception is
    re-raised. Non-retryable exceptions propagate immediately.
    """
    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                if on_exhausted is not None:
                    on_exhausted(attempt, exc)
                raise
            delay = policy.backoff(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if sleep is not None:
                sleep(delay)
