"""Shared low-level helpers used by every other ``repro`` subpackage.

This package deliberately contains no scheduling logic; it only provides

* :mod:`repro.common.errors` -- the exception hierarchy,
* :mod:`repro.common.rand` -- seeded random-number plumbing,
* :mod:`repro.common.retry` -- bounded retry with exponential backoff,
* :mod:`repro.common.units` -- byte/time unit helpers and formatting.
"""

from repro.common.errors import (
    CapacityError,
    ConfigurationError,
    FaultInjectionError,
    FittingError,
    KVStoreError,
    PlacementError,
    ReproError,
    SchedulingError,
    SimulationError,
    TransientKVError,
)
from repro.common.rand import RandomSource, spawn_rng
from repro.common.retry import RetryPolicy, call_with_retry
from repro.common.units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_duration,
    hours,
    minutes,
)

__all__ = [
    "CapacityError",
    "ConfigurationError",
    "FittingError",
    "PlacementError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "KVStoreError",
    "TransientKVError",
    "FaultInjectionError",
    "RandomSource",
    "spawn_rng",
    "RetryPolicy",
    "call_with_retry",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_duration",
    "hours",
    "minutes",
]
