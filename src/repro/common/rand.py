"""Seeded random-number plumbing.

Simulations must be reproducible: a single integer seed has to determine every
stochastic choice (job arrivals, loss noise, straggler events, speed noise).
At the same time, adding one more random draw in one subsystem must not shift
the random stream of every other subsystem. We therefore hand each subsystem
its own child :class:`numpy.random.Generator`, derived from the experiment
seed and a stable textual *label* via ``numpy``'s ``SeedSequence`` spawning.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "RandomSource", None]


def _label_key(label: str) -> int:
    """Map a textual label to a stable 32-bit integer."""
    return zlib.crc32(label.encode("utf8"))


class RandomSource:
    """A named tree of reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment. ``None`` draws a fresh unpredictable
        seed (still recorded in :attr:`seed` for later replay).

    Examples
    --------
    >>> root = RandomSource(7)
    >>> a = root.child("arrivals")
    >>> b = root.child("loss-noise")
    >>> a.rng.random() != b.rng.random()
    True
    >>> (RandomSource(7).child("arrivals").rng.random()
    ...  == RandomSource(7).child("arrivals").rng.random())
    True
    """

    def __init__(self, seed: Optional[int] = None, _entropy: Optional[tuple] = None):
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) % (2**32)
        self.seed = int(seed)
        self._path: tuple = _entropy if _entropy is not None else ()
        self._sequence = np.random.SeedSequence((self.seed,) + self._path)
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The generator for this node; created lazily, then cached."""
        if self._rng is None:
            self._rng = np.random.default_rng(self._sequence)
        return self._rng

    def child(self, label: str) -> "RandomSource":
        """Derive an independent, reproducible child source for *label*."""
        return RandomSource(self.seed, self._path + (_label_key(label),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed}, path={self._path})"


def spawn_rng(seed: SeedLike, label: str = "default") -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts an ``int`` (spawns the labelled child of a fresh
    :class:`RandomSource`), an existing generator (returned as-is), a
    :class:`RandomSource` (its labelled child's generator) or ``None``
    (an unseeded generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RandomSource):
        return seed.child(label).rng
    if seed is None:
        return np.random.default_rng()
    return RandomSource(int(seed)).child(label).rng
