"""Unit constants and human-readable formatting helpers.

All byte quantities in this library are plain ``float``/``int`` bytes and all
durations are seconds; these helpers exist so call sites can say
``128 * MB`` or ``minutes(10)`` instead of sprinkling magic numbers.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

MILLION: int = 1_000_000

#: Bytes per single-precision model parameter (float32).
BYTES_PER_PARAM: int = 4


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * 3600.0


def days(value: float) -> float:
    """Convert days to seconds."""
    return float(value) * 86400.0


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``'128.0 MiB'``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration compactly, e.g. ``'2h 03m'`` or ``'41.2s'``."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    total_minutes, secs = divmod(int(round(seconds)), 60)
    hrs, mins = divmod(total_minutes, 60)
    if hrs == 0:
        return f"{mins}m {secs:02d}s"
    if hrs < 24:
        return f"{hrs}h {mins:02d}m"
    d, hrs = divmod(hrs, 24)
    return f"{d}d {hrs:02d}h"
