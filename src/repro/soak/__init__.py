"""Trace-stream invariant checking for long-horizon soak runs.

The scenario engine and chaos orchestrator live in :mod:`repro.sim.soak`;
this package audits what they (or any ``--trace-out`` run) emit: a
streaming checker over the JSONL event stream asserting no job is ever
lost, no pod/lease/intent leaks past teardown, failed nodes recover
within bounds, checkpoints never regress, and every span tree closes --
plus a self-test that seeds violations and proves they are detected.
"""

from repro.soak.checker import (
    REPORT_VERSION,
    CheckerConfig,
    InvariantChecker,
    Violation,
    check_events,
    check_trace_file,
)
from repro.soak.selftest import SELFTEST_SCENARIO, run_selftest

__all__ = [
    "REPORT_VERSION",
    "CheckerConfig",
    "InvariantChecker",
    "Violation",
    "check_events",
    "check_trace_file",
    "SELFTEST_SCENARIO",
    "run_selftest",
]
