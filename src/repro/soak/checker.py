"""Streaming invariant checking over the JSONL span/trace stream.

Long-horizon chaos runs only prove something if the stream they emit is
*audited*: a soak that "exits 0" can still have lost a job, leaked a pod
or left a node dead forever. :class:`InvariantChecker` consumes trace
events one at a time -- during the run or from a file afterwards -- and
asserts structural invariants over the whole stream:

``seq-monotonic``
    Event sequence numbers strictly increase (stream integrity; a torn or
    re-ordered stream fails loudly instead of passing vacuously).
``unknown-job``
    No completion/restart/checkpoint/allocation references a job that was
    never admitted (``job_arrived``).
``duplicate-completion``
    A job completes at most once.
``lost-job`` / ``completion-missing``
    Reconciled against the terminal ``run_completed`` accounting event:
    every admitted job either completed on-stream or is explicitly
    accounted unfinished -- and every job the runner claims finished has a
    ``job_completed`` event to show for it.
``node-lifecycle`` / ``recovery-overdue``
    ``node_failed``/``node_recovered`` alternate per server, and a failed
    node recovers within its announced ``up_at`` plus a slack bound.
``rollback-bound`` / ``rollback-negative``
    Every ``job_restarted`` rolled back by a bounded amount of simulated
    time (double the bound when the checkpoint itself was lost), and
    never by a negative step count.
``checkpoint-monotonic``
    Recorded checkpoints never regress, except directly after a restart
    that lost its latest checkpoint.
``restart-stall``
    (Opt-in) a restarted job is re-allocated or completes within a bound.
``span-parent-missing``
    Every span's parent eventually closes: the causal tree has no
    dangling edges.
``dual-leader`` / ``epoch-regression`` / ``failover-overdue``
    Leader-election sanity over ``leader_elected``/``leader_deposed``
    events: no election lands while a prior reign was never deposed, the
    fencing epoch strictly increases, and (with ``failover_bound`` set) a
    deposed leadership is re-filled within the bound. ``write_fenced``
    events are counted in stats -- a fenced write is the mechanism
    *working*, not a violation.
``leaked-pod`` / ``leaked-lease`` / ``leaked-intent``
    The terminal accounting reports no pods, leases or write-ahead
    intents still held after teardown.
``accounting-missing`` / ``accounting-duplicate``
    Exactly one ``run_completed`` event (when required).

Violations are :class:`Violation` records naming the invariant, the
offending subject (job / server / lease / intent id) and the event
position; :meth:`InvariantChecker.report` renders the machine-readable
violation report the nightly soak lane uploads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_RECORDED,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESTARTED,
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_NODE_FAILED,
    EVENT_NODE_RECOVERED,
    EVENT_RUN_COMPLETED,
    EVENT_SPAN,
    EVENT_TASK_CRASHED,
    EVENT_WRITE_FENCED,
)

REPORT_VERSION = 1


@dataclass(frozen=True)
class Violation:
    """One invariant breach, pointable to a stream position and subject."""

    invariant: str
    message: str
    subject: Optional[str] = None  # job / server / lease / intent id
    seq: Optional[int] = None
    time: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "subject": self.subject,
            "seq": self.seq,
            "time": self.time,
        }


@dataclass(frozen=True)
class CheckerConfig:
    """Tunable bounds for the stream invariants.

    ``recovery_slack`` is added to a ``node_failed`` event's announced
    ``up_at`` before the outage counts as overdue (the engine only emits
    recoveries at interval boundaries). ``rollback_bound`` bounds
    ``since_checkpoint`` on restarts (``None`` disables; doubled when the
    checkpoint was lost). ``stall_bound`` (opt-in) bounds how long a
    restarted job may go without a fresh allocation. ``require_accounting``
    demands a terminal ``run_completed`` event -- soak runs always emit
    one; standalone ``simulate`` traces do not. ``strict_end`` treats
    admitted-but-unaccounted jobs, still-open outages, and (with
    ``failover_bound``) a still-vacant leadership at end-of-stream as
    violations even without accounting. ``failover_bound`` bounds how
    long a deposed leadership may stay vacant before a successor's
    ``leader_elected`` must appear (``None`` disables; a sensible value
    is 2x the election lease TTL).
    """

    recovery_slack: float = 1800.0
    rollback_bound: Optional[float] = None
    stall_bound: Optional[float] = None
    require_accounting: bool = False
    strict_end: bool = False
    failover_bound: Optional[float] = None


class InvariantChecker:
    """Feed events with :meth:`observe`; collect breaches via :meth:`finish`."""

    def __init__(self, config: Optional[CheckerConfig] = None):
        self.config = config or CheckerConfig()
        self.violations: List[Violation] = []
        self.counts: Counter = Counter()
        self._last_seq: Optional[int] = None
        self._now = 0.0  # high-water simulated time
        self._arrived: Dict[str, int] = {}
        self._completed: Set[str] = set()
        self._allocated_ever: Set[str] = set()
        # server -> [fail_time, up_at, seq, overdue_seen_at]; the last slot
        # records the stream time at which the outage first looked overdue
        # (see _check_overdue_outages). Flagged outages are removed.
        self._outages: Dict[str, list] = {}
        self._restart_pending: Dict[str, float] = {}  # job -> restart time
        self._checkpoints: Dict[str, float] = {}  # job -> last steps
        self._ckpt_regress_ok: Set[str] = set()  # lost-checkpoint restarts
        self._span_ids: Set[int] = set()
        self._span_parents: Dict[int, tuple] = {}  # parent_id -> (seq, time)
        self._accounting: Optional[Dict] = None
        self._finished = False
        # Leader-election state: the open reign, every epoch ever deposed
        # (duplicate depositions are tolerated -- an ex-leader and the
        # successor may both trace the same reign's end), the max epoch
        # seen, and when the leadership fell vacant (high-water clock, so
        # multi-phase streams with restarting clocks don't false-flag).
        self._reigning: Optional[tuple] = None  # (leader, epoch)
        self._deposed_epochs: Set[int] = set()
        self._max_epoch: Optional[int] = None
        self._vacant_since: Optional[float] = None

    # -- helpers -----------------------------------------------------------------
    def _flag(
        self,
        invariant: str,
        message: str,
        subject: Optional[str] = None,
        event: Optional[Dict] = None,
    ) -> Violation:
        violation = Violation(
            invariant=invariant,
            message=message,
            subject=subject,
            seq=event.get("seq") if event else None,
            time=event.get("time") if event else None,
        )
        self.violations.append(violation)
        return violation

    def _check_overdue_outages(self, event: Dict) -> None:
        """Flag outages whose recovery window has demonstrably passed.

        The engine only emits recoveries at *processed* scheduling
        boundaries, and an idle cluster skips boundaries entirely -- so a
        node due back mid-trough legitimately recovers (in stream order)
        at the first active interval afterwards, possibly behind that
        interval's admission events. The invariant is therefore: once an
        outage looks overdue, the recovery must appear before any event
        with a *strictly later* time. Genuinely lost recoveries still get
        flagged one boundary later (or at end of stream via strict_end).
        """
        slack = self.config.recovery_slack
        for server, state in list(self._outages.items()):
            fail_time, up_at, _seq, overdue_at = state
            deadline = (up_at if up_at is not None else fail_time) + slack
            if self._now <= deadline:
                continue
            if overdue_at is None:
                state[3] = self._now  # grace: same-boundary recovery may follow
                continue
            if self._now > overdue_at:
                self._flag(
                    "recovery-overdue",
                    f"server {server!r} failed at t={fail_time:.0f} and was "
                    f"due back by t={deadline:.0f}, but no node_recovered "
                    f"was seen by t={self._now:.0f}",
                    subject=server,
                    event=event,
                )
                del self._outages[server]  # flag once, not per event

    def _check_overdue_failover(self, event: Dict) -> None:
        bound = self.config.failover_bound
        if bound is None or self._vacant_since is None:
            return
        if self._now > self._vacant_since + bound:
            self._flag(
                "failover-overdue",
                f"the leadership fell vacant at t={self._vacant_since:.0f} "
                f"and no successor was elected within {bound:.0f}",
                event=event,
            )
            self._vacant_since = None  # flag once, not per event

    def _check_stalled_restarts(self, event: Dict) -> None:
        bound = self.config.stall_bound
        if bound is None:
            return
        for job_id, restarted_at in list(self._restart_pending.items()):
            if self._now > restarted_at + bound:
                self._flag(
                    "restart-stall",
                    f"job {job_id!r} restarted at t={restarted_at:.0f} but "
                    f"received no allocation within {bound:.0f}s",
                    subject=job_id,
                    event=event,
                )
                del self._restart_pending[job_id]

    def _known(self, job_id: Optional[str], event: Dict) -> bool:
        if job_id is None:
            return False
        if job_id in self._arrived:
            return True
        self._flag(
            "unknown-job",
            f"{event['event']} references job {job_id!r} which never arrived",
            subject=job_id,
            event=event,
        )
        return False

    # -- the stream --------------------------------------------------------------
    def observe(self, event: Dict) -> List[Violation]:
        """Consume one event; returns violations *newly* detected by it."""
        before = len(self.violations)
        kind = event.get("event")
        self.counts[kind] += 1

        seq = event.get("seq")
        if isinstance(seq, int):
            if self._last_seq is not None and seq <= self._last_seq:
                self._flag(
                    "seq-monotonic",
                    f"seq went from {self._last_seq} to {seq}; the stream is "
                    "torn, reordered, or two runs were concatenated",
                    event=event,
                )
            self._last_seq = seq

        time = event.get("time")
        if isinstance(time, (int, float)):
            # Phases may restart their clock (the drill loop counts steps
            # from 0); invariant deadlines use the high-water mark.
            self._now = max(self._now, float(time))

        job_id = event.get("job_id")
        if kind == EVENT_JOB_ARRIVED:
            if job_id in self._arrived:
                self._flag(
                    "duplicate-arrival",
                    f"job {job_id!r} arrived twice",
                    subject=job_id,
                    event=event,
                )
            elif job_id is not None:
                self._arrived[job_id] = seq if isinstance(seq, int) else -1
        elif kind == EVENT_JOB_COMPLETED:
            if self._known(job_id, event):
                if job_id in self._completed:
                    self._flag(
                        "duplicate-completion",
                        f"job {job_id!r} completed twice",
                        subject=job_id,
                        event=event,
                    )
                self._completed.add(job_id)
            self._restart_pending.pop(job_id, None)
        elif kind == EVENT_ALLOCATION_DECIDED:
            self._known(job_id, event)
            self._allocated_ever.add(job_id)
            self._restart_pending.pop(job_id, None)
        elif kind == EVENT_TASK_CRASHED:
            self._known(job_id, event)
        elif kind == EVENT_JOB_RESTARTED:
            if self._known(job_id, event):
                self._restart_pending[job_id] = self._now
            steps_lost = event.get("steps_lost")
            if isinstance(steps_lost, (int, float)) and steps_lost < 0:
                self._flag(
                    "rollback-negative",
                    f"job {job_id!r} restarted with negative steps_lost "
                    f"{steps_lost}",
                    subject=job_id,
                    event=event,
                )
            since = event.get("since_checkpoint")
            bound = self.config.rollback_bound
            if bound is not None and isinstance(since, (int, float)):
                limit = bound * (2.0 if event.get("checkpoint_lost") else 1.0)
                if since > limit:
                    self._flag(
                        "rollback-bound",
                        f"job {job_id!r} rolled back {since:.0f}s of progress "
                        f"(bound {limit:.0f}s)",
                        subject=job_id,
                        event=event,
                    )
            if event.get("checkpoint_lost"):
                self._ckpt_regress_ok.add(job_id)
        elif kind == EVENT_CHECKPOINT_RECORDED:
            if self._known(job_id, event):
                steps = event.get("steps")
                last = self._checkpoints.get(job_id)
                if (
                    isinstance(steps, (int, float))
                    and last is not None
                    and steps < last
                    and job_id not in self._ckpt_regress_ok
                ):
                    self._flag(
                        "checkpoint-monotonic",
                        f"job {job_id!r} checkpoint regressed from {last:.0f} "
                        f"to {steps:.0f} steps without a lost checkpoint",
                        subject=job_id,
                        event=event,
                    )
                if isinstance(steps, (int, float)):
                    self._checkpoints[job_id] = float(steps)
                self._ckpt_regress_ok.discard(job_id)
        elif kind == EVENT_NODE_FAILED:
            server = event.get("server")
            if server in self._outages:
                self._flag(
                    "node-lifecycle",
                    f"server {server!r} failed twice without recovering",
                    subject=server,
                    event=event,
                )
            elif server is not None:
                self._outages[server] = [
                    float(time) if isinstance(time, (int, float)) else self._now,
                    event.get("up_at"),
                    seq,
                    None,
                ]
        elif kind == EVENT_NODE_RECOVERED:
            server = event.get("server")
            if server not in self._outages:
                self._flag(
                    "node-lifecycle",
                    f"server {server!r} recovered without a preceding failure "
                    "(or after its outage was already flagged overdue)",
                    subject=server,
                    event=event,
                )
            else:
                del self._outages[server]
        elif kind == EVENT_SPAN:
            span_id = event.get("span_id")
            if isinstance(span_id, int):
                self._span_ids.add(span_id)
                self._span_parents.pop(span_id, None)
            parent_id = event.get("parent_id")
            if isinstance(parent_id, int) and parent_id not in self._span_ids:
                # Parents close after their children; remember the edge and
                # resolve it when (if) the parent's span event arrives.
                self._span_parents.setdefault(parent_id, (seq, time))
        elif kind == EVENT_LEADER_ELECTED:
            leader = event.get("leader")
            epoch = event.get("epoch")
            if (
                self._reigning is not None
                and self._reigning[1] not in self._deposed_epochs
            ):
                self._flag(
                    "dual-leader",
                    f"{leader!r} elected (epoch {epoch}) while "
                    f"{self._reigning[0]!r} (epoch {self._reigning[1]}) was "
                    "never deposed -- a split brain",
                    subject=leader,
                    event=event,
                )
            if isinstance(epoch, int):
                if self._max_epoch is not None and epoch <= self._max_epoch:
                    self._flag(
                        "epoch-regression",
                        f"epoch {epoch} elected after epoch {self._max_epoch} "
                        "already existed; fencing tokens must strictly "
                        "increase",
                        subject=leader,
                        event=event,
                    )
                self._max_epoch = max(self._max_epoch or 0, epoch)
            self._reigning = (leader, epoch)
            self._vacant_since = None
        elif kind == EVENT_LEADER_DEPOSED:
            epoch = event.get("epoch")
            if isinstance(epoch, int):
                self._deposed_epochs.add(epoch)
            if self._reigning is not None and self._reigning[1] == epoch:
                self._reigning = None
                # A voluntary resign (clean shutdown) leaves the seat
                # vacant on purpose; only an involuntary reign-end starts
                # the failover clock demanding a successor.
                if event.get("reason") != "resign":
                    self._vacant_since = self._now
        elif kind == EVENT_WRITE_FENCED:
            pass  # the fence working as designed; counted in stats
        elif kind == EVENT_RUN_COMPLETED:
            if self._accounting is not None:
                self._flag(
                    "accounting-duplicate",
                    "run_completed emitted more than once",
                    event=event,
                )
            self._accounting = event

        self._check_overdue_outages(event)
        self._check_overdue_failover(event)
        self._check_stalled_restarts(event)
        return self.violations[before:]

    def observe_all(self, events: Sequence[Dict]) -> None:
        for event in events:
            self.observe(event)

    # -- end of stream -----------------------------------------------------------
    def finish(self) -> List[Violation]:
        """Close the stream: run the invariants that need the whole of it."""
        if self._finished:
            return self.violations
        self._finished = True
        cfg = self.config

        for parent_id, (seq, time) in sorted(self._span_parents.items()):
            self._flag(
                "span-parent-missing",
                f"span parent {parent_id} never closed: the causal tree has "
                "a dangling edge (crashed scope or truncated stream)",
                subject=str(parent_id),
                event={"seq": seq, "time": time},
            )

        accounting = self._accounting
        if accounting is None:
            if cfg.require_accounting:
                self._flag(
                    "accounting-missing",
                    "no run_completed accounting event found in the stream",
                )
            if cfg.strict_end:
                for job_id in sorted(set(self._arrived) - self._completed):
                    self._flag(
                        "lost-job",
                        f"job {job_id!r} arrived but never completed and no "
                        "accounting explains it",
                        subject=job_id,
                    )
        else:
            declared_finished = set(accounting.get("finished") or ())
            declared_unfinished = set(accounting.get("unfinished") or ())
            for job_id in sorted(declared_finished - self._completed):
                self._flag(
                    "completion-missing",
                    f"accounting says job {job_id!r} finished but the stream "
                    "has no job_completed event for it",
                    subject=job_id,
                )
            lost = set(self._arrived) - self._completed - declared_unfinished
            for job_id in sorted(lost):
                self._flag(
                    "lost-job",
                    f"job {job_id!r} arrived but neither completed nor is "
                    "accounted unfinished",
                    subject=job_id,
                )
            for key, invariant, noun in (
                ("leaked_pods", "leaked-pod", "pod"),
                ("leaked_leases", "leaked-lease", "lease"),
                ("leaked_intents", "leaked-intent", "intent"),
            ):
                for leaked in accounting.get(key) or ():
                    self._flag(
                        invariant,
                        f"{noun} {leaked!r} still held after teardown",
                        subject=str(leaked),
                    )

        if cfg.strict_end:
            # Only outages whose recovery window has demonstrably passed
            # count; a crash near the end of stream whose ``up_at`` lies
            # beyond the last event is legitimately still in its window.
            slack = cfg.recovery_slack
            for server, (fail_time, up_at, seq, _due) in sorted(
                self._outages.items()
            ):
                deadline = (up_at if up_at is not None else fail_time) + slack
                if self._now <= deadline:
                    continue
                self._flag(
                    "recovery-overdue",
                    f"server {server!r} was still down at end of stream "
                    f"(failed at t={fail_time:.0f}, due back by "
                    f"t={deadline:.0f})",
                    subject=server,
                    event={"seq": seq, "time": fail_time},
                )
            # A leadership still vacant past its bound at end of stream
            # (a clean resign never starts the clock: reason="resign").
            bound = cfg.failover_bound
            if (
                bound is not None
                and self._vacant_since is not None
                and self._now > self._vacant_since + bound
            ):
                self._flag(
                    "failover-overdue",
                    "the leadership was still vacant at end of stream "
                    f"(vacant since t={self._vacant_since:.0f}, bound "
                    f"{bound:.0f})",
                )
        return self.violations

    # -- reporting ---------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def stats(self) -> Dict:
        return {
            "events": int(sum(self.counts.values())),
            "event_counts": {k: int(v) for k, v in sorted(self.counts.items())},
            "jobs_arrived": len(self._arrived),
            "jobs_completed": len(self._completed),
            "restarts": int(self.counts.get(EVENT_JOB_RESTARTED, 0)),
            "node_failures": int(self.counts.get(EVENT_NODE_FAILED, 0)),
            "open_outages": sorted(self._outages),
            "has_accounting": self._accounting is not None,
            "leader_terms": int(self.counts.get(EVENT_LEADER_ELECTED, 0)),
            "fenced_writes": int(self.counts.get(EVENT_WRITE_FENCED, 0)),
            "max_epoch": self._max_epoch,
        }

    def report(self, extra: Optional[Dict] = None) -> Dict:
        """The machine-readable violation report (nightly CI artifact)."""
        payload = {
            "report_version": REPORT_VERSION,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "stats": self.stats(),
        }
        if extra:
            payload.update(extra)
        return payload


def check_events(
    events: Sequence[Dict], config: Optional[CheckerConfig] = None
) -> InvariantChecker:
    """Run the checker over an in-memory event list; returns it finished."""
    checker = InvariantChecker(config)
    checker.observe_all(events)
    checker.finish()
    return checker


def check_trace_file(
    path: str, config: Optional[CheckerConfig] = None
) -> InvariantChecker:
    """Run the checker over a JSONL trace file (tolerant of torn lines).

    Skipped (corrupt) line counts surface in the report's stats; a trace
    that is *mostly* garbage still produces a verdict on what survived.
    """
    from repro.obs.tracer import read_trace_tolerant

    events, skipped = read_trace_tolerant(path)
    checker = InvariantChecker(config)
    checker.counts["_corrupt_lines"] = skipped
    checker.observe_all(events)
    checker.finish()
    return checker


Events = Union[str, Sequence[Dict]]
