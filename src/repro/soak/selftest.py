"""Fault injection for the fault checker: prove violations are detectable.

An invariant checker that never fires is indistinguishable from one that
works. The self-test runs a small clean soak scenario (which must pass),
then *tampers with the stream* -- dropping the first ``job_completed``
(the teardown record for a finished job) and, separately, the first
``node_recovered`` (the lease-revoke/recovery record for a failed node)
-- and asserts the checker reports each seeded violation, naming the
offending job or server. ``repro soak --self-test`` runs this in CI, so a
regression that silently blinds an invariant fails the build.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.tracer import EVENT_JOB_COMPLETED, EVENT_NODE_RECOVERED

#: A small scenario with one planned node crash: finishes in seconds, yet
#: exercises completions, checkpoints, an outage and the accounting event.
SELFTEST_SCENARIO: Dict = {
    "name": "checker-selftest",
    "seed": 0,
    "servers": 6,
    "horizon": 86_400.0,
    "interval": 600.0,
    "checkpoint_interval": 600.0,
    "workload": [{"arrivals": "uniform", "jobs": 3, "window": 1_200.0}],
    "plan": {
        "node_crashes": [{"time": 900.0, "server": "node-1", "duration": 900.0}]
    },
    "checker": {"recovery_slack": 600.0, "strict_end": True},
}


def _drop_first(events: List[Dict], kind: str) -> Optional[Dict]:
    """Remove the first event of *kind* in place; returns it (or None)."""
    for i, event in enumerate(events):
        if event.get("event") == kind:
            return events.pop(i)
    return None


def run_selftest(seed: int = 0) -> Dict:
    """Run the checker self-test; returns a machine-readable verdict.

    ``{"ok": bool, "cases": [{name, expected, subject, detected, ...}]}``
    -- ``ok`` requires the untampered baseline to be clean AND every
    seeded violation to be detected with the right subject.
    """
    from repro.sim.soak import ScenarioSpec, checker_config_from_spec, run_soak
    from repro.soak.checker import check_events

    spec = dict(SELFTEST_SCENARIO)
    spec["seed"] = seed
    scenario = ScenarioSpec.from_dict(spec)
    outcome = run_soak(scenario)
    cases = [
        {
            "name": "baseline-clean",
            "expected": None,
            "subject": None,
            "detected": outcome.ok,
            "violations": [v.to_dict() for v in outcome.violations],
        }
    ]

    cfg = checker_config_from_spec(scenario.checker, interval=scenario.interval)
    tampered_specs = (
        # A finished job whose teardown record vanished from the stream.
        ("dropped-completion", EVENT_JOB_COMPLETED, "job_id",
         ("completion-missing", "lost-job")),
        # A failed node whose recovery (lease revoke) never made the stream.
        ("dropped-recovery", EVENT_NODE_RECOVERED, "server",
         ("recovery-overdue",)),
    )
    for name, kind, subject_key, expected in tampered_specs:
        events = [dict(e) for e in outcome.events]
        dropped = _drop_first(events, kind)
        if dropped is None:
            cases.append(
                {
                    "name": name,
                    "expected": list(expected),
                    "subject": None,
                    "detected": False,
                    "error": f"scenario emitted no {kind} event to drop",
                }
            )
            continue
        subject = dropped.get(subject_key)
        checker = check_events(events, cfg)
        hits = [
            v.to_dict()
            for v in checker.violations
            if v.invariant in expected and v.subject == subject
        ]
        cases.append(
            {
                "name": name,
                "expected": list(expected),
                "subject": subject,
                "detected": bool(hits),
                "violations": hits,
            }
        )

    return {"ok": all(case["detected"] for case in cases), "cases": cases}
