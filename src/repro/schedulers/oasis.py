"""OASiS-style online primal-dual admission (Bao et al., INFOCOM 2018).

Where Optimus re-optimises the whole cluster every interval, OASiS treats
scheduling as an *online* problem: jobs are considered in arrival order and
admitted (or not) against **resource prices** that rise with utilization.
The primal-dual template:

* each resource ``r`` carries a dual price that grows exponentially with
  its utilization fraction ``y_r``::

      price_r(y_r) = L * (U / L) ** y_r

  where ``U`` is the highest utility density any job can offer (so a full
  resource prices out everything) and ``L = U / price_range`` is the floor
  (so an empty resource admits anything with positive utility);

* a job is admitted with the candidate configuration maximising its
  **surplus** -- utility minus the priced cost of its demand -- provided
  the surplus is positive and the demand physically fits;

* every grant raises utilization, hence prices, hence the bar for later
  jobs: early cheap admissions, late selective ones.

Utility here is the job's predicted **goodput** (see
:meth:`repro.schedulers.base.JobView.goodput`): effective convergence
progress per second. Candidate configurations are 1-worker:1-PS bundles
(§6.1 pins the baselines' ratio), on a doubling ladder so a round over
``J`` jobs costs ``O(J log max_tasks)`` speed evaluations.

The allocator is stateless across intervals: prices are rebuilt from zero
utilization each round, so a paused job is simply re-auctioned next time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.cluster.resources import ResourceVector
from repro.core.allocation import TaskAllocation
from repro.obs.ledger import active_ledger
from repro.schedulers.base import JobView
from repro.schedulers.composite import CompositeScheduler
from repro.schedulers.registry import register_allocation, register_scheduler

#: Ratio between the highest and lowest resource price: ``price_range = U/L``.
#: Larger values admit more aggressively on an empty cluster and clamp
#: harder near saturation.
DEFAULT_PRICE_RANGE = 64.0


def _bundle_ladder(max_tasks: int, requested: int) -> List[int]:
    """Candidate bundle counts: doubling ladder plus the owner's request."""
    sizes = set()
    n = 1
    while n <= max_tasks:
        sizes.add(n)
        n *= 2
    if 1 <= requested <= max_tasks:
        sizes.add(requested)
    sizes.add(max_tasks)
    return sorted(sizes)


def _normalized(demand: ResourceVector, capacity: ResourceVector) -> float:
    """Total capacity-normalised size of *demand* (sum over resources)."""
    total = 0.0
    for name, amount in demand.items():
        cap = capacity.get(name)
        if cap > 0:
            total += amount / cap
    return total


def oasis_allocation(
    jobs: Sequence[JobView],
    capacity: ResourceVector,
    max_tasks_per_job: int = 100,
    price_range: float = DEFAULT_PRICE_RANGE,
) -> Dict[str, TaskAllocation]:
    """One online primal-dual round over the active jobs.

    Jobs are processed in ``(arrival_time, job_id)`` order -- the online
    arrival sequence -- and each either wins its surplus-maximising bundle
    count or is deferred to the next interval. Grants never exceed
    *capacity* (every candidate is checked with ``fits_within`` before
    admission), which is the invariant the property tests pin down.
    """
    if price_range <= 1.0:
        raise ValueError("price_range must be > 1")
    ordered = sorted(jobs, key=lambda v: (v.spec.arrival_time, v.job_id))
    ledger = active_ledger()
    if ledger:
        ledger.begin_round()

    # Precompute each job's candidate bundles and utilities; establish U,
    # the best utility density on offer, which anchors the price curve.
    candidates: Dict[str, List[dict]] = {}
    best_density = 0.0
    for view in ordered:
        bundle = view.spec.worker_demand + view.spec.ps_demand
        options = []
        for n in _bundle_ladder(max_tasks_per_job, view.spec.requested_workers):
            utility = view.goodput(n, n)
            if utility <= 0.0:
                continue
            demand = bundle * n
            size = _normalized(demand, capacity)
            if size <= 0.0:
                continue
            options.append({"n": n, "utility": utility, "demand": demand})
            best_density = max(best_density, utility / size)
        candidates[view.job_id] = options
    if best_density <= 0.0:
        if ledger:
            for view in ordered:
                ledger.record_denial(view.job_id, "converged_yield")
            ledger.end_round()
        return {}

    upper = best_density
    lower = upper / price_range

    def price(fraction: float) -> float:
        return lower * math.pow(upper / lower, min(max(fraction, 0.0), 1.0))

    used = ResourceVector()
    allocations: Dict[str, TaskAllocation] = {}
    for view in ordered:
        best = None
        best_surplus = 0.0
        second_surplus = None
        any_fit = False
        for option in candidates[view.job_id]:
            demand = option["demand"]
            if not (used + demand).fits_within(capacity):
                continue
            any_fit = True
            cost = 0.0
            for name, amount in demand.items():
                cap = capacity.get(name)
                if cap > 0:
                    cost += price(used.get(name) / cap) * (amount / cap)
            surplus = option["utility"] - cost
            if surplus > best_surplus:
                second_surplus = best_surplus if best is not None else None
                best_surplus = surplus
                best = option
            elif best is not None and (
                second_surplus is None or surplus > second_surplus
            ):
                second_surplus = surplus
        if best is None:
            # Priced out (or nothing fits): deferred, not starved.
            if ledger:
                if not candidates[view.job_id]:
                    reason = "converged_yield"  # no positive-utility bundle
                elif not any_fit:
                    reason = "capacity_exhausted"
                else:
                    reason = "price_rejected"
                ledger.record_denial(view.job_id, reason)
            continue
        used = used + best["demand"]
        allocations[view.job_id] = TaskAllocation(best["n"], best["n"])
        if ledger:
            # runner_up_gap here is the winning bundle's surplus edge over
            # the job's own second-best bundle (a single-bidder auction).
            ledger.record_grant(
                view.job_id,
                "bundle",
                best_surplus,
                best["n"],
                best["n"],
                runner_up_gap=(
                    best_surplus - second_surplus
                    if second_surplus is not None
                    else None
                ),
            )
    if ledger:
        ledger.end_round()
    return allocations


register_allocation("oasis", oasis_allocation)


@register_scheduler("oasis")
class OasisScheduler(CompositeScheduler):
    """OASiS-style online admission + packing placement.

    Packing placement suits the admission model: granted bundles are packed
    densely so later (higher-priced) arrivals still find contiguous room.
    """

    def __init__(
        self,
        price_range: float = DEFAULT_PRICE_RANGE,
        name: str = "oasis",
    ):
        super().__init__(
            "oasis",
            "pack",
            name=name,
            price_range=price_range,
        )
