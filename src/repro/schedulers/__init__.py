"""Schedulers: Optimus, the paper's baselines and ablation hybrids.

Importing this package loads every built-in policy module, so all of them
self-register with :mod:`repro.schedulers.registry` -- resolve them by name
through :func:`make_scheduler` / :func:`resolve_scheduler`.
"""

from repro.schedulers.base import JobView, Scheduler, SchedulingDecision
from repro.schedulers.composite import (
    CompositeScheduler,
    DRFScheduler,
    FIFOScheduler,
    OptimusScheduler,
    SRTFScheduler,
    TetrisScheduler,
    make_scheduler,
)
from repro.schedulers.goodput import GoodputScheduler, goodput_allocation
from repro.schedulers.oasis import OasisScheduler, oasis_allocation
from repro.schedulers.policies import (
    ALLOCATION_POLICIES,
    PLACEMENT_POLICIES,
    drf_allocation,
    fifo_allocation,
    optimus_allocation,
    optimus_placement,
    pack_placement,
    spread_placement,
    srtf_allocation,
    tetris_allocation,
)
from repro.schedulers.registry import (
    ALLOCATION_REGISTRY,
    PLACEMENT_REGISTRY,
    POLICY_ENV_VAR,
    SCHEDULER_REGISTRY,
    available_policies,
    default_policy,
    register_allocation,
    register_placement,
    register_scheduler,
    resolve_allocation,
    resolve_placement,
    resolve_scheduler,
)

__all__ = [
    "Scheduler",
    "JobView",
    "SchedulingDecision",
    "CompositeScheduler",
    "OptimusScheduler",
    "DRFScheduler",
    "TetrisScheduler",
    "FIFOScheduler",
    "SRTFScheduler",
    "GoodputScheduler",
    "OasisScheduler",
    "make_scheduler",
    "ALLOCATION_POLICIES",
    "PLACEMENT_POLICIES",
    "ALLOCATION_REGISTRY",
    "PLACEMENT_REGISTRY",
    "SCHEDULER_REGISTRY",
    "POLICY_ENV_VAR",
    "available_policies",
    "default_policy",
    "register_scheduler",
    "register_allocation",
    "register_placement",
    "resolve_scheduler",
    "resolve_allocation",
    "resolve_placement",
    "optimus_allocation",
    "drf_allocation",
    "tetris_allocation",
    "fifo_allocation",
    "srtf_allocation",
    "goodput_allocation",
    "oasis_allocation",
    "optimus_placement",
    "spread_placement",
    "pack_placement",
]
