"""Schedulers: Optimus, the paper's baselines and ablation hybrids."""

from repro.schedulers.base import JobView, Scheduler, SchedulingDecision
from repro.schedulers.composite import (
    CompositeScheduler,
    DRFScheduler,
    FIFOScheduler,
    OptimusScheduler,
    TetrisScheduler,
    make_scheduler,
)
from repro.schedulers.policies import (
    ALLOCATION_POLICIES,
    PLACEMENT_POLICIES,
    drf_allocation,
    fifo_allocation,
    optimus_allocation,
    optimus_placement,
    pack_placement,
    spread_placement,
    srtf_allocation,
    tetris_allocation,
)

__all__ = [
    "Scheduler",
    "JobView",
    "SchedulingDecision",
    "CompositeScheduler",
    "OptimusScheduler",
    "DRFScheduler",
    "TetrisScheduler",
    "FIFOScheduler",
    "make_scheduler",
    "ALLOCATION_POLICIES",
    "PLACEMENT_POLICIES",
    "optimus_allocation",
    "drf_allocation",
    "tetris_allocation",
    "fifo_allocation",
    "srtf_allocation",
    "optimus_placement",
    "spread_placement",
    "pack_placement",
]
