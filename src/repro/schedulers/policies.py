"""Allocation and placement policies, composable into schedulers.

Separating the two halves is what enables the paper's §6.4 ablations: Fig. 18
swaps the allocation policy while keeping Optimus placement, Fig. 19 swaps
the placement policy while keeping Optimus allocation.

Allocation policies (``jobs, capacity -> {job_id: TaskAllocation}``):

* ``optimus`` -- the §4.1 marginal-gain heuristic.
* ``drf``     -- Dominant Resource Fairness, work-conserving, tasks granted
  as 1-worker+1-PS bundles (§6.1 pins the baselines' PS:worker ratio to 1:1).
* ``tetris``  -- Tetris' combined packing + shortest-remaining-time score,
  also in 1:1 bundles.
* ``fifo``    -- arrival order, each job gets exactly its static request.

Placement policies (``cluster, requests -> PlacementResult``):

* ``optimus`` -- §4.2's fewest-servers / even-spread scheme.
* ``spread``  -- load balancing: each task to the least-loaded server
  (Kubernetes' default behaviour, used by the DRF baseline).
* ``pack``    -- Tetris-style: each task to the server whose remaining
  resources align best with the task (minimises fragmentation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.cluster.server import ROLE_PS, ROLE_WORKER, Server
from repro.common.errors import SchedulingError
from repro.core.allocation import (
    AllocationRequest,
    TaskAllocation,
    allocate,
)
from repro.core.placement import (
    JobLayout,
    PlacementRequest,
    PlacementResult,
    place_jobs,
)
from repro.schedulers.base import JobView
from repro.schedulers.registry import (
    ALLOCATION_REGISTRY,
    PLACEMENT_REGISTRY,
    register_allocation,
    register_placement,
)

AllocationPolicy = Callable[[Sequence[JobView], ResourceVector], Dict[str, TaskAllocation]]
PlacementPolicy = Callable[[Cluster, Sequence[PlacementRequest]], PlacementResult]

#: Young-job cut-off for the §4.1 priority downgrade: jobs with fewer
#: observations than this get their marginal gain scaled by the factor.
YOUNG_JOB_OBSERVATIONS = 50


# ---------------------------------------------------------------------------
# Allocation policies
# ---------------------------------------------------------------------------

def optimus_allocation(
    jobs: Sequence[JobView],
    capacity: ResourceVector,
    priority_factor: float = 1.0,
    max_tasks_per_job: int = 100,
) -> Dict[str, TaskAllocation]:
    """The §4.1 marginal-gain allocator over fitted models."""
    requests = []
    for view in jobs:
        young = view.observation_count < YOUNG_JOB_OBSERVATIONS
        requests.append(
            AllocationRequest(
                job_id=view.job_id,
                remaining_work=max(view.remaining_steps, 0.0),
                speed=view.speed,
                worker_demand=view.spec.worker_demand,
                ps_demand=view.spec.ps_demand,
                priority=priority_factor if young else 1.0,
                max_workers=max_tasks_per_job,
                max_ps=max_tasks_per_job,
            )
        )
    result = allocate(requests, capacity)
    return dict(result.allocations)


def _bundle_fits(
    used: ResourceVector, view: JobView, capacity: ResourceVector
) -> bool:
    bundle = view.spec.worker_demand + view.spec.ps_demand
    return (used + bundle).fits_within(capacity)


def drf_allocation(
    jobs: Sequence[JobView],
    capacity: ResourceVector,
    max_tasks_per_job: int = 100,
) -> Dict[str, TaskAllocation]:
    """Work-conserving DRF with 1-worker+1-PS bundles.

    Progressive filling: repeatedly grant a bundle to the job with the
    smallest dominant share until no bundle fits, mirroring the
    fairness-based scheduler the paper compares against.
    """
    allocations = {v.job_id: TaskAllocation(0, 0) for v in jobs}
    used = ResourceVector()
    consumed = {v.job_id: ResourceVector() for v in jobs}
    views = {v.job_id: v for v in jobs}
    active = set(views)
    while active:
        job_id = min(
            active,
            key=lambda j: (consumed[j].dominant_share(capacity), j),
        )
        view = views[job_id]
        alloc = allocations[job_id]
        if alloc.workers >= max_tasks_per_job or not _bundle_fits(
            used, view, capacity
        ):
            active.discard(job_id)
            continue
        bundle = view.spec.worker_demand + view.spec.ps_demand
        used = used + bundle
        consumed[job_id] = consumed[job_id] + bundle
        allocations[job_id] = TaskAllocation(alloc.workers + 1, alloc.ps + 1)
    return {j: a for j, a in allocations.items() if a.workers >= 1}


def tetris_allocation(
    jobs: Sequence[JobView],
    capacity: ResourceVector,
    duration_weight: float = 0.5,
) -> Dict[str, TaskAllocation]:
    """Tetris-style allocation: packing alignment + shortest remaining time.

    Tetris does not resize jobs; it *orders* them. Each job asks for its
    static 1:1 request (§6.1 pins the baselines' PS:worker ratio), and jobs
    are admitted greedily by a weighted sum of (a) how well their demand
    aligns with the remaining resources (favouring dense packing) and
    (b) their inverse remaining duration (favouring short jobs; §6.1 feeds
    Tetris the Optimus estimators for this). Jobs that no longer fit wait
    for the next interval.
    """
    if not 0 <= duration_weight <= 1:
        raise SchedulingError("duration_weight must be in [0, 1]")
    used = ResourceVector()
    views = {v.job_id: v for v in jobs}
    requests = {
        v.job_id: TaskAllocation(
            v.spec.requested_workers, v.spec.requested_workers
        )
        for v in jobs
    }
    allocations: Dict[str, TaskAllocation] = {}
    pending = set(views)

    def score(job_id: str) -> float:
        view = views[job_id]
        request = requests[job_id]
        demand = view.spec.task_demand(request.workers, request.ps)
        available = capacity - used
        # Alignment: normalised dot product of demand with availability.
        alignment = 0.0
        for name, amount in demand.items():
            cap = capacity.get(name)
            if cap > 0:
                alignment += (amount / cap) * (available.get(name) / cap)
        duration = view.estimated_time(request.workers, request.ps)
        urgency = 0.0 if duration in (0.0, float("inf")) else 1.0 / duration
        return (1 - duration_weight) * alignment + duration_weight * urgency

    while pending:
        job_id = max(pending, key=lambda j: (score(j), j))
        pending.discard(job_id)
        view = views[job_id]
        request = requests[job_id]
        demand = view.spec.task_demand(request.workers, request.ps)
        if (used + demand).fits_within(capacity):
            used = used + demand
            allocations[job_id] = request
    return allocations


def srtf_allocation(
    jobs: Sequence[JobView],
    capacity: ResourceVector,
    max_tasks_per_job: int = 100,
) -> Dict[str, TaskAllocation]:
    """Shortest-remaining-time-first: serve jobs one at a time, in full.

    §2.3 motivates size-aware scheduling ("job performance can be improved
    by considering job sizes"); SRTF is its purest form. Jobs are ordered
    by estimated remaining time (at a 4+4 reference configuration) and each
    in turn receives tasks from the leftover capacity until its own
    marginal gains die -- the shortest job gets first pick of the cluster.
    Contrast with Optimus, which equalises marginal gains *globally*.
    """
    ordered = sorted(
        jobs, key=lambda v: (v.estimated_time(4, 4), v.job_id)
    )
    allocations: Dict[str, TaskAllocation] = {}
    remaining = capacity
    for view in ordered:
        result = allocate(
            [
                AllocationRequest(
                    job_id=view.job_id,
                    remaining_work=max(view.remaining_steps, 0.0),
                    speed=view.speed,
                    worker_demand=view.spec.worker_demand,
                    ps_demand=view.spec.ps_demand,
                    max_workers=max_tasks_per_job,
                    max_ps=max_tasks_per_job,
                )
            ],
            remaining,
        )
        alloc = result.allocations.get(view.job_id)
        if alloc is None:
            continue  # not even a starter fits: the job waits
        allocations[view.job_id] = alloc
        consumed = view.spec.task_demand(alloc.workers, alloc.ps)
        remaining = remaining - consumed
    return allocations


def fifo_allocation(
    jobs: Sequence[JobView], capacity: ResourceVector
) -> Dict[str, TaskAllocation]:
    """Arrival-order static allocation: each job gets exactly its request."""
    ordered = sorted(jobs, key=lambda v: (v.spec.arrival_time, v.job_id))
    used = ResourceVector()
    allocations: Dict[str, TaskAllocation] = {}
    for view in ordered:
        demand = view.spec.task_demand(
            view.spec.requested_workers, view.spec.requested_ps
        )
        if (used + demand).fits_within(capacity):
            used = used + demand
            allocations[view.job_id] = TaskAllocation(
                view.spec.requested_workers, view.spec.requested_ps
            )
    return allocations


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------

def optimus_placement(
    cluster: Cluster, requests: Sequence[PlacementRequest]
) -> PlacementResult:
    """§4.2's fewest-servers even-spread placement."""
    return place_jobs(cluster, requests)


def _task_list(request: PlacementRequest) -> List[Tuple[str, ResourceVector, int]]:
    tasks = []
    for i in range(request.workers):
        tasks.append((ROLE_WORKER, request.worker_demand, i))
    for i in range(request.ps):
        tasks.append((ROLE_PS, request.ps_demand, i))
    return tasks


def _place_task_by(
    cluster: Cluster,
    requests: Sequence[PlacementRequest],
    choose: Callable[[Sequence[Server], ResourceVector], Optional[Server]],
) -> PlacementResult:
    """Shared task-at-a-time driver for the spread and pack policies."""
    layouts: Dict[str, JobLayout] = {}
    unplaced: List[str] = []
    for request in requests:
        chosen: List[Tuple[str, str, int, ResourceVector]] = []
        feasible = True
        for role, demand, idx in _task_list(request):
            candidates = [s for s in cluster.servers if s.can_fit(demand)]
            server = choose(candidates, demand) if candidates else None
            if server is None:
                feasible = False
                break
            cluster.place(server.name, (request.job_id, role, idx), demand)
            chosen.append((server.name, role, idx, demand))
        if not feasible:
            for server_name, role, idx, _ in chosen:
                cluster.release(server_name, (request.job_id, role, idx))
            unplaced.append(request.job_id)
            continue
        layout: Dict[str, List[int]] = {}
        for server_name, role, _, _ in chosen:
            counts = layout.setdefault(server_name, [0, 0])
            counts[0 if role == ROLE_WORKER else 1] += 1
        layouts[request.job_id] = {
            name: (c[0], c[1]) for name, c in layout.items()
        }
    return PlacementResult(layouts=layouts, unplaced=tuple(unplaced))


def spread_placement(
    cluster: Cluster, requests: Sequence[PlacementRequest]
) -> PlacementResult:
    """Kubernetes-default load balancing: least-loaded server first."""

    def choose(candidates: Sequence[Server], demand: ResourceVector):
        return max(
            candidates,
            key=lambda s: (s.available.get("cpu"), sum(s.available.values()), s.name),
        )

    return _place_task_by(cluster, requests, choose)


def pack_placement(
    cluster: Cluster, requests: Sequence[PlacementRequest]
) -> PlacementResult:
    """Tetris packing: server whose free resources align best with the task."""

    def choose(candidates: Sequence[Server], demand: ResourceVector):
        def alignment(server: Server) -> float:
            total = 0.0
            for name, amount in demand.items():
                cap = server.capacity.get(name)
                if cap > 0:
                    total += (amount / cap) * (server.available.get(name) / cap)
            return total

        # Highest alignment = fullest server that still fits: dense packing.
        return min(
            candidates,
            key=lambda s: (alignment(s), s.name),
        )

    return _place_task_by(cluster, requests, choose)


register_allocation("optimus", optimus_allocation)
register_allocation("drf", drf_allocation)
register_allocation("tetris", tetris_allocation)
register_allocation("fifo", fifo_allocation)
register_allocation("srtf", srtf_allocation)

register_placement("optimus", optimus_placement)
register_placement("spread", spread_placement)
register_placement("pack", pack_placement)

#: Back-compat aliases of the live registries (policies registered later --
#: e.g. goodput, oasis -- appear here too; see repro.schedulers.registry).
ALLOCATION_POLICIES: Dict[str, AllocationPolicy] = ALLOCATION_REGISTRY
PLACEMENT_POLICIES: Dict[str, PlacementPolicy] = PLACEMENT_REGISTRY
