"""Composing an allocation policy and a placement policy into a scheduler.

:class:`CompositeScheduler` is the workhorse behind every named scheduler in
this library, including the §6.4 ablation hybrids ("Optimus allocation +
DRF placement" and friends).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.common.errors import SchedulingError
from repro.core.allocation import TaskAllocation
from repro.core.placement import (
    JobLayout,
    PlacementCache,
    PlacementRequest,
    _apply_layout,
)
from repro.obs.ledger import active_ledger
from repro.schedulers.base import JobView, Scheduler, SchedulingDecision
from repro.schedulers.policies import ALLOCATION_POLICIES, PLACEMENT_POLICIES  # noqa: F401
from repro.schedulers.registry import (
    register_scheduler,
    resolve_allocation,
    resolve_placement,
    resolve_scheduler,
)


class CompositeScheduler(Scheduler):
    """A scheduler assembled from named policies.

    Parameters
    ----------
    allocation:
        One of ``"optimus"``, ``"drf"``, ``"tetris"``, ``"fifo"``.
    placement:
        One of ``"optimus"``, ``"spread"``, ``"pack"``.
    allocation_kwargs:
        Extra keyword arguments forwarded to the allocation policy (e.g.
        ``priority_factor`` for Optimus).
    placement_cache:
        Opt-in layout memo (see :class:`~repro.core.placement.PlacementCache`):
        jobs whose allocation did not change between scheduling points
        replay their previous layout (after re-validation against the live
        cluster) instead of re-deriving it. Node crash/recovery events
        reported through :meth:`notify_node_events` drop the cache. Off by
        default because replayed layouts can differ from fresh placement.
    """

    def __init__(
        self,
        allocation: str,
        placement: str,
        name: str = None,
        rescale_threshold: float = 0.0,
        placement_cache: bool = False,
        **allocation_kwargs,
    ):
        if rescale_threshold < 0:
            raise SchedulingError("rescale_threshold must be non-negative")
        # Registry lookups raise SchedulingError listing the registered
        # names on a miss -- an unknown policy never surfaces as a KeyError.
        self.allocation_policy = resolve_allocation(allocation)
        self.placement_policy = resolve_placement(placement)
        self.allocation_kwargs = allocation_kwargs
        self.rescale_threshold = float(rescale_threshold)
        self.placement_cache = PlacementCache() if placement_cache else None
        self.name = name or f"{allocation}+{placement}"

    def notify_node_events(self, failed=(), recovered=()) -> None:
        if self.placement_cache is not None and (failed or recovered):
            self.placement_cache.invalidate_all()
            self.metrics.counter("placement.cache_invalidations").inc()

    def _apply_rescale_hysteresis(
        self,
        allocations: Dict[str, TaskAllocation],
        views: Dict[str, JobView],
    ) -> Dict[str, TaskAllocation]:
        """Cost-aware rescaling (§7 "Scaling overhead").

        Changing a job's configuration costs a checkpoint/restart cycle
        (``view.rescale_cost`` seconds). A running job keeps its current
        allocation unless the *estimated completion-time saving* of the new
        one exceeds ``rescale_threshold`` times that cost -- with threshold
        1.0, a job only rescales when the move pays for itself.
        """
        if self.rescale_threshold <= 0:
            return allocations
        adjusted: Dict[str, TaskAllocation] = {}
        for job_id, new_alloc in allocations.items():
            view = views[job_id]
            current = view.current_allocation
            if (
                current.workers < 1
                or current.ps < 1
                or new_alloc == current
                or view.rescale_cost <= 0
            ):
                adjusted[job_id] = new_alloc
                continue
            t_current = view.estimated_time(current.workers, current.ps)
            t_new = view.estimated_time(new_alloc.workers, new_alloc.ps)
            saving = t_current - t_new
            if saving > self.rescale_threshold * view.rescale_cost:
                adjusted[job_id] = new_alloc
            else:
                adjusted[job_id] = current
        return adjusted

    def schedule(
        self, cluster: Cluster, jobs: Sequence[JobView]
    ) -> SchedulingDecision:
        if not jobs:
            return SchedulingDecision()
        views = {v.job_id: v for v in jobs}
        ledger = active_ledger()
        # Allocation works against what is actually free: foreign tenants'
        # pods or background reservations may already occupy the cluster.
        with self.spans.span("allocate", jobs=len(jobs)), self.profiler.phase(
            "allocate"
        ):
            allocations: Dict[str, TaskAllocation] = self.allocation_policy(
                jobs, cluster.total_available, **self.allocation_kwargs
            )
            allocations = self._apply_rescale_hysteresis(allocations, views)
        requests = [
            PlacementRequest(
                job_id=job_id,
                workers=alloc.workers,
                ps=alloc.ps,
                worker_demand=views[job_id].spec.worker_demand,
                ps_demand=views[job_id].spec.ps_demand,
            )
            for job_id, alloc in allocations.items()
            if alloc.workers >= 1 and alloc.ps >= 1
        ]
        with self.spans.span("place", requests=len(requests)), self.profiler.phase(
            "place"
        ):
            cache = self.placement_cache
            layouts: Dict[str, JobLayout] = {}
            fresh = requests
            if cache is not None:
                # Replay validated layouts for unchanged allocations; they
                # occupy the cluster first, so fresh placement packs the
                # remaining jobs around them.
                fresh = []
                hits = 0
                for request in requests:
                    cached = cache.lookup(request)
                    if cached is not None and cache.validate(
                        cluster, request, cached
                    ):
                        _apply_layout(cluster, request, cached)
                        layouts[request.job_id] = cached
                        hits += 1
                        if ledger:
                            ledger.record_placement(
                                request.job_id, "cache", len(cached)
                            )
                    else:
                        fresh.append(request)
                cache.hits += hits
                cache.misses += len(fresh)
                if hits:
                    self.metrics.counter("placement.cache_hits").inc(float(hits))
                if fresh:
                    self.metrics.counter("placement.cache_misses").inc(
                        float(len(fresh))
                    )
            placement = self.placement_policy(cluster, fresh)
            layouts.update(placement.layouts)
            if ledger:
                for job_id, layout in placement.layouts.items():
                    ledger.record_placement(job_id, "fresh", len(layout))
            final_allocations = {
                job_id: alloc
                for job_id, alloc in allocations.items()
                if job_id in layouts
            }
            # Allocation works against aggregate capacity (constraint (7)),
            # so fragmentation can make a granted allocation unplaceable.
            # Rather than pausing such a job for the whole interval (which
            # would starve large jobs indefinitely under a persistent load),
            # shrink its task counts and retry until it fits or even (1, 1)
            # is rejected.
            # Capacity only shrinks while this loop runs, so once a (1, 1)
            # request of some demand shape has been rejected, every later
            # job with the same shape must be rejected too -- skip its
            # retries outright (thousands of unplaced jobs share a handful
            # of shapes at fleet scale).
            hopeless_shapes = set()
            for job_id in placement.unplaced:
                alloc = allocations[job_id]
                workers, ps = alloc.workers, alloc.ps
                shape = (
                    views[job_id].spec.worker_demand,
                    views[job_id].spec.ps_demand,
                )
                if shape in hopeless_shapes:
                    if ledger:
                        ledger.record_denial(
                            job_id,
                            "hopeless_shape",
                            workers=workers,
                            ps=ps,
                            shared_shape=True,
                        )
                    continue
                while True:
                    retry = PlacementRequest(
                        job_id=job_id,
                        workers=workers,
                        ps=ps,
                        worker_demand=shape[0],
                        ps_demand=shape[1],
                    )
                    result = self.placement_policy(cluster, [retry])
                    if job_id in result.layouts:
                        layouts[job_id] = result.layouts[job_id]
                        final_allocations[job_id] = TaskAllocation(workers, ps)
                        if ledger:
                            if (workers, ps) != (alloc.workers, alloc.ps):
                                ledger.record_shrink(
                                    job_id,
                                    (alloc.workers, alloc.ps),
                                    (workers, ps),
                                )
                            ledger.record_placement(
                                job_id, "fresh", len(layouts[job_id])
                            )
                        break
                    if (workers, ps) == (1, 1):
                        hopeless_shapes.add(shape)
                        if ledger:
                            ledger.record_denial(
                                job_id,
                                "hopeless_shape",
                                workers=alloc.workers,
                                ps=alloc.ps,
                            )
                        break  # genuinely no room; paused (§4.2)
                    workers = max(1, workers // 2)
                    ps = max(1, ps // 2)
            if cache is not None:
                for job_id, layout in layouts.items():
                    alloc = final_allocations[job_id]
                    cache.store(
                        PlacementRequest(
                            job_id=job_id,
                            workers=alloc.workers,
                            ps=alloc.ps,
                            worker_demand=views[job_id].spec.worker_demand,
                            ps_demand=views[job_id].spec.ps_demand,
                        ),
                        layout,
                    )
                for job_id in allocations:
                    if job_id not in layouts:
                        cache.forget_job(job_id)
        decision = SchedulingDecision(
            allocations=final_allocations, layouts=layouts
        )
        decision.validate()
        return decision


@register_scheduler("optimus")
class OptimusScheduler(CompositeScheduler):
    """The paper's scheduler: §4.1 allocation + §4.2 placement.

    ``priority_factor`` < 1 enables the end-of-§4.1 downgrade of jobs whose
    predictions are still unreliable (the paper evaluates 0.95 in §6.3).
    """

    def __init__(
        self,
        priority_factor: float = 1.0,
        rescale_threshold: float = 0.0,
        placement_cache: bool = False,
        name: str = "optimus",
    ):
        super().__init__(
            "optimus",
            "optimus",
            name=name,
            rescale_threshold=rescale_threshold,
            placement_cache=placement_cache,
            priority_factor=priority_factor,
        )


@register_scheduler("drf")
class DRFScheduler(CompositeScheduler):
    """The fairness baseline: DRF allocation + load-balanced placement."""

    def __init__(self, name: str = "drf"):
        super().__init__("drf", "spread", name=name)


@register_scheduler("tetris")
class TetrisScheduler(CompositeScheduler):
    """The Tetris baseline: packing+SRTF allocation + packing placement."""

    def __init__(self, name: str = "tetris"):
        super().__init__("tetris", "pack", name=name)


@register_scheduler("fifo")
class FIFOScheduler(CompositeScheduler):
    """Static first-in-first-out scheduling of the owners' fixed requests."""

    def __init__(self, name: str = "fifo"):
        super().__init__("fifo", "spread", name=name)


@register_scheduler("srtf")
class SRTFScheduler(CompositeScheduler):
    """Shortest-remaining-time-first allocation + Optimus placement."""

    def __init__(self, name: str = "srtf"):
        super().__init__("srtf", "optimus", name=name)


def make_scheduler(name: Optional[str] = None, **kwargs) -> Scheduler:
    """Build a scheduler from a registered name or an ``alloc+place`` spec.

    A thin alias of :func:`repro.schedulers.registry.resolve_scheduler`:
    registered presets (``optimus``, ``drf``, ``tetris``, ``fifo``,
    ``srtf``, ``goodput``, ``oasis``, ...) resolve directly; any other name
    is parsed as ``"<allocation>+<placement>"`` for ablation hybrids, e.g.
    ``"drf+optimus"`` is DRF allocation with Optimus placement (Fig. 18).
    ``None`` honours the ``REPRO_POLICY`` environment variable.
    """
    return resolve_scheduler(name, **kwargs)
