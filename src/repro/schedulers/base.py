"""Scheduler interface shared by Optimus and the baselines.

Every scheduler sees the same picture at each scheduling-interval boundary:
a cleared working copy of the cluster (elastic scaling is checkpoint-based,
§5.4, so every interval re-places from scratch) and one :class:`JobView` per
active job. It returns a :class:`SchedulingDecision`: per-job task counts
plus a per-server layout. Jobs missing from the decision are paused for the
interval (§4.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.core.allocation import TaskAllocation
from repro.core.placement import JobLayout
from repro.obs.registry import (
    NULL_PROFILER,
    NULL_REGISTRY,
    MetricsRegistry,
    PhaseProfiler,
)
from repro.obs.spans import NULL_SPAN_TRACER, SpanTracer
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.workloads.job import JobSpec
from repro.workloads.speed import MODE_SYNC

#: Floor on the combined statistical efficiency served to goodput-style
#: policies: a nearly-converged job still has positive worth (finishing it
#: frees its resources), so its efficiency never collapses to zero.
MIN_STATISTICAL_EFFICIENCY = 0.05


@dataclass
class JobView:
    """What a scheduler is allowed to know about one active job.

    ``remaining_steps`` and ``speed`` come from the online models of §3 --
    the simulator builds them from fitted estimators, never from ground
    truth. §6.1 gives the same estimates to Tetris, which has no estimator
    of its own.
    """

    spec: JobSpec
    remaining_steps: float
    speed: Callable[[int, int], float]
    #: Number of loss observations collected so far (for the §4.1 priority
    #: downgrade of jobs whose predictions are still unreliable).
    observation_count: int = 0
    #: Fraction of predicted total work already done, in [0, 1].
    progress: float = 0.0
    #: The allocation the job ran with during the previous interval
    #: ((0, 0) if it was paused or just arrived).
    current_allocation: TaskAllocation = TaskAllocation(0, 0)
    #: One-time cost (seconds) of changing this job's configuration: the
    #: §5.4 checkpoint + restart + restore cycle. Used by cost-aware
    #: rescaling (§7 "Scaling overhead").
    rescale_cost: float = 0.0
    #: Pollux-style statistical efficiency of the job's *next* training
    #: step, derived from the fitted loss curve: the predicted marginal
    #: loss decrease now relative to the start of the current training
    #: phase, in (0, 1]. 1.0 when no fit is available (young jobs, oracle
    #: estimator modes).
    loss_efficiency: float = 1.0

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def estimated_time(self, workers: int, ps: int) -> float:
        """Estimated completion time under a hypothetical allocation."""
        if workers < 1 or ps < 1:
            return float("inf")
        try:
            speed = self.speed(ps, workers)
        except Exception:
            return float("inf")
        if not speed or speed <= 0:
            return float("inf")
        return self.remaining_steps / speed

    def statistical_efficiency(self, workers: int) -> float:
        """Effective convergence progress per raw training step, in (0, 1].

        The Pollux decomposition: goodput = throughput x statistical
        efficiency. Here efficiency is the product of (a) the loss-curve
        term ``loss_efficiency`` (diminishing returns as the job nears
        convergence) and (b) the §5.2 asynchrony discount -- stale updates
        make each raw step worth ``1 / (1 + staleness * (w - 1))`` steps of
        convergence progress. Synchronous jobs only pay (a). Floored at
        ``MIN_STATISTICAL_EFFICIENCY`` so finishing jobs are never starved.
        """
        eff = min(max(self.loss_efficiency, 0.0), 1.0)
        if self.spec.mode != MODE_SYNC and workers > 1:
            eff /= 1.0 + self.spec.profile.staleness_factor * (workers - 1)
        return max(eff, MIN_STATISTICAL_EFFICIENCY)

    def goodput(self, ps: int, workers: int) -> float:
        """Predicted goodput (effective steps/second) of a configuration.

        ``speed(p, w) * statistical_efficiency(w)``: what the Pollux-style
        allocator maximises the marginal gain of, instead of raw speed.
        """
        if workers < 1 or ps < 1:
            return 0.0
        try:
            speed = self.speed(ps, workers)
        except Exception:
            return 0.0
        if not speed or speed <= 0:
            return 0.0
        return speed * self.statistical_efficiency(workers)


@dataclass(frozen=True)
class SchedulingDecision:
    """Allocations plus layouts for one interval."""

    allocations: Dict[str, TaskAllocation] = field(default_factory=dict)
    layouts: Dict[str, JobLayout] = field(default_factory=dict)

    @property
    def scheduled_jobs(self) -> Tuple[str, ...]:
        """Jobs that will actually run this interval (allocated AND placed)."""
        return tuple(j for j in self.allocations if j in self.layouts)

    @property
    def total_tasks(self) -> int:
        return sum(
            self.allocations[j].total for j in self.scheduled_jobs
        )

    def validate(self) -> None:
        """Check allocations and layouts are mutually consistent."""
        for job_id, layout in self.layouts.items():
            if job_id not in self.allocations:
                raise ValueError(f"layout for unallocated job {job_id!r}")
            alloc = self.allocations[job_id]
            workers = sum(nw for nw, _ in layout.values())
            ps = sum(np_ for _, np_ in layout.values())
            if (workers, ps) != (alloc.workers, alloc.ps):
                raise ValueError(
                    f"job {job_id!r}: layout totals ({workers}, {ps}) "
                    f"!= allocation ({alloc.workers}, {alloc.ps})"
                )


class Scheduler(abc.ABC):
    """Base class: one :meth:`schedule` call per scheduling interval."""

    #: Human-readable name used in reports and plots.
    name: str = "scheduler"

    #: Observability hooks -- no-op class-level defaults so schedulers stay
    #: zero-cost when uninstrumented; :meth:`instrument` overrides them per
    #: instance (the engine and control loop call it automatically).
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = NULL_REGISTRY
    profiler: PhaseProfiler = NULL_PROFILER
    spans: SpanTracer = NULL_SPAN_TRACER

    def instrument(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
        spans: Optional[SpanTracer] = None,
    ) -> "Scheduler":
        """Attach observability sinks; returns self for chaining."""
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
        if profiler is not None:
            self.profiler = profiler
        if spans is not None:
            self.spans = spans
        return self

    @abc.abstractmethod
    def schedule(
        self, cluster: Cluster, jobs: Sequence[JobView]
    ) -> SchedulingDecision:
        """Produce this interval's decision.

        *cluster* is a cleared working copy -- implementations may mutate it
        freely while building their placement.
        """

    def notify_node_events(
        self,
        failed: Sequence[str] = (),
        recovered: Sequence[str] = (),
    ) -> None:
        """Hook: node crash/cordon/recovery events from the faults layer.

        The engine calls this before scheduling whenever the server set
        changed. The default is a no-op; schedulers holding cluster-shaped
        state (e.g. a :class:`~repro.core.placement.PlacementCache`) use it
        to invalidate.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
