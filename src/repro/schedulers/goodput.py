"""Pollux-style goodput allocation (Qiao et al., OSDI 2020).

Optimus' §4.1 allocator maximises the marginal reduction in *estimated
completion time*, which is driven by raw throughput ``f(p, w)``. Pollux
observes that raw steps are not all equally useful: a job close to
convergence gains little per step, and asynchronous jobs lose convergence
progress to gradient staleness as workers are added. It therefore allocates
by **goodput** -- throughput times *statistical efficiency*:

    goodput(p, w) = f(p, w) * SE(w)
    SE(w)         = loss_efficiency / (1 + staleness * (w - 1))   (async)
                  = loss_efficiency                                (sync)

``loss_efficiency`` comes from the fitted §3.1 loss curve: the predicted
marginal loss decrease of the job's *next* step relative to the start of
its current training phase (see
:meth:`repro.core.convergence.ConvergenceEstimator.marginal_efficiency`).

The allocator reuses the §4.1 incremental max-heap verbatim, but the two
SE factors enter it through different doors, matching the heap's
marginal-gain objective:

* the **staleness discount** is worker-dependent -- it reshapes the speed
  curve, peaking goodput at a finite worker count -- so it wraps the
  fitted speed function in :class:`~repro.core.allocation.WeightedSpeed`
  (keeping the vectorized ``predict_many`` fast path). Past the peak the
  marginal gain of another worker goes non-positive and the heap simply
  stops scaling the job out.
* the **loss-curve term** is a uniform multiplier, and uniformly slowing
  a job down makes its completion-time *differences* larger, i.e. MORE
  attractive to a marginal-JCT-gain heap -- exactly backwards. It
  therefore enters as a multiplicative *priority* on the request (the
  same lever as the §4.1 young-job downgrade), scaling the job's marginal
  gains down so nearly-converged jobs yield to fresh ones.

Everything else (starter allocations, dominant-share normalisation) is
inherited unchanged.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.core.allocation import (
    AllocationRequest,
    TaskAllocation,
    WeightedSpeed,
    allocate,
)
from repro.schedulers.base import MIN_STATISTICAL_EFFICIENCY, JobView
from repro.schedulers.composite import CompositeScheduler
from repro.schedulers.policies import YOUNG_JOB_OBSERVATIONS
from repro.schedulers.registry import register_allocation, register_scheduler
from repro.workloads.speed import MODE_SYNC


class _EfficiencyWeight:
    """Elementwise ``weight(p, w)`` implementing the staleness discount.

    Accepts scalars and ndarrays (the :class:`WeightedSpeed` contract) so
    the allocator's vectorized candidate evaluation keeps working.
    """

    __slots__ = ("staleness",)

    def __init__(self, staleness: float) -> None:
        self.staleness = staleness

    def __call__(self, p, w):
        eff = 1.0
        if self.staleness > 0.0:
            extra = np.maximum(np.asarray(w, dtype=float) - 1.0, 0.0)
            eff = eff / (1.0 + self.staleness * extra)
        return np.maximum(eff, MIN_STATISTICAL_EFFICIENCY)


def goodput_speed(view: JobView):
    """*view*'s fitted speed function discounted by gradient staleness.

    Synchronous jobs pay no staleness, so their speed passes through
    untouched (preserving any ``predict_many`` the estimator exposes).
    """
    if view.spec.mode == MODE_SYNC:
        return view.speed
    staleness = view.spec.profile.staleness_factor
    if staleness <= 0.0:
        return view.speed
    return WeightedSpeed(view.speed, _EfficiencyWeight(staleness))


def convergence_priority(view: JobView) -> float:
    """The loss-curve SE term as a marginal-gain multiplier, in [floor, 1]."""
    eff = min(max(view.loss_efficiency, 0.0), 1.0)
    return max(eff, MIN_STATISTICAL_EFFICIENCY)


def goodput_allocation(
    jobs: Sequence[JobView],
    capacity: ResourceVector,
    priority_factor: float = 1.0,
    max_tasks_per_job: int = 100,
) -> Dict[str, TaskAllocation]:
    """Marginal-*goodput* allocation on the §4.1 incremental heap.

    Identical to ``optimus_allocation`` except that (a) asynchronous jobs'
    speed functions carry the staleness discount, so they stop scaling out
    once stale gradients erode the marginal step value, and (b) each job's
    marginal gains are weighted by its loss-curve efficiency, so
    nearly-converged jobs yield to fresh ones.
    """
    requests = []
    for view in jobs:
        young = view.observation_count < YOUNG_JOB_OBSERVATIONS
        priority = convergence_priority(view)
        if young:
            priority *= priority_factor
        requests.append(
            AllocationRequest(
                job_id=view.job_id,
                remaining_work=max(view.remaining_steps, 0.0),
                speed=goodput_speed(view),
                worker_demand=view.spec.worker_demand,
                ps_demand=view.spec.ps_demand,
                priority=priority,
                max_workers=max_tasks_per_job,
                max_ps=max_tasks_per_job,
            )
        )
    result = allocate(requests, capacity)
    return dict(result.allocations)


register_allocation("goodput", goodput_allocation)


@register_scheduler("goodput")
class GoodputScheduler(CompositeScheduler):
    """Pollux-style goodput allocation + Optimus placement."""

    def __init__(
        self,
        priority_factor: float = 1.0,
        rescale_threshold: float = 0.0,
        placement_cache: bool = False,
        name: str = "goodput",
    ):
        super().__init__(
            "goodput",
            "optimus",
            name=name,
            rescale_threshold=rescale_threshold,
            placement_cache=placement_cache,
            priority_factor=priority_factor,
        )
