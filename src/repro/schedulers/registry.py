"""The scheduler policy registry: one shared observation/action surface.

Every scheduling policy in this library -- Optimus itself, the paper's
baselines, and the successor policies (Pollux-style goodput, OASiS-style
online primal-dual) -- plugs into the same surface:

* **observations**: a sequence of :class:`~repro.schedulers.base.JobView`
  (per-job stats, fitted speed/loss estimators, progress) plus the cluster
  working copy;
* **actions**: a :class:`~repro.schedulers.base.SchedulingDecision`
  (per-job task allocations + per-server layouts).

Three registries back that surface:

* **schedulers** -- named factories producing a complete
  :class:`~repro.schedulers.base.Scheduler` (``"optimus"``, ``"goodput"``,
  ``"oasis"``, ...). This is what the CLI's ``--policy`` flag, the
  ``arena`` runner and :func:`repro.sim.simulate` resolve by name.
* **allocation policies** -- ``(jobs, capacity) -> {job_id: TaskAllocation}``
  halves, composable into :class:`CompositeScheduler` hybrids.
* **placement policies** -- ``(cluster, requests) -> PlacementResult``
  halves, ditto.

Modules register their policies at import time (see
:mod:`repro.schedulers.policies`, :mod:`repro.schedulers.goodput`,
:mod:`repro.schedulers.oasis`); importing :mod:`repro.schedulers` loads all
built-ins. Lookups of unknown names raise :class:`SchedulingError` listing
the registered alternatives -- never a bare :class:`KeyError`.

The ``REPRO_POLICY`` environment variable overrides the *default* policy
name (the one used when a caller passes ``None``), mirroring how
``REPRO_SIM_ENGINE`` selects the simulator core.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import SchedulingError

#: Environment variable naming the default scheduler policy.
POLICY_ENV_VAR = "REPRO_POLICY"

#: Named scheduler factories: ``factory(**kwargs) -> Scheduler``.
SCHEDULER_REGISTRY: Dict[str, Callable] = {}

#: Named allocation-policy halves (see :mod:`repro.schedulers.policies`).
ALLOCATION_REGISTRY: Dict[str, Callable] = {}

#: Named placement-policy halves.
PLACEMENT_REGISTRY: Dict[str, Callable] = {}

_KINDS = {
    "scheduler": SCHEDULER_REGISTRY,
    "allocation": ALLOCATION_REGISTRY,
    "placement": PLACEMENT_REGISTRY,
}


def _register(kind: str, name: str, obj: Optional[Callable]):
    registry = _KINDS[kind]

    def install(target: Callable) -> Callable:
        existing = registry.get(name)
        if existing is not None and existing is not target:
            raise SchedulingError(
                f"{kind} policy {name!r} is already registered"
            )
        registry[name] = target
        return target

    if obj is None:
        return install  # decorator form
    return install(obj)


def register_scheduler(name: str, factory: Optional[Callable] = None):
    """Register a scheduler factory under *name* (usable as a decorator).

    The factory is called with the caller's keyword arguments and must
    return a :class:`~repro.schedulers.base.Scheduler`. Classes work
    directly::

        @register_scheduler("goodput")
        class GoodputScheduler(CompositeScheduler): ...
    """
    return _register("scheduler", name, factory)


def register_allocation(name: str, policy: Optional[Callable] = None):
    """Register an allocation-policy half under *name*."""
    return _register("allocation", name, policy)


def register_placement(name: str, policy: Optional[Callable] = None):
    """Register a placement-policy half under *name*."""
    return _register("placement", name, policy)


def available_policies(kind: str = "scheduler") -> Tuple[str, ...]:
    """Sorted names registered for *kind* (scheduler/allocation/placement)."""
    if kind not in _KINDS:
        raise SchedulingError(
            f"unknown registry kind {kind!r}; known: {sorted(_KINDS)}"
        )
    return tuple(sorted(_KINDS[kind]))


def _lookup(kind: str, name: str) -> Callable:
    registry = _KINDS[kind]
    try:
        return registry[name]
    except KeyError:
        raise SchedulingError(
            f"unknown {kind} policy {name!r}; "
            f"available: {', '.join(sorted(registry)) or '(none)'}"
        ) from None


def resolve_allocation(name: str) -> Callable:
    """The registered allocation policy, or :class:`SchedulingError`."""
    return _lookup("allocation", name)


def resolve_placement(name: str) -> Callable:
    """The registered placement policy, or :class:`SchedulingError`."""
    return _lookup("placement", name)


def default_policy(fallback: str = "optimus") -> str:
    """The default scheduler name: ``$REPRO_POLICY`` if set, else *fallback*."""
    return os.environ.get(POLICY_ENV_VAR) or fallback


def resolve_scheduler(name: Optional[str] = None, **kwargs):
    """Build a scheduler from a registered name or an ``alloc+place`` spec.

    ``None`` resolves to :func:`default_policy` (honouring the
    ``REPRO_POLICY`` environment variable). Names containing ``+`` are
    parsed as ``"<allocation>+<placement>"`` ablation hybrids (Fig. 18/19),
    with both halves resolved through their registries. Unknown names raise
    :class:`SchedulingError` listing every registered alternative.
    """
    if name is None:
        name = default_policy()
    factory = SCHEDULER_REGISTRY.get(name)
    if factory is not None:
        return factory(**kwargs)
    if "+" in name:
        from repro.schedulers.composite import CompositeScheduler

        allocation, placement = name.split("+", 1)
        return CompositeScheduler(allocation, placement, **kwargs)
    raise SchedulingError(
        f"unknown scheduler policy {name!r}; available: "
        f"{', '.join(available_policies('scheduler'))} "
        f"(or an '<allocation>+<placement>' hybrid from "
        f"allocations {', '.join(available_policies('allocation'))} and "
        f"placements {', '.join(available_policies('placement'))})"
    )
