"""Metrics collected by the simulator: JCT, makespan, utilisation timelines.

The paper's headline metrics (§6.1): average job completion time (JCT) as
the performance indicator and makespan as the resource-efficiency indicator.
Fig. 14 additionally plots per-slot running-task counts and *normalised* CPU
utilisation (busy CPU over allocated CPU) for workers and parameter servers
separately -- :class:`TimeSlot` captures exactly those series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError


@dataclass(frozen=True)
class JobRecord:
    """Final accounting for one job."""

    job_id: str
    model: str
    mode: str
    arrival_time: float
    completion_time: Optional[float]
    total_steps: float
    scaling_time: float
    num_scalings: int
    chunks_moved: int
    #: Fault-injection accounting (zero in fault-free runs): crash-induced
    #: restarts and the raw training steps those crashes destroyed.
    num_restarts: int = 0
    steps_lost: float = 0.0

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def jct(self) -> float:
        if self.completion_time is None:
            return math.inf
        return self.completion_time - self.arrival_time


@dataclass(frozen=True)
class TimeSlot:
    """One scheduling interval's cluster-wide snapshot (Fig. 14's series)."""

    time: float
    running_jobs: int
    running_tasks: int
    allocated_cpu: float
    busy_worker_cpu: float
    busy_ps_cpu: float
    allocated_worker_cpu: float
    allocated_ps_cpu: float

    @property
    def worker_utilization(self) -> float:
        """Normalised worker CPU utilisation in [0, 1]."""
        if self.allocated_worker_cpu <= 0:
            return 0.0
        return self.busy_worker_cpu / self.allocated_worker_cpu

    @property
    def ps_utilization(self) -> float:
        """Normalised parameter-server CPU utilisation in [0, 1]."""
        if self.allocated_ps_cpu <= 0:
            return 0.0
        return self.busy_ps_cpu / self.allocated_ps_cpu


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    scheduler_name: str
    jobs: Dict[str, JobRecord]
    timeline: List[TimeSlot]
    interval: float
    seed: int
    #: Per-interval allocation audit trail ({job_id: TaskAllocation}),
    #: populated when ``SimConfig.record_decisions`` is on.
    decisions: Optional[List[Dict]] = None
    #: Cumulative per-phase wall-clock profile of the run
    #: ({phase: {count, total, mean, max}} in seconds), populated when the
    #: simulation was handed a tracer or metrics registry (:mod:`repro.obs`).
    phase_timings: Optional[Dict[str, Dict[str, float]]] = None

    def __post_init__(self) -> None:
        if not self.jobs:
            raise SimulationError("a simulation result needs at least one job")

    # -- headline metrics ---------------------------------------------------------
    @property
    def finished_jobs(self) -> Tuple[JobRecord, ...]:
        return tuple(j for j in self.jobs.values() if j.finished)

    @property
    def all_finished(self) -> bool:
        return len(self.finished_jobs) == len(self.jobs)

    @property
    def average_jct(self) -> float:
        """Mean JCT over finished jobs (inf when nothing finished)."""
        finished = self.finished_jobs
        if not finished:
            return math.inf
        return sum(j.jct for j in finished) / len(finished)

    @property
    def jct_std(self) -> float:
        finished = self.finished_jobs
        if len(finished) < 2:
            return 0.0
        mean = self.average_jct
        return math.sqrt(
            sum((j.jct - mean) ** 2 for j in finished) / len(finished)
        )

    @property
    def makespan(self) -> float:
        """First arrival to last completion (inf if a job never finished)."""
        if not self.all_finished:
            return math.inf
        first = min(j.arrival_time for j in self.jobs.values())
        last = max(j.completion_time for j in self.jobs.values())
        return last - first

    def jct_percentile(self, q: float) -> float:
        """The q-th JCT percentile over finished jobs (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise SimulationError("q must be in [0, 100]")
        finished = sorted(j.jct for j in self.finished_jobs)
        if not finished:
            return math.inf
        if len(finished) == 1:
            return finished[0]
        position = (q / 100) * (len(finished) - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, len(finished) - 1)
        weight = position - lower
        return finished[lower] * (1 - weight) + finished[upper] * weight

    def jct_by_model(self) -> Dict[str, float]:
        """Mean JCT per model name (finished jobs only)."""
        buckets: Dict[str, List[float]] = {}
        for record in self.finished_jobs:
            buckets.setdefault(record.model, []).append(record.jct)
        return {
            model: sum(values) / len(values)
            for model, values in sorted(buckets.items())
        }

    def jct_by_mode(self) -> Dict[str, float]:
        """Mean JCT per training mode (finished jobs only)."""
        buckets: Dict[str, List[float]] = {}
        for record in self.finished_jobs:
            buckets.setdefault(record.mode, []).append(record.jct)
        return {
            mode: sum(values) / len(values)
            for mode, values in sorted(buckets.items())
        }

    @property
    def total_scaling_time(self) -> float:
        return sum(j.scaling_time for j in self.jobs.values())

    @property
    def scaling_overhead_fraction(self) -> float:
        """Aggregate scaling time over makespan (the paper reports 2.54%)."""
        span = self.makespan
        if not math.isfinite(span) or span <= 0:
            return 0.0
        return self.total_scaling_time / (span * max(len(self.jobs), 1))

    # -- utilisation summaries -----------------------------------------------------
    def mean_worker_utilization(self) -> float:
        slots = [s for s in self.timeline if s.allocated_worker_cpu > 0]
        if not slots:
            return 0.0
        return sum(s.worker_utilization for s in slots) / len(slots)

    def mean_ps_utilization(self) -> float:
        slots = [s for s in self.timeline if s.allocated_ps_cpu > 0]
        if not slots:
            return 0.0
        return sum(s.ps_utilization for s in slots) / len(slots)

    def mean_running_tasks(self) -> float:
        slots = [s for s in self.timeline if s.running_jobs > 0]
        if not slots:
            return 0.0
        return sum(s.running_tasks for s in slots) / len(slots)

    def summary(self) -> Dict[str, float]:
        return {
            "average_jct": self.average_jct,
            "jct_std": self.jct_std,
            "makespan": self.makespan,
            "finished": float(len(self.finished_jobs)),
            "jobs": float(len(self.jobs)),
            "mean_running_tasks": self.mean_running_tasks(),
            "worker_utilization": self.mean_worker_utilization(),
            "ps_utilization": self.mean_ps_utilization(),
            "scaling_overhead_fraction": self.scaling_overhead_fraction,
        }


def aggregate_results(results: Sequence[SimulationResult]) -> Dict[str, float]:
    """Mean and standard deviation of JCT/makespan across repeats (Fig. 13)."""
    if not results:
        raise SimulationError("no results to aggregate")
    jcts = [r.average_jct for r in results]
    spans = [r.makespan for r in results]

    def _mean(values: Sequence[float]) -> float:
        return sum(values) / len(values)

    def _std(values: Sequence[float]) -> float:
        if len(values) < 2:
            return 0.0
        mean = _mean(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    return {
        "average_jct": _mean(jcts),
        "jct_std": _std(jcts),
        "makespan": _mean(spans),
        "makespan_std": _std(spans),
        "runs": float(len(results)),
    }
