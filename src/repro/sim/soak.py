"""Long-horizon soak scenarios: workload mixes + chaos orchestration.

A *scenario* is a small JSON document describing everything a multi-day
chaos run needs: a workload mix built from pluggable arrival processes
(diurnal, bursty/spike, Poisson, uniform, Google-trace-like, or replayed
from a JSON/CSV trace file), the stochastic fault rates, scripted *fault
waves* (windows of elevated node-crash intensity, expanded into seeded
:class:`~repro.faults.plan.NodeCrash` entries), an estimator perturbation
(step / ramp / sine speed multiplier), and an optional control-plane
*drill* phase that replays a controller crash point against the real
ControlLoop/APIServer/KVStore stack after the simulation.

:func:`run_soak` executes the scenario end to end against one shared
trace stream, closes the run with a terminal ``run_completed`` accounting
event (which jobs finished, which are legitimately unfinished, and any
pods/leases/intents still held after teardown), then audits the whole
stream with the :mod:`repro.soak` invariant checker and writes the
machine-readable violation report and the reproducibility manifest.

Scenario format (all sections optional except ``workload``)::

    {
      "name": "soak-48h", "seed": 0, "engine": "event",
      "policy": "optimus", "servers": 13, "horizon": 172800,
      "interval": 600, "checkpoint_interval": 1800,
      "workload": [
        {"arrivals": "diurnal", "jobs": 36, "duration": 150000},
        {"arrivals": "bursty", "jobs": 8, "offset": 108000,
         "spike_times": [0.0], "background_fraction": 0.0}
      ],
      "faults": {"node_mtbf": 30000, "task_crash_rate": 0.002,
                 "checkpoint_loss_rate": 0.05},
      "fault_waves": [{"start": 43200, "end": 50400, "crashes": 3,
                       "downtime": 1800}],
      "plan": {"node_crashes": [{"time": 900, "server": "node-1",
                                 "duration": 900}]},
      "perturbation": {"kind": "step", "at": 86400, "factor": 0.75},
      "drill": {"crash_point": "after_teardown", "jobs": 3, "steps": 6},
      "checker": {"recovery_slack": 1800, "strict_end": true}
    }
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rand import RandomSource
from repro.faults.config import FaultConfig
from repro.faults.plan import CheckpointLoss, FaultPlan, NodeCrash, TaskCrash
from repro.obs.tracer import (
    EVENT_JOB_ARRIVED,
    EVENT_RUN_COMPLETED,
    RecordingTracer,
)
from repro.sim.engine import (
    ENGINES,
    SimConfig,
    default_engine,
    simulate,
)
from repro.sim.manifest import manifest_path_for, run_manifest, write_manifest
from repro.sim.metrics import SimulationResult
from repro.soak.checker import CheckerConfig, InvariantChecker
from repro.workloads.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    google_trace_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.job import JobSpec

#: Named arrival processes a workload group may use; ``trace`` and ``csv``
#: replay a file (``path``) instead of generating.
ARRIVAL_KINDS = ("uniform", "poisson", "google", "diurnal", "bursty", "trace", "csv")

_GENERATORS: Dict[str, Callable[..., List[JobSpec]]] = {
    "uniform": uniform_arrivals,
    "poisson": poisson_arrivals,
    "google": google_trace_arrivals,
    "diurnal": diurnal_arrivals,
    "bursty": bursty_arrivals,
}

#: Group keys consumed by the scenario engine itself (everything else is
#: passed through to the arrival generator).
_GROUP_CONTROL_KEYS = ("arrivals", "jobs", "offset", "prefix", "seed", "path")

_SCENARIO_KEYS = (
    "name",
    "seed",
    "engine",
    "policy",
    "servers",
    "horizon",
    "interval",
    "checkpoint_interval",
    "estimator",
    "workload",
    "faults",
    "fault_waves",
    "plan",
    "perturbation",
    "drill",
    "checker",
)

PERTURBATION_KINDS = ("step", "ramp", "sine")


def _number(spec: Dict, key: str, where: str, default=None, minimum=None):
    value = spec.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{where}: {key!r} must be a number, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise ConfigurationError(
            f"{where}: {key!r} must be >= {minimum}, got {value}"
        )
    return float(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated soak scenario (see the module docstring for the format)."""

    name: str = "soak"
    seed: int = 0
    engine: Optional[str] = None
    policy: str = "optimus"
    servers: int = 13
    horizon: float = 86_400.0
    interval: float = 600.0
    checkpoint_interval: Optional[float] = None
    estimator: str = "online"
    workload: Tuple[Dict, ...] = ()
    faults: Dict = field(default_factory=dict)
    fault_waves: Tuple[Dict, ...] = ()
    plan: Dict = field(default_factory=dict)
    perturbation: Optional[Dict] = None
    drill: Optional[Dict] = None
    checker: Dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, spec: Dict) -> "ScenarioSpec":
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"scenario must be an object, got {type(spec).__name__}"
            )
        unknown = sorted(set(spec) - set(_SCENARIO_KEYS))
        if unknown:
            raise ConfigurationError(
                f"scenario has unknown key(s): {', '.join(unknown)} "
                f"(known: {', '.join(_SCENARIO_KEYS)})"
            )
        workload = spec.get("workload")
        if not isinstance(workload, list) or not workload:
            raise ConfigurationError(
                "scenario needs a non-empty 'workload' list of arrival groups"
            )
        for i, group in enumerate(workload):
            if not isinstance(group, dict):
                raise ConfigurationError(
                    f"workload group {i} must be an object, "
                    f"got {type(group).__name__}"
                )
            kind = group.get("arrivals")
            if kind not in ARRIVAL_KINDS:
                raise ConfigurationError(
                    f"workload group {i}: 'arrivals' must be one of "
                    f"{ARRIVAL_KINDS}, got {kind!r}"
                )
            if kind in ("trace", "csv") and not group.get("path"):
                raise ConfigurationError(
                    f"workload group {i}: arrivals={kind!r} needs a 'path'"
                )
        engine = spec.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ConfigurationError(
                f"scenario 'engine' must be one of {ENGINES}, got {engine!r}"
            )
        perturbation = spec.get("perturbation")
        if perturbation is not None:
            if not isinstance(perturbation, dict):
                raise ConfigurationError("scenario 'perturbation' must be an object")
            if perturbation.get("kind") not in PERTURBATION_KINDS:
                raise ConfigurationError(
                    "perturbation 'kind' must be one of "
                    f"{PERTURBATION_KINDS}, got {perturbation.get('kind')!r}"
                )
        for section in ("faults", "plan", "checker"):
            if not isinstance(spec.get(section, {}), dict):
                raise ConfigurationError(f"scenario {section!r} must be an object")
        waves = spec.get("fault_waves", [])
        if not isinstance(waves, list):
            raise ConfigurationError("scenario 'fault_waves' must be a list")
        drill = spec.get("drill")
        if drill is not None and not isinstance(drill, dict):
            raise ConfigurationError("scenario 'drill' must be an object")
        seed = spec.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigurationError(f"scenario 'seed' must be an integer, got {seed!r}")
        horizon = _number(spec, "horizon", "scenario", default=86_400.0, minimum=1.0)
        interval = _number(spec, "interval", "scenario", default=600.0, minimum=1.0)
        checkpoint = _number(spec, "checkpoint_interval", "scenario", minimum=1.0)
        servers = spec.get("servers", 13)
        if isinstance(servers, bool) or not isinstance(servers, int) or servers < 1:
            raise ConfigurationError(
                f"scenario 'servers' must be a positive integer, got {servers!r}"
            )
        return cls(
            name=str(spec.get("name", "soak")),
            seed=seed,
            engine=engine,
            policy=str(spec.get("policy", "optimus")),
            servers=servers,
            horizon=horizon,
            interval=interval,
            checkpoint_interval=checkpoint,
            estimator=str(spec.get("estimator", "online")),
            workload=tuple(dict(g) for g in workload),
            faults=dict(spec.get("faults", {})),
            fault_waves=tuple(dict(w) for w in waves),
            plan=dict(spec.get("plan", {})),
            perturbation=dict(perturbation) if perturbation else None,
            drill=dict(drill) if drill else None,
            checker=dict(spec.get("checker", {})),
        )

    def to_dict(self) -> Dict:
        """The scenario as plain JSON (embedded in the run manifest)."""
        out = dataclasses.asdict(self)
        out["workload"] = [dict(g) for g in self.workload]
        out["fault_waves"] = [dict(w) for w in self.fault_waves]
        return out


def load_scenario(path: str) -> ScenarioSpec:
    """Read and validate a scenario spec file."""
    with open(path, encoding="utf8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"scenario file {path!r} is not valid JSON: {exc}"
            ) from None
    return ScenarioSpec.from_dict(payload)


# -- workload ---------------------------------------------------------------------
def build_workload(scenario: ScenarioSpec) -> List[JobSpec]:
    """Expand the scenario's workload groups into one merged job list.

    Each group's jobs are re-prefixed (``g<i>-``) so mixes never collide
    on job ids, and shifted by the group's ``offset`` seconds -- an
    arrival *spike* is simply a bursty group offset into the run.
    """
    merged: List[JobSpec] = []
    for i, group in enumerate(scenario.workload):
        kind = group["arrivals"]
        where = f"workload group {i}"
        offset = _number(group, "offset", where, default=0.0, minimum=0.0)
        prefix = str(group.get("prefix") or f"g{i}")
        if kind in ("trace", "csv"):
            if kind == "trace":
                from repro.workloads.trace import load_trace

                jobs = load_trace(group["path"])
            else:
                from repro.workloads.csvtrace import load_csv_trace

                jobs = load_csv_trace(group["path"])
        else:
            kwargs = {
                k: v for k, v in group.items() if k not in _GROUP_CONTROL_KEYS
            }
            if "jobs" in group:
                kwargs["num_jobs"] = group["jobs"]
            kwargs["seed"] = group.get("seed", scenario.seed + 7919 * (i + 1))
            try:
                jobs = _GENERATORS[kind](**kwargs)
            except TypeError as exc:
                raise ConfigurationError(f"{where}: {exc}") from None
        merged.extend(
            dataclasses.replace(
                job,
                job_id=f"{prefix}-{job.job_id}",
                arrival_time=job.arrival_time + offset,
            )
            for job in jobs
        )
    merged.sort(key=lambda j: (j.arrival_time, j.job_id))
    return merged


# -- chaos orchestration ----------------------------------------------------------
def build_fault_plan(scenario: ScenarioSpec) -> Optional[FaultPlan]:
    """Compose the scripted fault schedule: explicit plan + seeded waves.

    A *fault wave* is a window of elevated failure intensity: ``crashes``
    node crashes at seeded instants inside ``[start, end)``, each taking a
    distinct server down for ``downtime`` seconds (a number, or a
    ``[lo, hi]`` range sampled per crash).
    """
    plan = scenario.plan
    node_crashes = [
        NodeCrash(c["time"], c["server"], c["duration"])
        for c in plan.get("node_crashes", ())
    ]
    task_crashes = [
        TaskCrash(c["time"], c["job_id"]) for c in plan.get("task_crashes", ())
    ]
    checkpoint_losses = [
        CheckpointLoss(c["time"], c["job_id"])
        for c in plan.get("checkpoint_losses", ())
    ]

    names = [f"node-{i}" for i in range(scenario.servers)]
    for i, wave in enumerate(scenario.fault_waves):
        where = f"fault wave {i}"
        start = _number(wave, "start", where, default=0.0, minimum=0.0)
        end = _number(wave, "end", where, minimum=0.0)
        if end is None or end <= start:
            raise ConfigurationError(f"{where}: needs 'end' > 'start'")
        crashes = wave.get("crashes", 1)
        if isinstance(crashes, bool) or not isinstance(crashes, int) or crashes < 1:
            raise ConfigurationError(
                f"{where}: 'crashes' must be a positive integer, got {crashes!r}"
            )
        downtime = wave.get("downtime", 1800.0)
        rng = RandomSource(scenario.seed).child(f"fault-wave-{i}").rng
        # Distinct servers per wave: a wave models correlated rack-level
        # trouble, and the injector skips crashes on already-down nodes.
        count = min(crashes, len(names))
        if count < crashes:
            raise ConfigurationError(
                f"{where}: {crashes} crashes but only {len(names)} servers"
            )
        picks = rng.choice(len(names), size=count, replace=False)
        for server_idx in picks:
            at = float(rng.uniform(start, end))
            if isinstance(downtime, (list, tuple)):
                lo, hi = float(downtime[0]), float(downtime[1])
                down = float(rng.uniform(lo, hi)) if hi > lo else lo
            else:
                down = float(downtime)
            node_crashes.append(NodeCrash(at, names[int(server_idx)], down))

    if not (node_crashes or task_crashes or checkpoint_losses):
        return None
    return FaultPlan(
        node_crashes=tuple(node_crashes),
        task_crashes=tuple(task_crashes),
        checkpoint_losses=tuple(checkpoint_losses),
    )


def perturbation_from_spec(spec: Optional[Dict]) -> Optional[Callable[[float], float]]:
    """Build the ``t -> speed multiplier`` chaos knob from its spec."""
    if spec is None:
        return None
    kind = spec["kind"]
    if kind == "step":
        at = _number(spec, "at", "perturbation", default=0.0, minimum=0.0)
        factor = _number(spec, "factor", "perturbation", default=0.5, minimum=0.0)

        def step_perturbation(t: float) -> float:
            return factor if t >= at else 1.0

        return step_perturbation
    if kind == "ramp":
        start = _number(spec, "start", "perturbation", default=0.0, minimum=0.0)
        end = _number(spec, "end", "perturbation", minimum=0.0)
        factor = _number(spec, "factor", "perturbation", default=0.5, minimum=0.0)
        if end is None or end <= start:
            raise ConfigurationError("ramp perturbation needs 'end' > 'start'")

        def ramp_perturbation(t: float) -> float:
            if t <= start:
                return 1.0
            if t >= end:
                return factor
            return 1.0 + (factor - 1.0) * (t - start) / (end - start)

        return ramp_perturbation
    # sine
    period = _number(spec, "period", "perturbation", default=86_400.0, minimum=1.0)
    amplitude = _number(spec, "amplitude", "perturbation", default=0.2, minimum=0.0)
    if amplitude >= 1.0:
        raise ConfigurationError("sine perturbation 'amplitude' must be < 1")
    import math

    def sine_perturbation(t: float) -> float:
        return 1.0 + amplitude * math.sin(2.0 * math.pi * t / period)

    return sine_perturbation


def checker_config_from_spec(
    spec: Dict, interval: float = 600.0
) -> CheckerConfig:
    """The scenario's ``checker`` section as a :class:`CheckerConfig`.

    Soak runs default to ``require_accounting=True`` (the runner always
    emits the terminal accounting event) and a recovery slack of three
    intervals (recoveries land on interval boundaries).
    """
    defaults = CheckerConfig()
    return CheckerConfig(
        recovery_slack=spec.get("recovery_slack", max(3 * interval, defaults.recovery_slack)),
        rollback_bound=spec.get("rollback_bound"),
        stall_bound=spec.get("stall_bound"),
        require_accounting=spec.get("require_accounting", True),
        strict_end=spec.get("strict_end", True),
        failover_bound=spec.get("failover_bound"),
    )


# -- the runner -------------------------------------------------------------------
class _SoakTracer(RecordingTracer):
    """Records every event in memory and (optionally) streams it to JSONL.

    One tracer spans both phases (simulation + drill), so ``seq`` stays
    strictly monotonic across the whole stream -- the property the
    checker's ``seq-monotonic`` invariant rides on.
    """

    def __init__(self, path: Optional[str] = None):
        super().__init__()
        self._stream = open(path, "w", encoding="utf8") if path else None

    def _record(self, payload: Dict) -> None:
        super()._record(payload)
        if self._stream is not None:
            self._stream.write(json.dumps(payload, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            self._stream.close()
            self._stream = None


@dataclass
class SoakOutcome:
    """Everything one soak run produced."""

    scenario: ScenarioSpec
    result: SimulationResult
    events: List[Dict]
    checker: InvariantChecker
    report: Dict
    manifest: Dict
    trace_path: Optional[str] = None
    report_path: Optional[str] = None
    manifest_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.checker.ok

    @property
    def violations(self):
        return self.checker.violations


def _run_drill_phase(
    scenario: ScenarioSpec, tracer: RecordingTracer
) -> Dict[str, List[str]]:
    """Replay a controller crash drill against the deploy stack.

    Runs after the simulation on the *same* tracer: deploys a few jobs
    through ControlLoop/APIServer/KVStore, kills the controller at the
    scripted crash point, recovers from the store alone, drains, and
    reports the drill jobs plus any state still held after teardown.
    """
    from repro.common.errors import ControllerCrashed
    from repro.deploy import ControlLoop
    from repro.faults import ControllerCrash, CrashPointInjector
    from repro.k8s import APIServer
    from repro.k8s.controller import INTENT_DONE
    from repro.cluster import cpu_mem
    from repro.schedulers import JobView, make_scheduler
    from repro.workloads import MODEL_ZOO, StepTimeModel, make_job

    drill = scenario.drill or {}
    num_jobs = int(drill.get("jobs", 3))
    steps = int(drill.get("steps", 6))
    servers = int(drill.get("servers", 4))
    expire_node = int(drill.get("expire_node", -1))
    lease_ttl = float(drill.get("lease_ttl", 2.0))
    crash_point = drill.get("crash_point")
    policy = str(drill.get("policy", scenario.policy))

    models = sorted(MODEL_ZOO)
    specs = [
        make_job(
            models[(i + scenario.seed) % len(models)],
            mode="sync",
            job_id=f"drill-{i}",
        )
        for i in range(num_jobs)
    ]
    truths = {s.job_id: StepTimeModel(s.profile, "sync") for s in specs}
    progress = {s.job_id: 0.0 for s in specs}
    for spec in specs:
        # The control loop never admits jobs itself; announce them so the
        # stream checker can hold them to the no-lost-jobs invariant.
        tracer.emit(
            EVENT_JOB_ARRIVED,
            0.0,
            job_id=spec.job_id,
            model=spec.model_name,
            mode=spec.mode,
            arrival_time=0.0,
        )

    def views():
        return [
            JobView(
                spec=spec,
                remaining_steps=max(50_000.0 - progress[spec.job_id], 1_000.0),
                speed=lambda p, w, t=truths[spec.job_id]: t.speed(p, w),
                observation_count=100,
            )
            for spec in specs
        ]

    api = APIServer()
    ttl = lease_ttl if lease_ttl > 0 else None
    node_names = [f"n{i}" for i in range(servers)]
    for name in node_names:
        api.register_node(name, cpu_mem(16, 64), lease_ttl=ttl, now=0.0)

    injector = None
    if crash_point:
        injector = CrashPointInjector([ControllerCrash(crash_point)])
    loop = ControlLoop(
        api, make_scheduler(policy), tracer=tracer, crash_points=injector
    )
    dead_node = (
        node_names[expire_node] if 0 <= expire_node < len(node_names) else None
    )

    for _ in range(steps):
        now = float(loop.step_index)
        if ttl is not None:
            for name in node_names:
                if name == dead_node and now >= 1:
                    continue  # the "dead" kubelet goes silent after step 0
                if not api.node(name).cordoned:
                    loop.heartbeat(name, now)
        try:
            loop.step(views(), progress=dict(progress))
        except ControllerCrashed:
            loop = ControlLoop(
                api,
                make_scheduler(policy),
                tracer=tracer,
                start_step=loop.step_index,
            )
            recovered = loop.recover()
            for job_id, saved in recovered.items():
                progress[job_id] = max(progress.get(job_id, 0.0), saved)
            loop.step(views(), progress=dict(progress))
        for spec in specs:
            progress[spec.job_id] += 250.0

    try:
        loop.drain(progress=dict(progress))
    except ControllerCrashed:
        # The crash point may fire on the first real teardown, which can
        # be the drain itself. Recover from the store alone and finish
        # the teardown -- exactly the §5.5 crash-consistency contract.
        loop = ControlLoop(
            api,
            make_scheduler(policy),
            tracer=tracer,
            start_step=loop.step_index,
        )
        loop.recover()
        loop.drain(progress=dict(progress))
    leaked_pods = sorted(p.name for p in api.list_pods())
    leaked_intents = sorted(
        job_id
        for job_id, intent in loop.controller.list_intents().items()
        if intent.phase != INTENT_DONE
    )
    leaked_leases = []
    for name in node_names:
        lease_id = api.node(name).lease_id
        api.remove_node(name)
        if lease_id is not None and api.store.has_lease(lease_id):
            leaked_leases.append(f"{name}:{lease_id}")
    return {
        "jobs": [s.job_id for s in specs],
        "leaked_pods": leaked_pods,
        "leaked_leases": sorted(leaked_leases),
        "leaked_intents": leaked_intents,
    }


def _run_failover_phase(
    scenario: ScenarioSpec, tracer: RecordingTracer
) -> Dict[str, List[str]]:
    """Run a leader-kill failover drill on the shared trace stream.

    Selected with ``"drill": {"kind": "failover", ...}``; the remaining
    keys map onto :class:`repro.deploy.failover.FailoverConfig` (``kills``
    for the number of leader-kill waves, ``crash_point`` for the kill
    mode, ``lease_ttl`` for the election TTL). Runs on the *same* tracer
    as the simulation, so the checker audits the election events --
    dual-leader, epoch-regression, failover-overdue -- in one stream;
    accounting is merged into the run's terminal event by the caller.
    """
    from repro.deploy.failover import FailoverConfig, run_failover_drill

    drill = scenario.drill or {}
    config = FailoverConfig(
        seed=int(drill.get("seed", scenario.seed)),
        jobs=int(drill.get("jobs", 3)),
        servers=int(drill.get("servers", 4)),
        steps_before=int(drill.get("steps_before", 3)),
        steps_after=int(drill.get("steps_after", 4)),
        lease_ttl=float(drill.get("lease_ttl", 2.0)),
        node_lease_ttl=float(drill.get("node_lease_ttl", 6.0)),
        policy=str(drill.get("policy", scenario.policy)),
        crash_point=drill.get("crash_point"),
        kills=int(drill.get("kills", 1)),
    )
    outcome = run_failover_drill(config, tracer=tracer, emit_accounting=False)
    return {
        "jobs": list(outcome.jobs),
        "leaked_pods": list(outcome.leaked_pods),
        "leaked_leases": list(outcome.leaked_leases),
        "leaked_intents": list(outcome.leaked_intents),
    }


def run_soak(
    scenario: ScenarioSpec,
    trace_out: Optional[str] = None,
    report_out: Optional[str] = None,
    manifest_out: Optional[str] = None,
    checker_config: Optional[CheckerConfig] = None,
) -> SoakOutcome:
    """Execute a scenario end to end and audit its trace stream.

    Runs the simulation phase (workload mix + faults + waves +
    perturbation), then the optional drill phase, emits the terminal
    ``run_completed`` accounting event, checks every stream invariant and
    writes the violation report (``report_out``) and the reproducibility
    manifest (next to ``trace_out``, or ``manifest_out``).
    """
    from repro.cluster import Cluster, cpu_mem

    jobs = build_workload(scenario)
    fault_plan = build_fault_plan(scenario)
    config = SimConfig(
        seed=scenario.seed,
        interval=scenario.interval,
        max_time=scenario.horizon,
        estimator_mode=scenario.estimator,
        checkpoint_interval=scenario.checkpoint_interval,
        faults=FaultConfig(**scenario.faults) if scenario.faults else FaultConfig(),
        speed_perturbation=perturbation_from_spec(scenario.perturbation),
    )
    engine = scenario.engine if scenario.engine is not None else default_engine()
    cluster = Cluster.homogeneous(scenario.servers, cpu_mem(16, 80))

    tracer = _SoakTracer(trace_out)
    try:
        result = simulate(
            cluster,
            scenario.policy,
            jobs,
            config,
            tracer=tracer,
            fault_plan=fault_plan,
            engine=engine,
        )

        drill_outcome: Dict[str, List[str]] = {
            "jobs": [],
            "leaked_pods": [],
            "leaked_leases": [],
            "leaked_intents": [],
        }
        if scenario.drill is not None:
            if scenario.drill.get("kind") == "failover":
                drill_outcome = _run_failover_phase(scenario, tracer)
            else:
                drill_outcome = _run_drill_phase(scenario, tracer)

        finished = sorted(
            job_id for job_id, rec in result.jobs.items() if rec.finished
        )
        unfinished = sorted(
            job_id for job_id, rec in result.jobs.items() if not rec.finished
        )
        # Drill jobs are drained (torn down at checkpoint), not converged:
        # legitimately unfinished, but still on the no-lost-jobs hook.
        unfinished.extend(drill_outcome["jobs"])
        tracer.emit(
            EVENT_RUN_COMPLETED,
            scenario.horizon,
            finished=finished,
            unfinished=sorted(unfinished),
            leaked_pods=drill_outcome["leaked_pods"],
            leaked_leases=drill_outcome["leaked_leases"],
            leaked_intents=drill_outcome["leaked_intents"],
        )
    finally:
        tracer.close()

    events = tracer.events
    cfg = checker_config or checker_config_from_spec(
        scenario.checker, interval=scenario.interval
    )
    checker = InvariantChecker(cfg)
    checker.observe_all(events)
    checker.finish()

    manifest = run_manifest(
        config=config,
        engine=engine,
        policy=scenario.policy,
        jobs=jobs,
        fault_plan=fault_plan,
        scenario=scenario.to_dict(),
        extra={"trace": trace_out, "drill": scenario.drill is not None},
    )
    manifest_path = manifest_out or (
        manifest_path_for(trace_out) if trace_out else None
    )
    if manifest_path:
        write_manifest(manifest_path, manifest)

    summary = result.summary()
    report = checker.report(
        extra={
            "scenario": scenario.name,
            "seed": scenario.seed,
            "engine": engine,
            "policy": scenario.policy,
            "sim": {
                "jobs": int(summary["jobs"]),
                "finished": int(summary["finished"]),
                "makespan": summary["makespan"],
                "average_jct": summary["average_jct"],
            },
        }
    )
    report_path = None
    if report_out:
        with open(report_out, "w", encoding="utf8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report_path = report_out

    return SoakOutcome(
        scenario=scenario,
        result=result,
        events=events,
        checker=checker,
        report=report,
        manifest=manifest,
        trace_path=trace_out,
        report_path=report_path,
        manifest_path=manifest_path,
    )
