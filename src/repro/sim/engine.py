"""The discrete-time cluster simulator (§6.1 "Simulator").

The paper evaluates Optimus both on a 13-server testbed and, for anything
larger or parameter-swept, on a discrete-time simulator driven by traces
(loss curves, speeds under different configurations, server capacities, job
configurations). This engine is that simulator:

* time advances in scheduling intervals (10 minutes by default);
* at each boundary, newly arrived jobs are admitted, every active job is
  snapshotted into a :class:`~repro.schedulers.base.JobView` (estimates come
  from the online models, never from ground truth) and the scheduler under
  test produces allocations + placements;
* jobs whose configuration changed pay the §5.4 checkpoint-based scaling
  cost, then progress at their ground-truth speed -- which accounts for the
  placement (Fig. 10 transfer accounting), the parameter-server imbalance of
  the configured partitioner (§5.3) and any injected stragglers (§5.2);
* completions are solved exactly inside the interval.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster.cluster import Cluster
from repro.common.errors import SimulationError
from repro.common.rand import RandomSource
from repro.core.allocation import TaskAllocation
from repro.datastore.hdfs import ChunkStore
from repro.obs.estimators import (
    NULL_ESTIMATOR_TELEMETRY,
    EstimatorTelemetry,
)
from repro.obs.ledger import (
    LEDGER_MODES,
    NULL_LEDGER,
    DecisionLedger,
    use_ledger,
)
from repro.obs.registry import (
    NULL_PROFILER,
    MetricsRegistry,
    PhaseProfiler,
    active_registry,
    use_registry,
)
from repro.obs.spans import span_tracer_for
from repro.obs.timeseries import TimeSeriesDB
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_RECORDED,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_JOB_RESTARTED,
    EVENT_NODE_FAILED,
    EVENT_NODE_RECOVERED,
    EVENT_PLACEMENT_DECIDED,
    EVENT_STRAGGLER_DETECTED,
    EVENT_TASK_CRASHED,
    NULL_TRACER,
    Tracer,
)
from repro.schedulers.base import Scheduler
from repro.sim.metrics import JobRecord, SimulationResult, TimeSlot
from repro.sim.runtime import ESTIMATOR_MODES, RuntimeJob, ScalingCosts
from repro.sim.stragglers import (
    StragglerConfig,
    StragglerInjector,
    effective_interval_speed,
)
from repro.workloads.job import JobSpec


@dataclass(frozen=True)
class SimConfig:
    """All simulator knobs in one immutable bundle."""

    interval: float = 600.0
    max_time: float = 14 * 86400.0
    seed: int = 0
    #: "online" (fit §3 models from observations), "oracle" (ground truth),
    #: or "noisy" (oracle with injected, progress-decaying errors; Fig. 15).
    estimator_mode: str = "online"
    convergence_error: float = 0.0
    speed_error: float = 0.0
    stragglers: StragglerConfig = field(default_factory=StragglerConfig)
    #: Parameter partitioner governing PS load balance: "paa" or "mxnet".
    partition_algorithm: str = "paa"
    #: Feed each job's placement into the ground-truth speed (Fig. 10).
    placement_aware: bool = True
    #: Charge §5.4 checkpoint costs on (re)configuration.
    scaling_costs: ScalingCosts = field(default_factory=ScalingCosts)
    #: Per-container network bandwidth (bytes/s) for the speed ground truth.
    bandwidth: float = 125e6
    #: Loss observations fed to the estimator per job per interval.
    loss_points_per_interval: int = 30
    #: Multiplicative noise on measured interval speeds.
    speed_noise_std: float = 0.03
    #: Profiling pre-runs per job (§6.1 uses 5).
    bootstrap_samples: int = 5
    #: Bytes per training example, for sizing the HDFS files (§5.1).
    example_bytes: int = 3072
    #: Optional background-load profile (t -> reserved capacity fraction):
    #: the non-DL share of the cluster (§7 "Various workloads"). ``None``
    #: gives the DL scheduler the whole cluster.
    background_load: Optional[Callable[[float], float]] = None
    #: Keep a per-interval audit trail of the scheduler's allocations in
    #: ``SimulationResult.decisions`` (handy for tests and debugging).
    record_decisions: bool = False
    #: Stochastic fault rates (node crashes, task crashes, checkpoint loss);
    #: the all-zero default injects nothing and leaves results bit-identical
    #: to a fault-free build.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Seconds of sim time between progress checkpoints; bounds the progress
    #: a crash can destroy. ``None`` checkpoints at every interval boundary.
    checkpoint_interval: Optional[float] = None
    #: Chaos knob for estimator telemetry: a ``t -> multiplier`` applied to
    #: every job's ground-truth speed (the hardware suddenly slowing down,
    #: a noisy neighbour appearing). The online estimators only see the
    #: perturbed observations, so their predictions go stale and the
    #: ``repro.obs.estimators`` drift detector should notice. ``None``
    #: leaves reality untouched.
    speed_perturbation: Optional[Callable[[float], float]] = None
    #: Drift-detector window (recent predictions per job and signal) and
    #: MAPE band for the estimator telemetry (see ``repro.obs.estimators``).
    estimator_drift_window: int = 6
    estimator_drift_threshold: float = 0.5
    #: Decision-ledger fidelity (see :mod:`repro.obs.ledger`): "auto"
    #: resolves to "full" when a tracer is attached and "off" otherwise;
    #: "sampled" keeps only the top-K grants per round as events (plus the
    #: aggregate counters), which is the fleet-scale budget mode; "off"
    #: disables the ledger even with a tracer.
    ledger_mode: str = "auto"
    #: Grants kept per allocation round when ``ledger_mode="sampled"``.
    ledger_top_k: int = 8

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SimulationError("interval must be positive")
        if self.max_time <= 0:
            raise SimulationError("max_time must be positive")
        if self.estimator_mode not in ESTIMATOR_MODES:
            raise SimulationError(
                f"estimator_mode must be one of {ESTIMATOR_MODES}"
            )
        if self.partition_algorithm not in ("paa", "mxnet"):
            raise SimulationError("partition_algorithm must be 'paa' or 'mxnet'")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise SimulationError("checkpoint_interval must be positive or None")
        if self.estimator_drift_window < 2:
            raise SimulationError("estimator_drift_window must be >= 2")
        if self.estimator_drift_threshold <= 0:
            raise SimulationError("estimator_drift_threshold must be positive")
        if self.ledger_mode not in ("auto",) + LEDGER_MODES:
            raise SimulationError(
                f"ledger_mode must be one of {('auto',) + LEDGER_MODES}"
            )
        if self.ledger_top_k < 1:
            raise SimulationError("ledger_top_k must be >= 1")


class Simulation:
    """One simulation run: a cluster, a scheduler and a job trace."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Union[Scheduler, str],
        jobs: Sequence[JobSpec],
        config: Optional[SimConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan: Optional[FaultPlan] = None,
        timeseries: Optional[TimeSeriesDB] = None,
    ):
        if isinstance(scheduler, str):
            # Resolve registered policy names (and "alloc+place" hybrids)
            # through the scheduler registry; importing the package loads
            # every built-in policy module first.
            from repro.schedulers import make_scheduler

            scheduler = make_scheduler(scheduler)
        if not jobs:
            raise SimulationError("need at least one job")
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise SimulationError("job ids must be unique")
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimConfig()
        self.specs = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        self._seed = RandomSource(self.config.seed)
        self._store = ChunkStore(data_nodes=list(cluster.server_names))
        self._injector = StragglerInjector(self.config.stragglers, self._seed)
        self._measure_rng = self._seed.child("interval-speed").rng
        # Fault injection (repro.faults): falsy when neither stochastic
        # faults nor a scripted plan are configured, so the default run
        # pays one bool check per interval and stays bit-identical.
        self._faults = FaultInjector(self.config.faults, self._seed, plan=fault_plan)
        self._prev_layouts: Dict[str, dict] = {}

        # Observability (repro.obs). Both sinks default to off; with no
        # tracer and no registry the profiler is the shared no-op, so the
        # hot loop pays only truthiness checks.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else active_registry()
        if self.tracer or self.metrics:
            self.profiler = PhaseProfiler(self.metrics)
        else:
            self.profiler = NULL_PROFILER
        # Causal span tracing (repro.obs.spans): rides on the event tracer,
        # so it is exactly as on/off as the tracer itself.
        self.spans = span_tracer_for(self.tracer)
        # Prediction-quality telemetry (repro.obs.estimators): on whenever
        # either sink is attached; the null object otherwise.
        if self.tracer or self.metrics:
            self.estimators: EstimatorTelemetry = EstimatorTelemetry(
                tracer=self.tracer,
                metrics=self.metrics,
                drift_window=self.config.estimator_drift_window,
                drift_threshold=self.config.estimator_drift_threshold,
            )
        else:
            self.estimators = NULL_ESTIMATOR_TELEMETRY
        # Decision ledger (repro.obs.ledger): "auto" follows the tracer, so
        # untraced runs keep the null ledger and pay one bool check per
        # allocation round.
        mode = self.config.ledger_mode
        if mode == "auto":
            mode = "full" if self.tracer else "off"
        if mode == "off":
            self.ledger: DecisionLedger = NULL_LEDGER
        else:
            self.ledger = DecisionLedger(
                tracer=self.tracer,
                metrics=self.metrics,
                mode=mode,
                top_k=self.config.ledger_top_k,
            )
        #: Optional metrics-history sink, sampled once per interval.
        self.timeseries = timeseries
        self.scheduler.instrument(
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler,
            spans=self.spans,
        )

    # -- job lifecycle -----------------------------------------------------------
    def _admit(self, spec: JobSpec) -> RuntimeJob:
        cfg = self.config
        job = RuntimeJob(
            spec,
            seed=self._seed,
            bandwidth=cfg.bandwidth,
            partition_algorithm=cfg.partition_algorithm,
            estimator_mode=cfg.estimator_mode,
            convergence_error=cfg.convergence_error,
            speed_error=cfg.speed_error,
            scaling_costs=cfg.scaling_costs,
        )
        job.attach_data(self._store, example_bytes=cfg.example_bytes)
        if cfg.estimator_mode == "online":
            job.bootstrap_speed(num_samples=cfg.bootstrap_samples)
        return job

    # -- background load (§7) -----------------------------------------------------
    def _reserve_background(self, work_cluster: Cluster, now: float) -> None:
        """Reserve the non-DL share of every server before scheduling."""
        profile = self.config.background_load
        if profile is None:
            return
        from repro.sim.background import clamp_fraction

        fraction = clamp_fraction(profile(now))
        if fraction <= 0:
            return
        for server in work_cluster:
            demand = server.capacity * fraction
            if not demand.is_zero():
                server.place(("__background__", "worker", 0), demand)

    # -- fault injection (repro.faults) ------------------------------------------
    def _process_faults(self, now: float, active: Dict[str, RuntimeJob]) -> None:
        """Inject this interval's node/task crashes and roll victims back.

        Runs at the interval start, *before* scheduling: a job killed here
        loses the progress since its last checkpoint, becomes not-running
        (so it pays the §5.4 restore cost when re-placed) and is then free
        to be re-allocated around the dead node in the same interval.
        """
        cfg = self.config
        tracer = self.tracer
        metrics = self.metrics
        faults = self._faults
        update = faults.begin_interval(now, cfg.interval, self.cluster.server_names)
        for name in update.recovered:
            if tracer:
                tracer.emit(EVENT_NODE_RECOVERED, now, server=name)
            metrics.counter("faults.node_recoveries").inc()
        newly_failed = set()
        for outage in update.failed:
            newly_failed.add(outage.server)
            if tracer:
                tracer.emit(
                    EVENT_NODE_FAILED,
                    now,
                    server=outage.server,
                    up_at=outage.up_at,
                )
            metrics.counter("faults.node_failures").inc()
        if newly_failed or update.recovered:
            # Let schedulers with cluster-shaped state (placement caches)
            # react to the changed server set before this interval's round.
            self.scheduler.notify_node_events(
                failed=sorted(newly_failed), recovered=list(update.recovered)
            )

        for job_id, job in active.items():
            if not job.was_running or job.completed:
                continue
            cause = None
            layout = self._prev_layouts.get(job_id)
            if layout and newly_failed.intersection(layout):
                cause = "node_failure"
            else:
                tasks = job.last_allocation.workers + job.last_allocation.ps
                crashed = faults.sample_task_crashes(
                    job_id, tasks, now, cfg.interval
                )
                if crashed > 0:
                    if tracer:
                        tracer.emit(
                            EVENT_TASK_CRASHED, now, job_id=job_id, tasks=crashed
                        )
                    metrics.counter("faults.task_crashes").inc(crashed)
                    cause = "task_crash"
            if cause is None:
                continue
            lost_ckpt = faults.checkpoint_lost(job_id)
            steps_lost, since = job.rollback_to_checkpoint(now, lost=lost_ckpt)
            if tracer:
                tracer.emit(
                    EVENT_JOB_RESTARTED,
                    now,
                    job_id=job_id,
                    cause=cause,
                    steps_lost=steps_lost,
                    since_checkpoint=since,
                    checkpoint_lost=lost_ckpt,
                )
            metrics.counter("faults.job_restarts").inc()
            metrics.counter("faults.steps_lost").inc(steps_lost)

    def _block_down_servers(self, work_cluster: Cluster) -> None:
        """Zero out the schedulable capacity of currently-dead servers."""
        for name in self._faults.down_servers:
            server = work_cluster.server(name)
            remaining = server.available
            if not remaining.is_zero():
                server.place(("__faulted__", "worker", 0), remaining)

    # -- NIC contention ---------------------------------------------------------
    def _nic_shares(self, layouts: Dict[str, dict]) -> Dict[str, float]:
        """Per-task NIC bandwidth on each server, given this interval's
        placements across *all* jobs.

        The testbed's 1 GbE NIC is shared by every container on a server,
        but only *cross-server* traffic uses it: a task's claim on the NIC
        is weighted by the fraction of its peers that live on other
        servers. Fully co-located jobs therefore do not contend at all --
        this is exactly why the §4.2 packing placement wins.
        """
        weights: Dict[str, float] = {}
        for layout in layouts.values():
            total_w = sum(nw for nw, _ in layout.values())
            total_p = sum(np_ for _, np_ in layout.values())
            if total_w < 1 or total_p < 1:
                continue
            for server, (nw, np_) in layout.items():
                remote_ps = (total_p - np_) / total_p
                remote_workers = (total_w - nw) / total_w
                weight = nw * remote_ps + np_ * remote_workers
                weights[server] = weights.get(server, 0.0) + weight
        shares: Dict[str, float] = {}
        for server_name, weight in weights.items():
            nic = self.cluster.server(server_name).network_bandwidth
            shares[server_name] = nic / max(weight, 1.0)
        return shares

    # -- one interval for one job ----------------------------------------------
    def _run_job_interval(
        self,
        job: RuntimeJob,
        allocation: Optional[TaskAllocation],
        layout,
        now: float,
        nic_shares: Optional[Dict[str, float]] = None,
    ) -> Optional[float]:
        """Progress one job through one interval.

        Returns the effective training speed the job actually achieved
        (after placement, imbalance, perturbation and stragglers), or
        ``None`` when it did not run -- the observation the estimator
        telemetry scores the interval's speed prediction against.
        """
        cfg = self.config
        if allocation is None or layout is None:
            job.note_interval(None, 0.0)
            return None
        w, p = allocation.workers, allocation.ps
        overhead = job.scaling_overhead(allocation)
        if job.started and allocation != job.last_allocation:
            with self.spans.span(
                "rescale", job_id=job.spec.job_id, overhead=overhead
            ):
                if self.tracer:
                    self.tracer.emit(
                        EVENT_JOB_RESCALED,
                        now,
                        job_id=job.spec.job_id,
                        old=[job.last_allocation.workers, job.last_allocation.ps],
                        new=[w, p],
                        overhead=overhead,
                    )
        if overhead > 0 and job.started:
            self.metrics.counter("engine.rescales").inc()
        run_time = max(cfg.interval - overhead, 0.0)
        job.note_interval(allocation, overhead)
        if run_time <= 0:
            return None

        imbalance = job.imbalance_factor(p)
        base_speed = job.truth.speed(
            p,
            w,
            placement=layout if cfg.placement_aware else None,
            imbalance=imbalance,
            bandwidths=nic_shares if cfg.placement_aware else None,
        )
        if cfg.speed_perturbation is not None:
            base_speed *= max(cfg.speed_perturbation(now), 0.0)
        episodes = self._injector.sample(w, cfg.interval)
        if episodes:
            if self.tracer:
                self.tracer.emit(
                    EVENT_STRAGGLER_DETECTED,
                    now,
                    job_id=job.spec.job_id,
                    episodes=len(episodes),
                    handled=cfg.stragglers.handling_enabled,
                )
            self.metrics.counter("engine.straggler_episodes").inc(len(episodes))
            plain = job.truth.speed(p, w, imbalance=imbalance)
            degraded = effective_interval_speed(
                job.truth, p, w, episodes, run_time, imbalance=imbalance
            )
            if plain > 0:
                base_speed *= degraded / plain
        if base_speed <= 0:
            return None

        steps_before = job.steps_done
        converged_after = job.advance(run_time, base_speed, workers=w)
        if converged_after is not None:
            job.completion_time = now + overhead + converged_after

        if cfg.estimator_mode == "online":
            job.record_losses(
                steps_before, job.steps_done, cfg.loss_points_per_interval
            )
            noise = 1.0 + self._measure_rng.normal(0.0, cfg.speed_noise_std)
            job.record_speed(p, w, base_speed * max(noise, 0.05))
        return base_speed

    # -- metrics -----------------------------------------------------------------
    def _slot(
        self,
        now: float,
        running: Dict[str, RuntimeJob],
        decision_allocs: Dict[str, TaskAllocation],
    ) -> TimeSlot:
        tasks = 0
        alloc_cpu = alloc_worker = alloc_ps = 0.0
        busy_worker = busy_ps = 0.0
        for job_id, alloc in decision_allocs.items():
            job = running[job_id]
            w, p = alloc.workers, alloc.ps
            tasks += w + p
            w_cpu = job.spec.worker_demand.get("cpu") * w
            p_cpu = job.spec.ps_demand.get("cpu") * p
            alloc_worker += w_cpu
            alloc_ps += p_cpu
            breakdown = job.truth.breakdown(
                p, w, imbalance=job.imbalance_factor(p)
            )
            total = breakdown.total
            if total > 0:
                busy_worker += w_cpu * (breakdown.compute / total)
                busy_ps += p_cpu * (
                    (breakdown.transfer + breakdown.update) / total
                )
        alloc_cpu = alloc_worker + alloc_ps
        return TimeSlot(
            time=now,
            running_jobs=len(decision_allocs),
            running_tasks=tasks,
            allocated_cpu=alloc_cpu,
            busy_worker_cpu=busy_worker,
            busy_ps_cpu=busy_ps,
            allocated_worker_cpu=alloc_worker,
            allocated_ps_cpu=alloc_ps,
        )

    # -- the main loop --------------------------------------------------------------
    def run(self) -> SimulationResult:
        # Both context managers cover the event engine too: it overrides
        # only ``_run``, never ``run``.
        with use_registry(self.metrics), use_ledger(self.ledger):
            return self._run()

    def _admit_one(self, spec: JobSpec, now: float, active: Dict[str, RuntimeJob]) -> None:
        """Admit one job at scheduling boundary *now* (shared by both engines)."""
        active[spec.job_id] = self._admit(spec)
        if self.tracer:
            self.tracer.emit(
                EVENT_JOB_ARRIVED,
                now,
                job_id=spec.job_id,
                model=spec.model_name,
                mode=spec.mode,
                arrival_time=spec.arrival_time,
            )
        self.metrics.counter("engine.jobs_admitted").inc()

    def _run(self) -> SimulationResult:
        cfg = self.config
        profiler = self.profiler
        specs = self.specs
        next_idx = 0
        active: Dict[str, RuntimeJob] = {}
        done: Dict[str, RuntimeJob] = {}
        timeline: List[TimeSlot] = []
        decisions: List[Dict[str, TaskAllocation]] = []
        now = 0.0

        while (next_idx < len(specs) or active) and now <= cfg.max_time:
            profiler.begin_interval()
            while next_idx < len(specs) and specs[next_idx].arrival_time <= now:
                self._admit_one(specs[next_idx], now, active)
                next_idx += 1

            if not active:
                # Idle cluster: fast-forward to the boundary after the next
                # arrival instead of spinning through empty intervals.
                next_arrival = specs[next_idx].arrival_time
                now = math.ceil(next_arrival / cfg.interval) * cfg.interval
                continue

            self._process_interval(
                now, active, done, timeline, decisions, len(specs) - next_idx
            )
            now += cfg.interval

        return self._finalize(active, done, specs[next_idx:], timeline, decisions)

    def _process_interval(
        self,
        now: float,
        active: Dict[str, RuntimeJob],
        done: Dict[str, RuntimeJob],
        timeline: List[TimeSlot],
        decisions: List[Dict[str, TaskAllocation]],
        pending_count: int,
    ) -> Optional[Dict[str, float]]:
        """Run one scheduling interval starting at *now*.

        This is the engine-agnostic interval body: the tick loop calls it at
        every boundary with active jobs, the event engine from its schedule
        events. Returns projected completion times (absolute seconds) for
        the jobs whose speed was predicted this interval when estimator
        telemetry is attached, else ``None`` -- the event engine turns those
        into completion-probe events.
        """
        cfg = self.config
        tracer = self.tracer
        metrics = self.metrics
        profiler = self.profiler

        if self._faults:
            self._process_faults(now, active)

        predictions: Optional[Dict[str, float]] = None
        spans = self.spans
        estimators = self.estimators
        spans.set_time(now)
        self.ledger.set_time(now)
        with spans.span("interval", active_jobs=len(active)):
            with spans.span("fit"), profiler.phase("fit"):
                views = [job.view() for job in active.values()]
            with profiler.phase("snapshot"):
                work_cluster = self.cluster.snapshot()
                self._reserve_background(work_cluster, now)
                if self._faults:
                    self._block_down_servers(work_cluster)
            # The scheduler itself times its "allocate" and "place"
            # sub-phases through the shared profiler and opens matching
            # child spans (see CompositeScheduler).
            with profiler.phase("schedule"):
                decision = self.scheduler.schedule(work_cluster, views)

            if tracer:
                for job_id, alloc in decision.allocations.items():
                    tracer.emit(
                        EVENT_ALLOCATION_DECIDED,
                        now,
                        job_id=job_id,
                        workers=alloc.workers,
                        ps=alloc.ps,
                    )
                for job_id, layout in decision.layouts.items():
                    tracer.emit(
                        EVENT_PLACEMENT_DECIDED,
                        now,
                        job_id=job_id,
                        servers=len(layout),
                        layout={
                            server: [nw, np_]
                            for server, (nw, np_) in sorted(layout.items())
                        },
                    )

            if estimators:
                # What the online models promised for this interval, to
                # be scored against what the jobs actually achieve.
                predictions = {}
                views_by_id = {view.spec.job_id: view for view in views}
                for job_id, alloc in decision.allocations.items():
                    view = views_by_id.get(job_id)
                    if view is None or alloc.workers < 1:
                        continue
                    speed_pred = view.speed(alloc.ps, alloc.workers)
                    estimators.record_speed_prediction(job_id, speed_pred)
                    estimators.record_total_prediction(
                        job_id,
                        active[job_id].steps_done + view.remaining_steps,
                    )
                    if speed_pred and speed_pred > 0:
                        predictions[job_id] = (
                            now + view.remaining_steps / speed_pred
                        )

            with spans.span("progress"), profiler.phase("progress"):
                nic_shares = self._nic_shares(decision.layouts)
                for job_id, job in active.items():
                    allocation = decision.allocations.get(job_id)
                    layout = decision.layouts.get(job_id)
                    achieved = self._run_job_interval(
                        job, allocation, layout, now, nic_shares
                    )
                    if achieved is not None and achieved > 0:
                        estimators.resolve_speed(job_id, achieved, now)

            if self._faults:
                # Snapshot surviving jobs' progress at the interval end;
                # ``checkpoint_interval`` throttles how often, bounding the
                # progress a later crash can destroy.
                boundary = now + cfg.interval
                for job_id, job in active.items():
                    if job.completed or not job.was_running:
                        continue
                    if job.checkpoint_due(boundary, cfg.checkpoint_interval):
                        job.record_checkpoint(boundary)
                        self._faults.note_checkpoint(job_id)
                        if tracer:
                            tracer.emit(
                                EVENT_CHECKPOINT_RECORDED,
                                boundary,
                                job_id=job_id,
                                steps=job.steps_done,
                            )
                self._prev_layouts = {
                    job_id: dict(layout)
                    for job_id, layout in decision.layouts.items()
                }

            timeline.append(
                self._slot(now, active, dict(decision.allocations))
            )
            if cfg.record_decisions:
                decisions.append(dict(decision.allocations))

            for job_id in [j for j, job in active.items() if job.completed]:
                job = active.pop(job_id)
                done[job_id] = job
                if estimators:
                    # Fig.-6 replay: score every total-steps prediction
                    # made over the job's life against the true total.
                    estimators.resolve_totals(job_id, job.steps_done, now)
                    estimators.discard_job(job_id)
                if tracer:
                    tracer.emit(
                        EVENT_JOB_COMPLETED,
                        now,
                        job_id=job_id,
                        completion_time=job.completion_time,
                        steps=job.steps_done,
                        num_scalings=job.num_scalings,
                    )
                metrics.counter("engine.jobs_completed").inc()
            metrics.counter("engine.intervals").inc()
            metrics.gauge("engine.active_jobs").set(float(len(active)))
            if tracer:
                tracer.emit(
                    EVENT_INTERVAL_TICK,
                    now,
                    running_jobs=len(decision.scheduled_jobs),
                    active_jobs=len(active),
                    pending_jobs=pending_count,
                    phases=profiler.interval_timings(),
                )
        if self.timeseries is not None:
            self.timeseries.sample_registry(metrics, now)
        return predictions

    def _finalize(
        self,
        active: Dict[str, RuntimeJob],
        done: Dict[str, RuntimeJob],
        never_admitted: Sequence[JobSpec],
        timeline: List[TimeSlot],
        decisions: List[Dict[str, TaskAllocation]],
    ) -> SimulationResult:
        cfg = self.config
        done.update(active)  # unfinished jobs (hit max_time) included as such
        records = {
            job_id: JobRecord(
                job_id=job_id,
                model=job.spec.model_name,
                mode=job.spec.mode,
                arrival_time=job.spec.arrival_time,
                completion_time=job.completion_time,
                total_steps=job.steps_done,
                scaling_time=job.scaling_time_total,
                num_scalings=job.num_scalings,
                chunks_moved=job.chunks_moved,
                num_restarts=job.num_restarts,
                steps_lost=job.steps_lost_total,
            )
            for job_id, job in done.items()
        }
        # Jobs never admitted (arrival beyond max_time) count as unfinished.
        for spec in never_admitted:
            records[spec.job_id] = JobRecord(
                job_id=spec.job_id,
                model=spec.profile.name,
                mode=spec.mode,
                arrival_time=spec.arrival_time,
                completion_time=None,
                total_steps=0.0,
                scaling_time=0.0,
                num_scalings=0,
                chunks_moved=0,
            )
        phase_timings = self.profiler.summary() or None
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            jobs=records,
            timeline=timeline,
            interval=cfg.interval,
            seed=cfg.seed,
            decisions=decisions if cfg.record_decisions else None,
            phase_timings=phase_timings,
        )


#: The selectable engine cores: the fixed-tick loop above and the
#: event-heap core of :mod:`repro.sim.events`. Both produce bit-identical
#: results on the same trace (see ``tests/test_sim_events.py``).
ENGINES = ("tick", "event")


def default_engine() -> str:
    """The engine :func:`simulate` uses when none is named.

    Normally ``"tick"``; the ``REPRO_SIM_ENGINE`` environment variable
    overrides it, which is how CI's nightly lane re-runs the whole
    fault/chaos suite on the event core without touching every call site.
    """
    engine = os.environ.get("REPRO_SIM_ENGINE", "tick")
    if engine not in ENGINES:
        raise SimulationError(
            f"REPRO_SIM_ENGINE must be one of {ENGINES}, got {engine!r}"
        )
    return engine


def simulation_for(
    engine: str,
    cluster: Cluster,
    scheduler: Union[Scheduler, str],
    jobs: Sequence[JobSpec],
    config: Optional[SimConfig] = None,
    **kwargs,
) -> Simulation:
    """Build a :class:`Simulation` for the named engine core."""
    if engine not in ENGINES:
        raise SimulationError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "event":
        from repro.sim.events import EventDrivenSimulation

        return EventDrivenSimulation(cluster, scheduler, jobs, config, **kwargs)
    return Simulation(cluster, scheduler, jobs, config, **kwargs)


def simulate(
    cluster: Cluster,
    scheduler: Union[Scheduler, str],
    jobs: Sequence[JobSpec],
    config: Optional[SimConfig] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    fault_plan: Optional[FaultPlan] = None,
    timeseries: Optional[TimeSeriesDB] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Convenience one-shot wrapper around :class:`Simulation`.

    ``tracer`` and ``metrics`` attach the :mod:`repro.obs` sinks; both
    default to off (the null tracer / the currently installed registry).
    ``fault_plan`` scripts deterministic faults on top of
    ``config.faults`` (see :mod:`repro.faults`); ``timeseries`` attaches
    a :class:`~repro.obs.timeseries.TimeSeriesDB` sampled every interval.
    ``engine`` selects the loop core: ``"tick"`` (fixed-interval loop) or
    ``"event"`` (the :mod:`repro.sim.events` heap core; same results,
    sparse timelines cost nothing). ``None`` means :func:`default_engine`
    (``"tick"`` unless ``REPRO_SIM_ENGINE`` says otherwise).
    """
    return simulation_for(
        engine if engine is not None else default_engine(),
        cluster,
        scheduler,
        jobs,
        config,
        tracer=tracer,
        metrics=metrics,
        fault_plan=fault_plan,
        timeseries=timeseries,
    ).run()
