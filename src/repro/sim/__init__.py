"""Discrete-time cluster simulator and experiment harness (§6)."""

from repro.sim.background import (
    LoadProfile,
    constant_load,
    diurnal_load,
    step_load,
)
from repro.sim.arena import (
    ArenaReport,
    PolicyScore,
    format_arena,
    jain_index,
    run_arena,
    score_result,
)
from repro.sim.engine import (
    ENGINES,
    default_engine,
    SimConfig,
    Simulation,
    simulate,
    simulation_for,
)
from repro.sim.events import EventDrivenSimulation, probe_accuracy
from repro.sim.manifest import (
    config_digest,
    manifest_path_for,
    run_manifest,
    write_manifest,
)
from repro.sim.soak import (
    ScenarioSpec,
    SoakOutcome,
    build_fault_plan,
    build_workload,
    load_scenario,
    perturbation_from_spec,
    run_soak,
)
from repro.sim.experiment import (
    SchedulerStats,
    compare_schedulers,
    format_comparison,
    normalized,
    run_repeats,
)
from repro.sim.metrics import (
    JobRecord,
    SimulationResult,
    TimeSlot,
    aggregate_results,
)
from repro.sim.runtime import RuntimeJob, ScalingCosts
from repro.sim.stragglers import (
    StragglerConfig,
    StragglerEpisode,
    StragglerInjector,
    degraded_speed,
    effective_interval_speed,
)

__all__ = [
    "ArenaReport",
    "PolicyScore",
    "format_arena",
    "jain_index",
    "run_arena",
    "score_result",
    "probe_accuracy",
    "LoadProfile",
    "constant_load",
    "diurnal_load",
    "step_load",
    "ENGINES",
    "default_engine",
    "SimConfig",
    "Simulation",
    "EventDrivenSimulation",
    "simulate",
    "simulation_for",
    "SimulationResult",
    "JobRecord",
    "TimeSlot",
    "aggregate_results",
    "RuntimeJob",
    "ScalingCosts",
    "StragglerConfig",
    "StragglerEpisode",
    "StragglerInjector",
    "degraded_speed",
    "effective_interval_speed",
    "SchedulerStats",
    "run_repeats",
    "compare_schedulers",
    "config_digest",
    "manifest_path_for",
    "run_manifest",
    "write_manifest",
    "ScenarioSpec",
    "SoakOutcome",
    "build_fault_plan",
    "build_workload",
    "load_scenario",
    "perturbation_from_spec",
    "run_soak",
    "normalized",
    "format_comparison",
]
