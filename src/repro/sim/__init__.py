"""Discrete-time cluster simulator and experiment harness (§6)."""

from repro.sim.background import (
    LoadProfile,
    constant_load,
    diurnal_load,
    step_load,
)
from repro.sim.engine import SimConfig, Simulation, simulate
from repro.sim.experiment import (
    SchedulerStats,
    compare_schedulers,
    format_comparison,
    normalized,
    run_repeats,
)
from repro.sim.metrics import (
    JobRecord,
    SimulationResult,
    TimeSlot,
    aggregate_results,
)
from repro.sim.runtime import RuntimeJob, ScalingCosts
from repro.sim.stragglers import (
    StragglerConfig,
    StragglerEpisode,
    StragglerInjector,
    degraded_speed,
    effective_interval_speed,
)

__all__ = [
    "LoadProfile",
    "constant_load",
    "diurnal_load",
    "step_load",
    "SimConfig",
    "Simulation",
    "simulate",
    "SimulationResult",
    "JobRecord",
    "TimeSlot",
    "aggregate_results",
    "RuntimeJob",
    "ScalingCosts",
    "StragglerConfig",
    "StragglerEpisode",
    "StragglerInjector",
    "degraded_speed",
    "effective_interval_speed",
    "SchedulerStats",
    "run_repeats",
    "compare_schedulers",
    "normalized",
    "format_comparison",
]
