"""Reproducibility manifests for simulation and soak runs.

A failed nightly soak is worthless unless it can be replayed exactly. The
manifest is a small JSON file written next to every ``--trace-out`` that
pins everything a replay needs: the seed, the engine core, the policy, the
fault plan, a stable hash of the :class:`~repro.sim.engine.SimConfig`, the
workload size and the package version. ``repro soak`` additionally embeds
the scenario spec itself.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.sim.engine import SimConfig
from repro.workloads.job import JobSpec

MANIFEST_VERSION = 1


def manifest_path_for(trace_path: str) -> str:
    """The manifest file that belongs to *trace_path* (same directory)."""
    base, _ = os.path.splitext(trace_path)
    return base + ".manifest.json"


def _jsonable(value):
    """A JSON-safe, stable stand-in for one config field."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if callable(value):
        # Callables (background load, speed perturbation) cannot be
        # serialised; record *that* one was attached, stably.
        return f"<callable:{getattr(value, '__name__', 'lambda')}>"
    return repr(value)


def config_to_dict(config: SimConfig) -> Dict:
    """A stable JSON description of every :class:`SimConfig` knob."""
    return {
        f.name: _jsonable(getattr(config, f.name))
        for f in dataclasses.fields(config)
    }


def config_digest(config: SimConfig) -> str:
    """A short stable hash identifying a :class:`SimConfig` exactly."""
    payload = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf8")).hexdigest()[:16]


def fault_plan_to_dict(plan: Optional[FaultPlan]) -> Optional[Dict]:
    """Full, replayable JSON form of a scripted fault plan."""
    if plan is None or not plan:
        return None
    return {
        "node_crashes": [dataclasses.asdict(c) for c in plan.node_crashes],
        "task_crashes": [dataclasses.asdict(c) for c in plan.task_crashes],
        "checkpoint_losses": [
            dataclasses.asdict(c) for c in plan.checkpoint_losses
        ],
        "controller_crashes": [
            dataclasses.asdict(c) for c in plan.controller_crashes
        ],
    }


def run_manifest(
    *,
    config: Optional[SimConfig] = None,
    engine: str,
    policy: str,
    seed: Optional[int] = None,
    jobs: Optional[Sequence[JobSpec]] = None,
    fault_plan: Optional[FaultPlan] = None,
    scenario: Optional[Dict] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Everything needed to replay this run, as one JSON-ready dict.

    ``config`` may be omitted by runs that have no :class:`SimConfig`
    (the failover drill's control-plane loop); pass ``seed`` explicitly
    then, and the config hash/dump fields are null.
    """
    from repro import __version__

    manifest: Dict = {
        "manifest_version": MANIFEST_VERSION,
        "package_version": __version__,
        "seed": config.seed if config is not None else seed,
        "engine": engine,
        "policy": policy,
        "config_hash": config_digest(config) if config is not None else None,
        "config": config_to_dict(config) if config is not None else None,
        "fault_plan": fault_plan_to_dict(fault_plan),
    }
    if jobs is not None:
        manifest["workload"] = {
            "jobs": len(jobs),
            "first_arrival": min(j.arrival_time for j in jobs),
            "last_arrival": max(j.arrival_time for j in jobs),
        }
    if scenario is not None:
        manifest["scenario"] = scenario
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str, manifest: Dict) -> str:
    """Write *manifest* to *path* (pretty-printed, stable key order)."""
    with open(path, "w", encoding="utf8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
