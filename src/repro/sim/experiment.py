"""Experiment harness: repeated runs, scheduler comparisons, normalisation.

The paper repeats each experiment 3 times and reports averages (§6.1), then
presents most results *normalised to Optimus* (Figs. 11, 16-19). This module
packages that methodology so every bench regenerating an evaluation figure
is a few lines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.common.errors import SimulationError
from repro.schedulers.composite import make_scheduler
from repro.sim.engine import SimConfig, Simulation
from repro.sim.metrics import SimulationResult, aggregate_results
from repro.workloads.job import JobSpec

#: A factory producing the job trace for a given repeat index, so repeats
#: use different (but seed-determined) workloads like the paper's reruns.
WorkloadFactory = Callable[[int], Sequence[JobSpec]]


@dataclass(frozen=True)
class SchedulerStats:
    """Aggregated metrics for one scheduler across repeats."""

    name: str
    average_jct: float
    jct_std: float
    makespan: float
    makespan_std: float
    runs: int
    results: Sequence[SimulationResult]


def run_repeats(
    cluster_factory: Callable[[], Cluster],
    scheduler_name: str,
    workload: WorkloadFactory,
    config: SimConfig,
    repeats: int = 3,
    scheduler_kwargs: Optional[dict] = None,
) -> SchedulerStats:
    """Run one scheduler over *repeats* seeded workloads and aggregate."""
    if repeats < 1:
        raise SimulationError("repeats must be >= 1")
    results: List[SimulationResult] = []
    for i in range(repeats):
        scheduler = make_scheduler(scheduler_name, **(scheduler_kwargs or {}))
        run_config = replace(config, seed=config.seed + i)
        sim = Simulation(cluster_factory(), scheduler, workload(i), run_config)
        results.append(sim.run())
    agg = aggregate_results(results)
    return SchedulerStats(
        name=scheduler_name,
        average_jct=agg["average_jct"],
        jct_std=agg["jct_std"],
        makespan=agg["makespan"],
        makespan_std=agg["makespan_std"],
        runs=repeats,
        results=tuple(results),
    )


def compare_schedulers(
    cluster_factory: Callable[[], Cluster],
    scheduler_names: Sequence[str],
    workload: WorkloadFactory,
    config: Optional[SimConfig] = None,
    repeats: int = 3,
    scheduler_kwargs: Optional[Dict[str, dict]] = None,
) -> Dict[str, SchedulerStats]:
    """Run several schedulers over the *same* seeded workloads."""
    config = config or SimConfig()
    stats = {}
    for name in scheduler_names:
        kwargs = (scheduler_kwargs or {}).get(name)
        stats[name] = run_repeats(
            cluster_factory, name, workload, config, repeats, kwargs
        )
    return stats


def normalized(
    stats: Dict[str, SchedulerStats], baseline: str = "optimus"
) -> Dict[str, Dict[str, float]]:
    """JCT and makespan of every scheduler relative to *baseline* (Fig. 11).

    A value of 2.39 for DRF's JCT means DRF's average JCT is 2.39x the
    baseline's -- exactly how the paper's normalised bar charts read.
    """
    if baseline not in stats:
        raise SimulationError(f"baseline {baseline!r} missing from stats")
    base = stats[baseline]
    if base.average_jct <= 0 or base.makespan <= 0:
        raise SimulationError("baseline metrics must be positive")
    return {
        name: {
            "jct": s.average_jct / base.average_jct,
            "makespan": s.makespan / base.makespan,
        }
        for name, s in stats.items()
    }


def format_comparison(
    stats: Dict[str, SchedulerStats], baseline: str = "optimus"
) -> str:
    """A printable table: absolute and normalised metrics per scheduler."""
    norm = normalized(stats, baseline)
    lines = [
        f"{'scheduler':14s} {'JCT (h)':>9s} {'±std':>7s} {'norm':>6s} "
        f"{'makespan (h)':>13s} {'±std':>7s} {'norm':>6s}"
    ]
    for name, s in stats.items():
        lines.append(
            f"{name:14s} {s.average_jct / 3600:9.2f} {s.jct_std / 3600:7.2f} "
            f"{norm[name]['jct']:6.2f} {s.makespan / 3600:13.2f} "
            f"{s.makespan_std / 3600:7.2f} {norm[name]['makespan']:6.2f}"
        )
    return "\n".join(lines)
