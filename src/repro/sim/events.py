"""The event-driven simulator core.

:class:`EventDrivenSimulation` replaces the fixed-tick driver of
:class:`~repro.sim.engine.Simulation` with an event heap. Three event kinds
live on the heap:

* **arrival** -- one per job spec, stamped with the first scheduling
  boundary at or after the job's submission time;
* **schedule** -- a scheduling point at an interval boundary. Schedule
  events are self-perpetuating: processing one runs the shared interval
  body and, while any job remains active, pushes the next boundary. When
  the cluster drains, the chain stops and the next arrival restarts it --
  so idle stretches of the timeline cost zero work, however long;
* **completion probe** -- the projected completion time of a running job
  (from the interval's speed prediction, so only present when estimator
  telemetry is attached). Probes never mutate simulation state: popping
  one scores the projection against what actually happened
  (``sim.events_completion_confirmed`` / ``..._stale``), giving an
  event-granular view of estimator quality.

Heap invariants:

* events are ordered by ``(time, rank, seq)`` with arrivals (rank 0)
  before the schedule point (rank 1) at the same boundary, probes last;
* at most **one** schedule event is outstanding at any moment
  (``self._schedule_at``); arrivals only seed a boundary when no chain is
  alive, and a live chain steps through every boundary in between;
* per job, only the newest completion probe is live (stamp check) --
  superseded probes count as stale on pop.

Because arrivals are admitted at the same boundaries in the same order,
and the interval body is byte-for-byte the one the tick loop runs, the
two engines consume the seeded RNG streams identically and produce
**bit-identical results** on any trace -- asserted on multiple seeds by
``tests/test_sim_events.py``. What the heap buys is the scaling story:
no per-boundary spin during idle gaps and no O(n) pending-list scans,
which is what lets ``bench_fig12_scalability`` drive thousands of jobs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.core.allocation import TaskAllocation
from repro.sim.engine import Simulation
from repro.sim.metrics import SimulationResult, TimeSlot
from repro.sim.runtime import RuntimeJob

#: Pop order within one timestamp: admissions, then the scheduling point,
#: then completion probes.
RANK_ARRIVAL = 0
RANK_SCHEDULE = 1
RANK_COMPLETION = 2

EVENT_KIND_NAMES = {
    RANK_ARRIVAL: "arrival",
    RANK_SCHEDULE: "schedule",
    RANK_COMPLETION: "completion",
}


def probe_accuracy(metrics) -> Dict[str, float]:
    """Summarise completion-probe outcomes from a metrics registry.

    Returns the confirmed/stale/missed counts plus ``accuracy`` -- the
    fraction of *scored* probes (stale ones superseded by a rescale are
    excluded) whose job had really finished by its projected time. An
    event-granular estimator-quality number: 1.0 means every surviving
    projection was met. All zeros when the run attached no telemetry.
    """
    counters = metrics.snapshot().get("counters", {})
    confirmed = float(counters.get("sim.events_completion_confirmed", 0))
    stale = float(counters.get("sim.events_completion_stale", 0))
    missed = float(counters.get("sim.events_completion_missed", 0))
    scored = confirmed + missed
    return {
        "confirmed": confirmed,
        "stale": stale,
        "missed": missed,
        "accuracy": confirmed / scored if scored > 0 else 0.0,
    }


class EventDrivenSimulation(Simulation):
    """A :class:`Simulation` whose main loop is an event heap.

    Construction and every per-interval mechanism (faults, stragglers,
    estimators, spans, checkpoints) are inherited; only the driver that
    decides *when* work happens is replaced.
    """

    def _run(self) -> SimulationResult:
        cfg = self.config
        interval = cfg.interval
        metrics = self.metrics
        spans = self.spans
        specs = self.specs

        seq = itertools.count()
        heap: List[Tuple[float, int, int, object]] = []
        for spec in specs:
            boundary = math.ceil(spec.arrival_time / interval) * interval
            heapq.heappush(heap, (boundary, RANK_ARRIVAL, next(seq), spec))

        active: Dict[str, RuntimeJob] = {}
        done: Dict[str, RuntimeJob] = {}
        timeline: List[TimeSlot] = []
        decisions: List[Dict[str, TaskAllocation]] = []
        admitted = 0
        events_processed = 0
        heap_peak = len(heap)
        #: Time of the single outstanding schedule event, or None when the
        #: chain is not alive (idle cluster).
        self._schedule_at: Optional[float] = None
        #: Latest live completion-probe stamp per job.
        probe_stamps: Dict[str, int] = {}

        while heap:
            when, rank, _, payload = heapq.heappop(heap)
            if when > cfg.max_time:
                break
            events_processed += 1

            if rank == RANK_ARRIVAL:
                self._admit_one(payload, when, active)
                admitted += 1
                metrics.counter("sim.events_arrival").inc()
                if self._schedule_at is None:
                    # Idle cluster: this arrival restarts the schedule chain.
                    self._schedule_at = when
                    heapq.heappush(heap, (when, RANK_SCHEDULE, next(seq), None))

            elif rank == RANK_SCHEDULE:
                self._schedule_at = None
                self.profiler.begin_interval()
                metrics.counter("sim.events_schedule").inc()
                if active:
                    spans.set_time(when)
                    with spans.span(
                        "event_loop",
                        kind="schedule",
                        heap_size=len(heap),
                        active_jobs=len(active),
                    ):
                        predictions = self._process_interval(
                            when,
                            active,
                            done,
                            timeline,
                            decisions,
                            len(specs) - admitted,
                        )
                    if active:
                        self._schedule_at = when + interval
                        heapq.heappush(
                            heap, (self._schedule_at, RANK_SCHEDULE, next(seq), None)
                        )
                    if predictions:
                        for job_id, projected in predictions.items():
                            if job_id not in active:
                                continue  # completed inside this interval
                            stamp = probe_stamps.get(job_id, 0) + 1
                            probe_stamps[job_id] = stamp
                            heapq.heappush(
                                heap,
                                (
                                    max(projected, when),
                                    RANK_COMPLETION,
                                    next(seq),
                                    (job_id, stamp),
                                ),
                            )

            else:  # RANK_COMPLETION: score a projected completion, no state change
                job_id, stamp = payload
                if probe_stamps.get(job_id) != stamp:
                    metrics.counter("sim.events_completion_stale").inc()
                elif job_id in done:
                    metrics.counter("sim.events_completion_confirmed").inc()
                else:
                    # Still running past its projection: the estimate was
                    # optimistic (or the job was rescaled down).
                    metrics.counter("sim.events_completion_missed").inc()

            if len(heap) > heap_peak:
                heap_peak = len(heap)

        metrics.counter("sim.events_processed").inc(float(events_processed))
        metrics.gauge("sim.event_heap_peak").set(float(heap_peak))
        return self._finalize(active, done, specs[admitted:], timeline, decisions)
