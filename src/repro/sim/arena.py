"""The scheduler arena: head-to-head policy runs on one seeded trace.

Every policy registered with :mod:`repro.schedulers.registry` consumes the
same observation surface and emits the same action surface, so any set of
them can be raced on an identical workload: same job specs, same cluster
shape, same seed, same engine core. :func:`run_arena` does exactly that and
produces an :class:`ArenaReport` with the headline metrics per policy --
JCT statistics over finished jobs, effective makespan, Jain's fairness
index over the JCT distribution, and utilisation -- plus every metric
normalised to a baseline policy (the first one, by default), which is how
the paper's Fig.-11 style comparisons read.

The report serialises to strict JSON (:meth:`ArenaReport.to_dict`) and to a
flat gate dictionary (:meth:`ArenaReport.gate_dict`) consumed by
``benchmarks/check_regression.py``, which is what CI's arena lane diffs
against the committed baseline.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.common.errors import SimulationError
from repro.sim.engine import SimConfig, default_engine, simulation_for
from repro.sim.metrics import SimulationResult
from repro.workloads.job import JobSpec


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``, in (0, 1].

    1.0 means perfectly equal values; ``1/n`` means one value dominates.
    Non-finite entries are ignored; an empty input scores 0.0.
    """
    vals = [v for v in values if math.isfinite(v) and v >= 0.0]
    if not vals:
        return 0.0
    squares = sum(v * v for v in vals)
    if squares <= 0.0:
        return 1.0  # all-zero: degenerate but perfectly equal
    total = sum(vals)
    return (total * total) / (len(vals) * squares)


@dataclass(frozen=True)
class PolicyScore:
    """One policy's headline metrics from its arena run."""

    policy: str
    finished: int
    jobs: int
    #: Mean / p95 JCT over *finished* jobs (seconds); 0.0 if none finished.
    average_jct: float
    jct_p95: float
    #: First arrival to last *finished* completion (seconds); unlike
    #: ``SimulationResult.makespan`` this stays finite when some jobs never
    #: finish, so reports remain strict JSON.
    effective_makespan: float
    #: Jain's index over the finished jobs' JCTs.
    jain_fairness: float
    worker_utilization: float
    ps_utilization: float
    scheduling_intervals: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "policy": self.policy,
            "finished": self.finished,
            "jobs": self.jobs,
            "average_jct_s": self.average_jct,
            "jct_p95_s": self.jct_p95,
            "effective_makespan_s": self.effective_makespan,
            "jain_fairness": self.jain_fairness,
            "worker_utilization": self.worker_utilization,
            "ps_utilization": self.ps_utilization,
            "scheduling_intervals": self.scheduling_intervals,
        }


def score_result(policy: str, result: SimulationResult) -> PolicyScore:
    """Condense one run into the arena's headline metrics."""
    finished = result.finished_jobs
    jcts = [j.jct for j in finished]
    if finished:
        avg = sum(jcts) / len(jcts)
        p95 = result.jct_percentile(95)
        first = min(j.arrival_time for j in result.jobs.values())
        last = max(j.completion_time for j in finished)
        span = max(last - first, 0.0)
    else:
        avg = p95 = span = 0.0
    return PolicyScore(
        policy=policy,
        finished=len(finished),
        jobs=len(result.jobs),
        average_jct=avg,
        jct_p95=p95,
        effective_makespan=span,
        jain_fairness=jain_index(jcts),
        worker_utilization=result.mean_worker_utilization(),
        ps_utilization=result.mean_ps_utilization(),
        scheduling_intervals=len(result.timeline),
    )


@dataclass(frozen=True)
class ArenaReport:
    """The head-to-head outcome: one :class:`PolicyScore` per policy."""

    scores: Sequence[PolicyScore]
    baseline: str
    seed: int
    engine: str
    servers: int
    jobs: int
    #: Per-policy divergence attribution vs the baseline (see
    #: :func:`repro.obs.explain.trace_diff`): populated when the arena ran
    #: with ``trace_prefix`` so every policy's decision ledger exists.
    divergence: Optional[Dict[str, Dict]] = None

    def score(self, policy: str) -> PolicyScore:
        for entry in self.scores:
            if entry.policy == policy:
                return entry
        raise SimulationError(
            f"no arena score for {policy!r}; ran: "
            f"{', '.join(s.policy for s in self.scores)}"
        )

    def relative(self, policy: str) -> Dict[str, float]:
        """JCT / makespan of *policy* normalised to the baseline policy.

        Ratios fall back to 1.0 when the baseline metric is zero (nothing
        finished), keeping the report strict-JSON and the gate well-defined.
        """
        base = self.score(self.baseline)
        entry = self.score(policy)

        def ratio(value: float, reference: float) -> float:
            if reference <= 0.0:
                return 1.0
            return value / reference

        return {
            "jct_ratio": ratio(entry.average_jct, base.average_jct),
            "makespan_ratio": ratio(
                entry.effective_makespan, base.effective_makespan
            ),
        }

    def to_dict(self) -> Dict:
        """The full report as a strict-JSON-serialisable dictionary."""
        payload = {
            "baseline": self.baseline,
            "seed": self.seed,
            "engine": self.engine,
            "servers": self.servers,
            "jobs": self.jobs,
            "policies": [
                {**entry.as_dict(), **self.relative(entry.policy)}
                for entry in self.scores
            ],
        }
        if self.divergence is not None:
            payload["divergence"] = self.divergence
        return payload

    def gate_dict(self) -> Dict[str, float]:
        """Flat numeric metrics for ``benchmarks/check_regression.py``.

        Key suffixes follow the gate's conventions: un-suffixed keys and
        ``*_s`` durations are lower-is-better, ``*_fairness`` /
        ``*_utilization`` / ``*_finished`` invert.
        """
        gate: Dict[str, float] = {}
        for entry in self.scores:
            rel = self.relative(entry.policy)
            name = entry.policy.replace("+", "_")
            gate[f"{name}_avg_jct_s"] = entry.average_jct
            gate[f"{name}_jct_ratio"] = rel["jct_ratio"]
            gate[f"{name}_makespan_ratio"] = rel["makespan_ratio"]
            gate[f"{name}_jain_fairness"] = entry.jain_fairness
            gate[f"{name}_worker_utilization"] = entry.worker_utilization
            gate[f"{name}_jobs_finished"] = float(entry.finished)
        return gate


def _trace_path(prefix: str, policy: str) -> str:
    """Where one policy's arena trace lands (hybrid '+' sanitised)."""
    return f"{prefix}.{policy.replace('+', '_')}.jsonl"


def run_arena(
    policies: Sequence[str],
    cluster_factory: Callable[[], Cluster],
    jobs: Sequence[JobSpec],
    config: Optional[SimConfig] = None,
    engine: Optional[str] = None,
    baseline: Optional[str] = None,
    scheduler_kwargs: Optional[Dict[str, dict]] = None,
    trace_prefix: Optional[str] = None,
) -> ArenaReport:
    """Race the named policies head-to-head on one seeded trace.

    Every policy gets a fresh cluster from *cluster_factory* and the same
    job specs under the same :class:`SimConfig` seed, so metric differences
    are attributable to the policy alone. Policy names are resolved through
    the scheduler registry (including ``"alloc+place"`` hybrids); unknown
    names raise :class:`~repro.common.errors.SchedulingError` before any
    simulation runs.

    ``trace_prefix`` turns on divergence attribution: each policy's run is
    traced (decision ledger included) to ``<prefix>.<policy>.jsonl`` with a
    manifest next to it, and the report's ``divergence`` maps every
    non-baseline policy to its :func:`repro.obs.explain.trace_diff` against
    the baseline -- the first decision where each job's fate forked, tied
    to its JCT delta.
    """
    if not policies:
        raise SimulationError("need at least one policy to race")
    if len(set(policies)) != len(policies):
        raise SimulationError("duplicate policy names in arena")
    from repro.schedulers import make_scheduler

    config = config or SimConfig()
    engine = engine if engine is not None else default_engine()
    baseline = baseline if baseline is not None else policies[0]
    if baseline not in policies:
        raise SimulationError(
            f"baseline {baseline!r} is not among the raced policies"
        )
    # Resolve every name up front: a typo in policy 4 should not cost the
    # wall-clock of policies 1-3.
    schedulers = {
        name: make_scheduler(name, **(scheduler_kwargs or {}).get(name, {}))
        for name in policies
    }
    traces: Dict[str, List[Dict]] = {}
    scores: List[PolicyScore] = []
    for name in policies:
        tracer = None
        if trace_prefix is not None:
            from repro.obs.tracer import RecordingTracer

            tracer = RecordingTracer()
        sim = simulation_for(
            engine,
            cluster_factory(),
            schedulers[name],
            list(jobs),
            config,
            tracer=tracer,
        )
        scores.append(score_result(name, sim.run()))
        if tracer is not None:
            traces[name] = tracer.events
            from repro.sim.manifest import (
                manifest_path_for,
                run_manifest,
                write_manifest,
            )

            path = _trace_path(trace_prefix, name)
            with open(path, "w", encoding="utf8") as handle:
                for event in tracer.events:
                    handle.write(
                        json.dumps(event, separators=(",", ":")) + "\n"
                    )
            write_manifest(
                manifest_path_for(path),
                run_manifest(
                    config=config,
                    engine=engine,
                    policy=name,
                    jobs=jobs,
                    extra={"arena_baseline": baseline},
                ),
            )
    divergence: Optional[Dict[str, Dict]] = None
    if traces and baseline in traces and len(traces) > 1:
        from repro.obs.explain import trace_diff

        divergence = {
            name: trace_diff(
                traces[baseline], traces[name], label_a=baseline, label_b=name
            )
            for name in policies
            if name != baseline and name in traces
        }
    return ArenaReport(
        scores=tuple(scores),
        baseline=baseline,
        seed=config.seed,
        engine=engine,
        servers=len(list(cluster_factory().server_names)),
        jobs=len(jobs),
        divergence=divergence,
    )


def format_arena(report: ArenaReport) -> str:
    """A printable head-to-head table (JCTs in hours, ratios vs baseline)."""
    lines = [
        f"arena: seed={report.seed} engine={report.engine} "
        f"servers={report.servers} jobs={report.jobs} "
        f"baseline={report.baseline}",
        f"{'policy':14s} {'done':>5s} {'JCT (h)':>9s} {'p95 (h)':>9s} "
        f"{'mkspan (h)':>11s} {'jct x':>7s} {'mk x':>6s} "
        f"{'fair':>6s} {'util':>6s}",
    ]
    for entry in report.scores:
        rel = report.relative(entry.policy)
        lines.append(
            f"{entry.policy:14s} {entry.finished:3d}/{entry.jobs:<2d}"
            f"{entry.average_jct / 3600:9.2f} {entry.jct_p95 / 3600:9.2f} "
            f"{entry.effective_makespan / 3600:11.2f} "
            f"{rel['jct_ratio']:7.2f} {rel['makespan_ratio']:6.2f} "
            f"{entry.jain_fairness:6.3f} {entry.worker_utilization:6.3f}"
        )
    if report.divergence:
        lines.append("")
        lines.append(
            f"divergence vs {report.baseline} (first forked decision per job):"
        )
        for policy, diff in report.divergence.items():
            lines.append(
                f"  {policy}: {diff.get('divergent_jobs', 0)}"
                f"/{diff.get('compared_jobs', 0)} job(s) diverged, "
                f"total JCT delta {diff.get('total_jct_delta', 0.0):+.0f} s"
            )
            # The single most damaged job, with both sides of its fork.
            jobs = diff.get("jobs", {})
            worst = max(
                (
                    (job_id, info)
                    for job_id, info in jobs.items()
                    if info.get("jct_delta") and info.get("divergence")
                ),
                key=lambda kv: abs(kv[1]["jct_delta"]),
                default=None,
            )
            if worst is not None:
                job_id, info = worst
                div = info["divergence"]
                lines.append(
                    f"    worst hit {job_id} ({info['jct_delta']:+.0f} s) "
                    f"forked at decision #{div['index']}:"
                )
                lines.append(f"      {report.baseline}: {div.get('a') or '-'}")
                lines.append(f"      {policy}: {div.get('b') or '-'}")
    return "\n".join(lines)
