"""Per-job runtime state inside the simulator.

A :class:`RuntimeJob` owns everything one training job accumulates while it
lives in the cluster: ground-truth dynamics (step-time model, loss curve),
the online estimators Optimus maintains for it (§3), its progress counter,
its HDFS chunk assignment (§5.1) and its scaling history (§5.4).

The estimators only ever see *observations* (noisy losses, noisy measured
speeds); the ground truth stays on the simulator's side of the fence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.rand import RandomSource
from repro.core.allocation import TaskAllocation
from repro.core.convergence import ConvergenceEstimator
from repro.core.speed import SpeedEstimator
from repro.datastore.hdfs import ChunkAssignment, ChunkStore
from repro.ps.blocks import blocks_from_sizes
from repro.ps.partition import mxnet_partition, paa_partition
from repro.schedulers.base import JobView
from repro.workloads.job import JobSpec
from repro.workloads.loss import LossEmitter
from repro.workloads.speed import MODE_SYNC, StepTimeModel

#: Fallback prior for jobs too young to fit a convergence curve: assume this
#: many epochs remain (the §4.1 priority factor compensates for its bias).
PRIOR_EPOCHS = 30.0

ESTIMATOR_MODES = ("online", "oracle", "noisy")


@dataclass
class ScalingCosts:
    """Checkpoint-based elastic-scaling cost model (§5.4)."""

    checkpoint_bandwidth: float = 100e6  # HDFS write/read over 1 GbE
    restart_time: float = 10.0  # pod teardown + relaunch + framework boot

    def start_cost(self) -> float:
        """Cost of (re)starting a job that was not running."""
        return self.restart_time

    def scale_cost(self, model_size_bytes: float) -> float:
        """Cost of changing (p, w): checkpoint save + restart + restore."""
        transfer = 2.0 * model_size_bytes / self.checkpoint_bandwidth
        return transfer + self.restart_time


class RuntimeJob:
    """Mutable state of one job inside a running simulation."""

    def __init__(
        self,
        spec: JobSpec,
        seed: RandomSource,
        bandwidth: float = 125e6,
        partition_algorithm: str = "paa",
        estimator_mode: str = "online",
        convergence_error: float = 0.0,
        speed_error: float = 0.0,
        loss_noise_std: float = 0.015,
        outlier_rate: float = 0.01,
        scaling_costs: Optional[ScalingCosts] = None,
    ):
        if estimator_mode not in ESTIMATOR_MODES:
            raise SimulationError(
                f"estimator_mode must be one of {ESTIMATOR_MODES}"
            )
        self.spec = spec
        self.estimator_mode = estimator_mode
        self.partition_algorithm = partition_algorithm
        self.scaling_costs = scaling_costs or ScalingCosts()
        self._seed = seed.child(f"job-{spec.job_id}")

        # Ground truth.
        self.truth = StepTimeModel(spec.profile, spec.mode, bandwidth=bandwidth)
        self.steps_per_epoch = spec.steps_per_epoch()
        self.true_total_steps = spec.total_steps_to_converge()
        self.emitter = LossEmitter(
            spec.profile.loss,
            self.steps_per_epoch,
            noise_std=loss_noise_std,
            outlier_rate=outlier_rate,
            seed=self._seed.child("loss"),
        )

        # Online estimators (§3).
        self.convergence = ConvergenceEstimator(
            threshold=spec.threshold,
            steps_per_epoch=self.steps_per_epoch,
            patience=spec.patience,
        )
        self.speed_estimator = SpeedEstimator(
            mode=spec.mode,
            global_batch=spec.profile.global_batch,
        )

        # Synthetic-error mode (Fig. 15): fixed sign per job, magnitude
        # decaying with progress.
        rng = self._seed.child("errors").rng
        self._conv_error = convergence_error * (1 if rng.random() < 0.5 else -1)
        self._speed_error = speed_error * (1 if rng.random() < 0.5 else -1)

        # Progress / lifecycle. ``steps_done`` counts raw training steps
        # (what the speed function predicts); ``effective_steps`` counts
        # convergence-equivalent steps -- asynchronous training with many
        # workers suffers parameter staleness and needs extra raw steps for
        # the same loss progress (§5.2).
        self.steps_done = 0.0
        self.effective_steps = 0.0
        self._last_mapping = (0.0, 0.0, 1.0)  # (raw_start, eff_start, penalty)
        self.completed = False
        self.completion_time: Optional[float] = None
        self.started = False
        self.last_allocation = TaskAllocation(0, 0)
        self.was_running = False
        self.scaling_time_total = 0.0
        self.num_scalings = 0

        # Fault recovery (checkpoint-bounded restart). The "checkpoint" is
        # the progress snapshot a crash rolls back to; refreshed by the
        # engine every ``checkpoint_interval`` seconds of sim time.
        self.checkpoint_steps = 0.0
        self.checkpoint_effective = 0.0
        self.last_checkpoint_time = float(spec.arrival_time)
        self._prev_checkpoint = (0.0, 0.0, float(spec.arrival_time))
        self.num_restarts = 0
        self.steps_lost_total = 0.0

        # Observed-convergence state (§2.1): the running system stops the
        # job when the *observed* per-epoch training-loss decrease stays
        # below the owner threshold for `patience` epochs. Epoch losses are
        # epoch averages, so their noise is much smaller than single
        # observations'.
        self._epoch_losses: List[float] = []
        self._epoch_loss_max = 0.0
        self._below_threshold_streak = 0
        self._epoch_rng = self._seed.child("epoch-loss").rng
        self._epoch_noise_std = loss_noise_std / math.sqrt(25.0)
        #: Safety valve: force-stop far beyond the profile's target.
        self.max_steps = (
            max(3.0 * spec.profile.target_epochs, spec.profile.target_epochs + 50)
            * self.steps_per_epoch
        )

        # Data serving (§5.1).
        self.chunk_assignment: Optional[ChunkAssignment] = None
        self.chunks_moved = 0

        self._imbalance_cache: Dict[int, float] = {}
        self._speed_rng = self._seed.child("speed-measure").rng

    # -- data serving --------------------------------------------------------
    def attach_data(self, store: ChunkStore, example_bytes: int = 3072) -> None:
        """Register the job's training data in the chunk store."""
        size = max(
            int(self.spec.profile.dataset_examples * self.spec.dataset_scale)
            * example_bytes,
            1,
        )
        name = f"data/{self.spec.job_id}"
        if name not in store:
            store.add_file(name, size)
        self.chunk_assignment = ChunkAssignment(store.file(name), 1)

    def rebalance_data(self, num_workers: int) -> int:
        if self.chunk_assignment is None:
            return 0
        moved = self.chunk_assignment.rebalance(num_workers)
        self.chunks_moved += moved
        return moved

    # -- PS load balance (§5.3) -------------------------------------------------
    def imbalance_factor(self, num_ps: int) -> float:
        """``rho_max * p`` of the job's parameter partition over *num_ps*."""
        if num_ps < 1:
            raise SimulationError("num_ps must be >= 1")
        if num_ps not in self._imbalance_cache:
            blocks = blocks_from_sizes(self.spec.profile.parameter_blocks())
            if self.partition_algorithm == "paa":
                assignment = paa_partition(blocks, num_ps)
            else:
                assignment = mxnet_partition(
                    blocks, num_ps, seed=self._seed.child(f"mxnet-{num_ps}")
                )
            self._imbalance_cache[num_ps] = assignment.imbalance_factor
        return self._imbalance_cache[num_ps]

    # -- profiling / observation feeds -------------------------------------------
    def bootstrap_speed(self, num_samples: int = 5, max_grid: int = 16) -> None:
        """The §3.2 pre-run: profile a few (p, w) configurations."""
        self.speed_estimator.bootstrap(
            measure=lambda p, w: self.truth.measured_speed(
                p, w, seed=self._speed_rng
            ),
            max_ps=max_grid,
            max_workers=max_grid,
            num_samples=num_samples,
            seed=self._seed.child("bootstrap"),
        )

    def record_losses(self, start_step: float, end_step: float, max_points: int) -> None:
        """Feed the convergence estimator losses from the progressed range.

        Losses are *observed* at the job's convergence-equivalent position
        (stale asynchronous steps make less progress, §5.2) but stamped with
        raw step numbers -- which is exactly what a real worker reports.
        """
        start, end = int(start_step), int(end_step)
        if end <= start or max_points < 1:
            return
        raw_start, eff_start, penalty = self._last_mapping
        stride = max(1, (end - start) // max_points)
        for step in range(start, end, stride):
            eff = eff_start + max(step - raw_start, 0) / penalty
            obs = self.emitter.observe(int(eff))
            self.convergence.add_observation(step, obs.loss)

    def record_speed(self, p: int, w: int, observed_speed: float) -> None:
        if observed_speed > 0:
            self.speed_estimator.add_sample(p, w, observed_speed)

    # -- progress and observed convergence (§2.1) -------------------------------
    def staleness_penalty(self, workers: int) -> float:
        """Raw steps needed per unit of convergence progress (>= 1).

        Asynchronous training with many workers updates against stale
        parameters, so it needs extra steps to converge (§5.2); synchronous
        training is unaffected.
        """
        if self.spec.mode == MODE_SYNC or workers <= 1:
            return 1.0
        return 1.0 + self.spec.profile.staleness_factor * (workers - 1)

    def advance(
        self, run_time: float, speed: float, workers: int = 1
    ) -> Optional[float]:
        """Advance training by ``speed * run_time`` raw steps.

        The job stops when the *observed* per-epoch loss decrease has stayed
        below the owner threshold for ``patience`` consecutive epochs --
        evaluated epoch by epoch as boundaries are crossed, exactly like the
        running system would. Returns the number of seconds into the window
        at which the job converged, or ``None`` if it is still running.
        """
        if self.completed:
            return 0.0
        if run_time <= 0 or speed <= 0:
            return None
        penalty = self.staleness_penalty(workers)
        eff_speed = speed / penalty
        raw_start = self.steps_done
        eff_start = self.effective_steps
        self._last_mapping = (raw_start, eff_start, penalty)
        eff_target = eff_start + eff_speed * run_time
        epoch = int(eff_start // self.steps_per_epoch) + 1
        while epoch * self.steps_per_epoch <= eff_target:
            boundary = epoch * self.steps_per_epoch
            if self._epoch_converged(epoch) or boundary >= self.max_steps:
                self.effective_steps = boundary
                self.steps_done = raw_start + (boundary - eff_start) * penalty
                self.completed = True
                return (boundary - eff_start) / eff_speed
            epoch += 1
        self.effective_steps = eff_target
        self.steps_done = raw_start + speed * run_time
        return None

    def _epoch_converged(self, epoch: int) -> bool:
        """Record epoch *epoch*'s observed loss; True when the rule fires."""
        while len(self._epoch_losses) < epoch:
            e = len(self._epoch_losses) + 1
            value = self.emitter.true_loss(e * self.steps_per_epoch)
            if self._epoch_noise_std > 0:
                value *= max(
                    1e-3, 1.0 + self._epoch_rng.normal(0.0, self._epoch_noise_std)
                )
            self._epoch_losses.append(float(value))
            self._epoch_loss_max = max(self._epoch_loss_max, value)
            if len(self._epoch_losses) >= 2 and self._epoch_loss_max > 0:
                decrease = (
                    self._epoch_losses[-2] - self._epoch_losses[-1]
                ) / self._epoch_loss_max
                if decrease < self.spec.threshold:
                    self._below_threshold_streak += 1
                else:
                    self._below_threshold_streak = 0
        return self._below_threshold_streak >= self.spec.patience

    # -- estimates served to the scheduler -------------------------------------
    def _online_remaining(self) -> float:
        # A still-running job needs at least `patience` more epochs before
        # the §2.1 stopping rule can possibly fire, no matter what the fit
        # says -- without this floor a fit that (wrongly) predicts "already
        # converged" would zero the job's marginal gain and starve it.
        floor = self.spec.patience * self.steps_per_epoch
        if self.convergence.can_fit:
            try:
                return max(
                    self.convergence.remaining_steps(self.steps_done), floor
                )
            except Exception:
                pass
        prior_total = PRIOR_EPOCHS * self.steps_per_epoch
        return max(prior_total - self.steps_done, floor)

    def _progress_fraction(self) -> float:
        if self.true_total_steps <= 0:
            return 1.0
        return min(self.effective_steps / self.true_total_steps, 1.0)

    def estimated_remaining_steps(self) -> float:
        floor = 0.0 if self.completed else self.spec.patience * self.steps_per_epoch
        if self.estimator_mode == "oracle":
            return max(self.true_total_steps - self.effective_steps, floor)
        if self.estimator_mode == "noisy":
            decay = 1.0 - self._progress_fraction()
            error = self._conv_error * decay
            true_remaining = max(self.true_total_steps - self.effective_steps, 0.0)
            return max(true_remaining * (1.0 + error), floor)
        return self._online_remaining()

    def speed_function(self) -> Callable[[int, int], float]:
        if self.estimator_mode == "online":
            if self.speed_estimator.can_fit:
                try:
                    return self.speed_estimator.speed_function()
                except Exception:
                    pass
            return lambda p, w: self.truth.speed(p, w)  # pre-bootstrap corner
        if self.estimator_mode == "noisy":
            # A speed-estimation error of magnitude e perturbs every
            # configuration's predicted speed independently (a mis-fitted
            # surface), not by one global factor -- a global factor would
            # preserve the marginal-gain ordering and be invisible to the
            # allocator. The perturbation decays with progress (§6.3).
            decay = 1.0 - self._progress_fraction()
            magnitude = abs(self._speed_error) * decay
            job_key = self.spec.job_id

            def noisy_speed(p: int, w: int) -> float:
                import zlib

                digest = zlib.crc32(f"{job_key}:{p}:{w}".encode("utf8"))
                direction = (digest % 20001) / 10000.0 - 1.0  # in [-1, 1]
                return self.truth.speed(p, w) * max(
                    1.0 + magnitude * direction, 0.05
                )

            return noisy_speed
        return lambda p, w: self.truth.speed(p, w)

    def loss_efficiency(self) -> float:
        """The loss-curve statistical-efficiency term (goodput policies).

        Online mode asks the fitted convergence curve how much the next
        step is worth relative to the phase start; the oracle/noisy modes
        model convergence-*time* errors only, so they report neutral 1.0.
        """
        if self.estimator_mode != "online":
            return 1.0
        return self.convergence.marginal_efficiency(self.steps_done)

    def view(self) -> JobView:
        """The scheduler-facing snapshot for this interval."""
        return JobView(
            spec=self.spec,
            remaining_steps=self.estimated_remaining_steps(),
            speed=self.speed_function(),
            observation_count=self.convergence.observation_count,
            progress=self._progress_fraction(),
            current_allocation=self.last_allocation if self.was_running
            else TaskAllocation(0, 0),
            rescale_cost=self.scaling_costs.scale_cost(
                self.spec.profile.model_size_bytes
            ),
            loss_efficiency=self.loss_efficiency(),
        )

    # -- fault recovery (checkpoint-bounded restart) -------------------------
    def checkpoint_due(self, now: float, interval: Optional[float]) -> bool:
        """Should the engine snapshot this job's progress at time *now*?

        ``interval=None`` (or ``<= 0``) means "checkpoint at every interval
        boundary" -- the tightest bound on progress lost.
        """
        if interval is None or interval <= 0:
            return True
        return now - self.last_checkpoint_time >= interval

    def record_checkpoint(self, now: float) -> None:
        """Snapshot current progress as the crash-recovery point."""
        self._prev_checkpoint = (
            self.checkpoint_steps,
            self.checkpoint_effective,
            self.last_checkpoint_time,
        )
        self.checkpoint_steps = self.steps_done
        self.checkpoint_effective = self.effective_steps
        self.last_checkpoint_time = float(now)

    def rollback_to_checkpoint(self, now: float, lost: bool = False):
        """Crash recovery: drop progress back to the last checkpoint.

        With ``lost=True`` the latest checkpoint is corrupted and the job
        falls back to the previous one (possibly zero progress). The job
        keeps its estimator state -- the owner's training framework lost
        steps, not the scheduler's telemetry. Returns ``(steps_lost,
        seconds_since_checkpoint)``.
        """
        if lost:
            (
                self.checkpoint_steps,
                self.checkpoint_effective,
                self.last_checkpoint_time,
            ) = self._prev_checkpoint
        steps_lost = max(self.steps_done - self.checkpoint_steps, 0.0)
        since = max(float(now) - self.last_checkpoint_time, 0.0)
        self.steps_done = self.checkpoint_steps
        self.effective_steps = self.checkpoint_effective
        # Not running any more: the next allocation pays the §5.4 restore
        # cost through :meth:`scaling_overhead`.
        self.was_running = False
        self.num_restarts += 1
        self.steps_lost_total += steps_lost
        return steps_lost, since

    # -- scaling cost --------------------------------------------------------
    def scaling_overhead(self, new_allocation: TaskAllocation) -> float:
        """Seconds lost at the interval start for this (re)configuration."""
        if not self.started:
            return self.scaling_costs.start_cost()
        if not self.was_running:
            # Resuming from a pause restores the checkpoint.
            return self.scaling_costs.scale_cost(self.spec.profile.model_size_bytes)
        if new_allocation != self.last_allocation:
            return self.scaling_costs.scale_cost(self.spec.profile.model_size_bytes)
        return 0.0

    def note_interval(
        self, allocation: Optional[TaskAllocation], overhead: float
    ) -> None:
        """Update lifecycle bookkeeping after an interval's decision."""
        if allocation is None:
            self.was_running = False
            return
        if overhead > 0:
            if self.started:
                self.num_scalings += 1
            self.scaling_time_total += overhead
        self.started = True
        self.was_running = True
        if allocation != self.last_allocation:
            self.rebalance_data(allocation.workers)
        self.last_allocation = allocation
