"""Background (non-DL) cluster load profiles (§7 "Various workloads").

Production clusters are shared: the paper's introduction motivates dynamic
scaling with resources that free up "e.g. during night time when there are
lower workloads", and §7 sketches Optimus scheduling DL jobs "on a varying
portion of cluster resources" handed over by a central resource manager.

A *load profile* is a callable ``t -> fraction``: the fraction of every
server's capacity reserved by other workloads at time ``t`` (seconds from
experiment start). The simulator reserves that fraction on each server
before the DL scheduler sees the cluster, so Optimus automatically grows
jobs when the background recedes and shrinks them when it returns.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.common.errors import ConfigurationError

#: t (seconds) -> fraction of each server's capacity that is unavailable.
LoadProfile = Callable[[float], float]

#: Reservations never exceed this, so DL jobs always have some room.
MAX_BACKGROUND_FRACTION = 0.95


def clamp_fraction(value: float) -> float:
    """Clamp a profile's output into the representable range."""
    return min(max(float(value), 0.0), MAX_BACKGROUND_FRACTION)


def constant_load(fraction: float) -> LoadProfile:
    """A fixed background reservation."""
    if not 0.0 <= fraction <= MAX_BACKGROUND_FRACTION:
        raise ConfigurationError(
            f"fraction must be in [0, {MAX_BACKGROUND_FRACTION}]"
        )

    def profile(t: float) -> float:
        return fraction

    return profile


def diurnal_load(
    trough: float = 0.1,
    peak: float = 0.6,
    period: float = 86_400.0,
    phase: float = 0.0,
) -> LoadProfile:
    """A day/night cycle: minimal load at ``t = phase``, maximal half a
    period later (cosine-shaped, as datacenter diurnal patterns roughly are).

    Parameters
    ----------
    trough / peak:
        Background fractions at night / mid-day.
    period:
        Cycle length in seconds (a day by default).
    phase:
        Time of the load minimum, seconds from experiment start.
    """
    if not 0.0 <= trough <= peak <= MAX_BACKGROUND_FRACTION:
        raise ConfigurationError(
            "need 0 <= trough <= peak <= "
            f"{MAX_BACKGROUND_FRACTION}"
        )
    if period <= 0:
        raise ConfigurationError("period must be positive")

    def profile(t: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t - phase) / period))
        return trough + (peak - trough) * swing

    return profile


def step_load(schedule) -> LoadProfile:
    """A piecewise-constant profile from ``[(start_time, fraction), ...]``.

    Times must be ascending; the fraction before the first start is 0.
    """
    points = [(float(t), float(f)) for t, f in schedule]
    if any(b[0] <= a[0] for a, b in zip(points, points[1:])):
        raise ConfigurationError("schedule times must be strictly ascending")
    for _, fraction in points:
        if not 0.0 <= fraction <= MAX_BACKGROUND_FRACTION:
            raise ConfigurationError("fractions must be in range")

    def profile(t: float) -> float:
        current = 0.0
        for start, fraction in points:
            if t >= start:
                current = fraction
            else:
                break
        return current

    return profile
