"""Straggler detection rules (§5.2).

The paper monitors workers and flags stragglers two ways:

* **Asynchronous jobs** — compare each worker's training speed against the
  median: a worker below half the median speed is a straggler.
* **Synchronous jobs** — all workers report the same *speed* (they are
  synchronized), so instead the parameter servers watch the arrival time of
  each worker's gradients and compute a per-worker speed as the gap between
  consecutive arrivals; the same half-median rule then applies to those
  gap-derived speeds.

:class:`SpeedMonitor` implements both: feed it per-worker speed samples
(async) or per-worker gradient-arrival timestamps (sync) and it returns the
workers to replace. The simulation engine models the *effect* of detection
with a latency (:mod:`repro.sim.stragglers`); this module is the decision
logic a deployment would run, exercised directly by the test suite and the
monitoring example.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: §5.2: "if a worker is too slow (e.g., half speed from the median), we
#: consider it as a straggler".
DEFAULT_SPEED_FRACTION = 0.5


@dataclass(frozen=True)
class StragglerVerdict:
    """The monitor's output for one evaluation."""

    stragglers: Tuple[int, ...]
    median_speed: float
    speeds: Dict[int, float]


class SpeedMonitor:
    """Per-worker speed tracking with the §5.2 half-median rule.

    Parameters
    ----------
    speed_fraction:
        Flag workers below this fraction of the median speed.
    min_workers:
        Below this many reporting workers a median is meaningless and
        nothing is flagged.
    confirmation:
        Number of consecutive evaluations a worker must be flagged before
        it is reported (debouncing transient dips).
    """

    def __init__(
        self,
        speed_fraction: float = DEFAULT_SPEED_FRACTION,
        min_workers: int = 3,
        confirmation: int = 1,
    ):
        if not 0 < speed_fraction < 1:
            raise ConfigurationError("speed_fraction must be in (0, 1)")
        if min_workers < 2:
            raise ConfigurationError("min_workers must be >= 2")
        if confirmation < 1:
            raise ConfigurationError("confirmation must be >= 1")
        self.speed_fraction = float(speed_fraction)
        self.min_workers = int(min_workers)
        self.confirmation = int(confirmation)
        self._flag_streaks: Dict[int, int] = {}
        #: Workers already reported (until cleared by :meth:`replaced`).
        self._reported: set = set()

    # -- async path: direct speed samples ----------------------------------------
    def evaluate_speeds(self, speeds: Dict[int, float]) -> StragglerVerdict:
        """Apply the half-median rule to per-worker speeds (async, §5.2)."""
        cleaned = {int(w): float(s) for w, s in speeds.items()}
        if any(s < 0 for s in cleaned.values()):
            raise ConfigurationError("speeds must be non-negative")
        if len(cleaned) < self.min_workers:
            return StragglerVerdict((), 0.0, cleaned)
        median = statistics.median(cleaned.values())
        flagged = []
        for worker, speed in cleaned.items():
            if speed < self.speed_fraction * median:
                streak = self._flag_streaks.get(worker, 0) + 1
                self._flag_streaks[worker] = streak
                if streak >= self.confirmation and worker not in self._reported:
                    flagged.append(worker)
            else:
                self._flag_streaks[worker] = 0
        for worker in flagged:
            self._reported.add(worker)
        return StragglerVerdict(tuple(sorted(flagged)), median, cleaned)

    # -- sync path: gradient arrival timestamps -----------------------------------
    @staticmethod
    def speeds_from_arrivals(
        arrivals: Dict[int, Sequence[float]]
    ) -> Dict[int, float]:
        """Per-worker speed from gradient arrival times on the PS (sync).

        §5.2: "we monitor the arrival time of each worker's gradients on
        parameter servers and calculate the training speed of each worker
        as the gap between the arrival time of two steps". Speed is the
        reciprocal of the mean positive inter-arrival gap.

        Workers with fewer than two samples, or whose timestamps all
        coincide (zero gaps -- duplicate reports, clock granularity),
        simply produce no speed this round instead of a divide-by-zero:
        a monitor must tolerate whatever the metrics stream delivers.
        """
        speeds: Dict[int, float] = {}
        for worker, times in arrivals.items():
            ordered = sorted(float(t) for t in times)
            if len(ordered) < 2:
                continue
            gaps = [b - a for a, b in zip(ordered, ordered[1:]) if b - a > 0]
            if not gaps:
                continue
            mean_gap = sum(gaps) / len(gaps)
            speeds[int(worker)] = 1.0 / mean_gap
        return speeds

    def evaluate_arrivals(
        self, arrivals: Dict[int, Sequence[float]]
    ) -> StragglerVerdict:
        """Apply the rule to gradient-arrival histories (sync, §5.2)."""
        return self.evaluate_speeds(self.speeds_from_arrivals(arrivals))

    # -- lifecycle ---------------------------------------------------------------
    def replaced(self, worker: int) -> None:
        """Tell the monitor a flagged worker was replaced (§5.2: "we
        replace a straggler by launching a new worker")."""
        self._reported.discard(worker)
        self._flag_streaks.pop(worker, None)

    @property
    def reported(self) -> Tuple[int, ...]:
        return tuple(sorted(self._reported))
