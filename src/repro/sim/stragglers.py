"""Straggler injection and handling (§5.2).

Stragglers -- workers running far slower than their peers because of
resource contention or unbalanced load -- hurt synchronous jobs directly
(every step waits for the slowest worker) and asynchronous jobs indirectly
(stale parameters). Optimus monitors per-worker speed, flags workers below
half the median speed and replaces them with fresh ones.

The simulator injects straggler *episodes*: in each scheduling interval each
running worker independently becomes a straggler with a configurable
probability and a random slowdown factor. With handling enabled the episode
lasts only the detection + replacement latency; with handling disabled it
lasts the entire interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rand import RandomSource
from repro.workloads.speed import MODE_SYNC, StepTimeModel, straggler_step_time

#: A worker is flagged when its speed drops below this fraction of the
#: median worker speed (§5.2: "half speed from the median").
DETECTION_SPEED_FRACTION = 0.5


@dataclass(frozen=True)
class StragglerConfig:
    """Straggler behaviour knobs.

    ``rate`` is the per-worker, per-interval episode probability;
    ``slowdown_range`` bounds the uniform slowdown factor; ``detection_time``
    + ``replacement_time`` is how long an episode persists when handling is
    on (monitoring notices the slow worker, then a new one is launched).
    """

    rate: float = 0.0
    slowdown_range: Tuple[float, float] = (2.0, 4.0)
    detection_time: float = 60.0
    replacement_time: float = 30.0
    handling_enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("rate must be in [0, 1]")
        lo, hi = self.slowdown_range
        if lo < 1.0 or hi < lo:
            raise ConfigurationError("slowdown_range must satisfy 1 <= lo <= hi")
        if self.detection_time < 0 or self.replacement_time < 0:
            raise ConfigurationError("latencies must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    @property
    def episode_duration(self) -> float:
        return self.detection_time + self.replacement_time


@dataclass(frozen=True)
class StragglerEpisode:
    """One injected straggler: which worker, how slow, for how long."""

    worker_index: int
    slowdown: float
    duration: float


class StragglerInjector:
    """Seeded episode sampler used by the simulation engine."""

    def __init__(self, config: StragglerConfig, seed: RandomSource):
        self.config = config
        self._rng = seed.child("stragglers").rng

    def sample(self, num_workers: int, interval: float) -> List[StragglerEpisode]:
        """Sample this interval's episodes for a job with *num_workers*."""
        if not self.config.enabled or num_workers < 1:
            return []
        episodes = []
        lo, hi = self.config.slowdown_range
        for worker in range(num_workers):
            if self._rng.random() < self.config.rate:
                duration = (
                    min(self.config.episode_duration, interval)
                    if self.config.handling_enabled
                    else interval
                )
                episodes.append(
                    StragglerEpisode(
                        worker_index=worker,
                        slowdown=float(self._rng.uniform(lo, hi)),
                        duration=float(duration),
                    )
                )
        return episodes


def degraded_speed(
    model: StepTimeModel,
    p: int,
    w: int,
    episodes: List[StragglerEpisode],
    imbalance: float = 1.0,
) -> float:
    """Training speed while the given episodes are active.

    Synchronous jobs pay the slowest straggler's extra compute time on every
    step; asynchronous jobs lose the stragglers' own throughput only.
    """
    if not episodes:
        return model.speed(p, w, imbalance=imbalance)
    if model.mode == MODE_SYNC:
        worst = max(e.slowdown for e in episodes)
        return 1.0 / straggler_step_time(model, p, w, worst, imbalance=imbalance)
    base_step = model.step_time(p, w, imbalance=imbalance)
    healthy = w - len(episodes)
    slow_throughput = sum(1.0 / e.slowdown for e in episodes)
    return max(healthy + slow_throughput, 0.0) / base_step


def effective_interval_speed(
    model: StepTimeModel,
    p: int,
    w: int,
    episodes: List[StragglerEpisode],
    run_time: float,
    imbalance: float = 1.0,
) -> float:
    """Time-weighted average speed over an interval of *run_time* seconds.

    Episodes degrade the job for their duration (clamped to the interval);
    the remainder of the interval runs at full speed. Episodes are treated
    as concurrent -- a pessimistic but simple composition.
    """
    if run_time <= 0:
        return 0.0
    full = model.speed(p, w, imbalance=imbalance)
    if not episodes:
        return full
    degraded_for = min(max(e.duration for e in episodes), run_time)
    slow = degraded_speed(model, p, w, episodes, imbalance=imbalance)
    return (slow * degraded_for + full * (run_time - degraded_for)) / run_time
