"""Controller failover drills: kill the leader, measure the takeover.

The HA counterpart of the crash drill: run a small job fleet through a
*leader* :class:`~repro.deploy.loop.ControlLoop` while a hot standby
ticks :meth:`~repro.deploy.loop.ControlLoop.standby_tick`, kill the
leader in one of several ways, and verify the standby takes over --
deposing the stale reign, replaying intents, and driving the jobs --
without dual leadership, leaked state, or unfenced stale writes.

Kill modes (``FailoverConfig.crash_point``):

* ``None`` -- silent death: the leader simply stops running; the standby
  notices once the election lease lapses.
* ``mid_step_deposed`` -- the GC-pause story: the lease is severed after
  the scheduling decision, so the reconcile writes bounce off the fence
  (``write_fenced`` events, :class:`StaleLeaderError`).
* ``before_campaign`` / ``after_elected`` -- the *successor* dies at the
  named election point and a replacement finishes the takeover.
* any reconcile crash point (``after_teardown``, ...) -- the leader dies
  mid-write with a torn intent the successor must replay.

The drill measures **takeover latency**: from the moment the dead
reign's lease expired (the earliest instant any successor could win) to
the first post-recovery schedule the successor completes. Everything is
in step units -- the deploy stack's clock is the step index.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import cpu_mem
from repro.common.errors import (
    ControllerCrashed,
    SimulationError,
    StaleLeaderError,
)
from repro.deploy.loop import ControlLoop
from repro.faults.crashpoints import (
    CRASH_MID_STEP_DEPOSED,
    RECONCILE_CRASH_POINTS,
    ControllerCrash,
    CrashPointInjector,
)
from repro.k8s.api import APIServer
from repro.k8s.controller import INTENT_DONE
from repro.k8s.election import EPOCH_KEY, LeaderElection
from repro.k8s.kvstore import KVStore
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import EVENT_JOB_ARRIVED, EVENT_RUN_COMPLETED, RecordingTracer, Tracer
from repro.schedulers import JobView, make_scheduler
from repro.soak.checker import CheckerConfig, InvariantChecker
from repro.workloads import MODEL_ZOO, StepTimeModel, make_job


@dataclass(frozen=True)
class FailoverConfig:
    """One failover drill, fully deterministic given these fields."""

    seed: int = 0
    jobs: int = 3
    servers: int = 4
    #: Steps each reign leads before its scripted kill.
    steps_before: int = 3
    #: Steps the final leader runs after the last takeover.
    steps_after: int = 4
    #: Election lease TTL, in step units.
    lease_ttl: float = 2.0
    #: Node health lease TTL (kubelets heartbeat every step regardless).
    node_lease_ttl: float = 6.0
    policy: str = "optimus"
    #: How the leader dies; see the module docstring. ``None`` = silent.
    crash_point: Optional[str] = None
    #: How many leader kills (waves) the drill performs.
    kills: int = 1


@dataclass
class FailoverOutcome:
    """Everything one failover drill produced."""

    config: FailoverConfig
    jobs: List[str]
    #: Per-takeover ``first schedule - lease expiry``, in step units.
    takeover_latencies: List[float]
    #: Stale writes rejected by the fence across every deposed loop.
    fenced_writes: int
    #: The highest fencing epoch minted (== number of reigns).
    final_epoch: int
    leaked_pods: List[str] = field(default_factory=list)
    leaked_leases: List[str] = field(default_factory=list)
    leaked_intents: List[str] = field(default_factory=list)
    events: List[Dict] = field(default_factory=list)
    checker: Optional[InvariantChecker] = None
    report: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.checker is None or self.checker.ok


def run_failover_drill(
    config: FailoverConfig,
    tracer: Optional[Tracer] = None,
    trace_out: Optional[str] = None,
    emit_accounting: bool = True,
) -> FailoverOutcome:
    """Execute one failover drill end to end.

    With the default standalone mode (*tracer* unset), the drill records
    its own trace, emits the terminal ``run_completed`` accounting event
    and audits the stream with an :class:`InvariantChecker` configured
    for elections (``failover_bound`` = 2x the lease TTL -- the
    acceptance bound on takeover latency). When embedded in a soak
    scenario, pass the shared *tracer* and ``emit_accounting=False``;
    the caller then merges the returned jobs/leaks into its own
    accounting.
    """
    own_tracer = tracer is None
    if own_tracer:
        tracer = RecordingTracer()
    metrics = MetricsRegistry()
    store = KVStore()
    # Kubelets are not the controller: node registration and heartbeats go
    # through an unfenced API server and keep flowing during failovers.
    kubelet_api = APIServer(store)
    node_names = [f"n{i}" for i in range(config.servers)]
    for name in node_names:
        kubelet_api.register_node(
            name, cpu_mem(16, 64), lease_ttl=config.node_lease_ttl, now=0.0
        )

    models = sorted(MODEL_ZOO)
    specs = [
        make_job(
            models[(i + config.seed) % len(models)],
            mode="sync",
            job_id=f"ha-{i}",
        )
        for i in range(config.jobs)
    ]
    truths = {s.job_id: StepTimeModel(s.profile, "sync") for s in specs}
    progress = {s.job_id: 0.0 for s in specs}
    for spec in specs:
        tracer.emit(
            EVENT_JOB_ARRIVED,
            0.0,
            job_id=spec.job_id,
            model=spec.model_name,
            mode=spec.mode,
            arrival_time=0.0,
        )

    def views():
        return [
            JobView(
                spec=spec,
                remaining_steps=max(50_000.0 - progress[spec.job_id], 1_000.0),
                speed=lambda p, w, t=truths[spec.job_id]: t.speed(p, w),
                observation_count=100,
            )
            for spec in specs
        ]

    loops: List[ControlLoop] = []
    incarnation = 0

    def controller(start_step: int) -> ControlLoop:
        nonlocal incarnation
        name = f"ctrl-{incarnation}"
        incarnation += 1
        election = LeaderElection(
            store, name, ttl=config.lease_ttl, tracer=tracer, metrics=metrics
        )
        loop = ControlLoop(
            APIServer(store),
            make_scheduler(config.policy),
            tracer=tracer,
            metrics=metrics,
            start_step=start_step,
            election=election,
        )
        loops.append(loop)
        return loop

    def heartbeat_all(now: float) -> None:
        for name in node_names:
            kubelet_api.heartbeat_node(name, now)

    def bump_progress() -> None:
        for spec in specs:
            progress[spec.job_id] += 250.0

    now = 0.0
    active = controller(start_step=0)
    if active.standby_tick(now) is None:
        raise SimulationError("the bootstrap election must win a vacant seat")
    standby = controller(start_step=0)
    takeover_latencies: List[float] = []

    for wave in range(max(1, config.kills)):
        # -- the reign: leader drives, standby idles ------------------------------
        for _ in range(config.steps_before):
            heartbeat_all(now)
            if standby.standby_tick(now) is not None:
                raise SimulationError("standby won against a live leader")
            active.step(views(), progress=dict(progress))
            bump_progress()
            now += 1.0
        # -- the kill -------------------------------------------------------------
        point = config.crash_point
        if point == CRASH_MID_STEP_DEPOSED:
            # Deposed mid-step: the lease is severed at t=now, so the
            # vacancy opens immediately and the reconcile writes are
            # fenced. The zombie then tries to drain -- fenced again.
            active.crash_points = CrashPointInjector([ControllerCrash(point)])
            heartbeat_all(now)
            standby.standby_tick(now)
            try:
                active.step(views(), progress=dict(progress))
                raise SimulationError("a severed leader's step must be fenced")
            except StaleLeaderError:
                pass
            try:
                active.drain(progress=dict(progress))
            except StaleLeaderError:
                pass  # the post-mortem write bounced, as it must
            lease_expiry = now
            now += 1.0
        elif point in RECONCILE_CRASH_POINTS:
            # Died mid-write with a torn intent; the lease was renewed at
            # step entry, so it lives another full TTL past the crash.
            # Reconcile crash points only fire on an actual rescale, so the
            # drill forces one: drop a victim job from the views (its
            # teardown fires the checkpoint/teardown points) and, if the
            # scripted point is a launch one, re-add it next step (the
            # relaunch fires it).
            active.controller.crash_points = CrashPointInjector(
                [ControllerCrash(point)]
            )
            victim = specs[wave % len(specs)].job_id
            crashed = False
            for attempt in range(4):
                heartbeat_all(now)
                standby.standby_tick(now)
                step_views = [
                    view
                    for view in views()
                    if attempt % 2 == 1 or view.spec.job_id != victim
                ]
                try:
                    active.step(step_views, progress=dict(progress))
                except ControllerCrashed:
                    crashed = True
                    break
                bump_progress()
                now += 1.0
            if not crashed:
                raise SimulationError(f"crash point {point!r} never fired")
            lease_expiry = now + config.lease_ttl
            now += 1.0
        else:
            # Silent death (and the election crash points, which script
            # the *successor*): the leader just stops; its last renewal
            # was its final step at now - 1.
            if point is not None:
                standby.crash_points = CrashPointInjector(
                    [ControllerCrash(point)]
                )
            lease_expiry = (now - 1.0) + config.lease_ttl
        # -- the takeover ---------------------------------------------------------
        recovered: Optional[Dict[str, float]] = None
        guard = now + 4.0 * config.lease_ttl + 8.0
        while recovered is None:
            if now > guard:
                raise SimulationError(
                    f"no takeover within {guard} steps (wave {wave})"
                )
            heartbeat_all(now)
            try:
                recovered = standby.standby_tick(now)
            except ControllerCrashed:
                # The successor died at its scripted election crash
                # point; a replacement candidate finishes the job. A
                # winner that died after_elected holds the seat until
                # its own (just-granted) lease lapses.
                if standby.role == "leader":
                    lease_expiry = now + config.lease_ttl
                standby = controller(start_step=int(now))
                recovered = None
            if recovered is None:
                now += 1.0
        for job_id, saved in recovered.items():
            progress[job_id] = max(progress.get(job_id, 0.0), saved)
        active = standby
        # First post-recovery schedule: this step completing is the far
        # edge of the takeover-latency window.
        active.step(views(), progress=dict(progress))
        takeover_latencies.append(now - lease_expiry)
        bump_progress()
        now += 1.0
        standby = controller(start_step=int(now))

    # -- steady state under the final leader, then shutdown ----------------------
    for _ in range(config.steps_after):
        heartbeat_all(now)
        standby.standby_tick(now)
        active.step(views(), progress=dict(progress))
        bump_progress()
        now += 1.0
    active.drain(progress=dict(progress))
    active.election.resign(now)

    # -- leak accounting (through the unfenced kubelet view) ----------------------
    leaked_pods = sorted(p.name for p in kubelet_api.list_pods())
    leaked_intents = sorted(
        job_id
        for job_id, intent in active.controller.list_intents().items()
        if intent.phase != INTENT_DONE
    )
    leaked_leases = []
    for name in node_names:
        lease_id = kubelet_api.node(name).lease_id
        kubelet_api.remove_node(name)
        if lease_id is not None and store.has_lease(lease_id):
            leaked_leases.append(f"{name}:{lease_id}")
    for loop in loops:
        election = loop.election
        if election._lease_id is not None and store.has_lease(election._lease_id):
            leaked_leases.append(f"election:{election.candidate}")
    fenced_writes = sum(
        getattr(loop.api.store, "fenced_writes", 0) for loop in loops
    )
    final_epoch = int(store.get(EPOCH_KEY) or 0)
    job_ids = [s.job_id for s in specs]

    checker = None
    report = None
    if emit_accounting:
        tracer.emit(
            EVENT_RUN_COMPLETED,
            now,
            finished=[],
            unfinished=job_ids,
            leaked_pods=leaked_pods,
            leaked_leases=sorted(leaked_leases),
            leaked_intents=leaked_intents,
        )
    events = list(getattr(tracer, "events", []))
    if own_tracer:
        if trace_out:
            with open(trace_out, "w", encoding="utf8") as stream:
                for event in events:
                    stream.write(json.dumps(event, separators=(",", ":")) + "\n")
        checker = InvariantChecker(
            CheckerConfig(
                require_accounting=True,
                strict_end=True,
                failover_bound=2.0 * config.lease_ttl,
            )
        )
        checker.observe_all(events)
        checker.finish()
        report = checker.report(
            extra={
                "drill": "failover",
                "seed": config.seed,
                "crash_point": config.crash_point,
                "kills": int(max(1, config.kills)),
                "lease_ttl": config.lease_ttl,
                "takeover_latencies": takeover_latencies,
                "fenced_writes": fenced_writes,
                "final_epoch": final_epoch,
            }
        )

    return FailoverOutcome(
        config=config,
        jobs=job_ids,
        takeover_latencies=takeover_latencies,
        fenced_writes=fenced_writes,
        final_epoch=final_epoch,
        leaked_pods=leaked_pods,
        leaked_leases=sorted(leaked_leases),
        leaked_intents=leaked_intents,
        events=events,
        checker=checker,
        report=report,
    )
