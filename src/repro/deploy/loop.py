"""The deployment control loop (§5.5).

In the paper, Optimus runs as a pod that *polls the Kubernetes master for
cluster information and job states*, makes a decision each scheduling
interval and applies it through pod operations. :class:`ControlLoop` is
that cycle over the in-process substrate:

1. snapshot the cluster from the API server's node/pod state (capacity
   minus any pods the loop does not manage -- other tenants' workloads);
2. run the configured scheduler on the caller-provided job views;
3. reconcile the decision through the
   :class:`~repro.k8s.controller.JobController` (checkpoint-based scaling).

The loop is deliberately passive about *training state*: callers supply the
:class:`~repro.schedulers.base.JobView` list and per-job progress, which in
a real deployment come from the framework's metrics stream (and in this
repository from :mod:`repro.sim`).

Crash consistency (§5.5): the loop's own state -- which jobs it manages --
is persisted through the controller's durable managed set, and every
rescale is write-ahead logged as an intent, so :meth:`ControlLoop.recover`
rebuilds everything from the store alone after a scheduler restart and
replays whatever cycle was in flight when the previous incarnation died.
Node health rides on KV leases: heartbeating nodes that go silent are
cordoned by the per-step sweep, their pods marked lost, and their jobs
relaunched from checkpoint on live nodes the same interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.common.errors import (
    ConfigurationError,
    SchedulingError,
    StaleLeaderError,
)
from repro.faults.crashpoints import (
    CRASH_AFTER_ELECTED,
    CRASH_BEFORE_CAMPAIGN,
    CRASH_MID_STEP_DEPOSED,
    CrashPointInjector,
)
from repro.k8s.api import APIServer
from repro.k8s.election import LeaderElection
from repro.k8s.controller import JobController, JobTarget, ReconcileReport
from repro.obs.estimators import (
    NULL_ESTIMATOR_TELEMETRY,
    EstimatorTelemetry,
)
from repro.obs.registry import (
    NULL_PROFILER,
    MetricsRegistry,
    PhaseProfiler,
    active_registry,
    use_registry,
)
from repro.obs.spans import span_tracer_for
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_MISSING,
    EVENT_INTENT_REPLAYED,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_RESCALED,
    EVENT_NODE_CORDONED,
    EVENT_NODE_LEASE_REGRANT,
    EVENT_NODE_LEASE_RENEWED,
    EVENT_PLACEMENT_DECIDED,
    EVENT_RESCALE_ROLLED_BACK,
    NULL_TRACER,
    Tracer,
)
from repro.schedulers.base import JobView, Scheduler, SchedulingDecision


def cluster_from_api(
    api: APIServer, managed_jobs: Optional[set] = None
) -> Cluster:
    """Build a scheduling-ready :class:`Cluster` from API-server state.

    Managed jobs' pods are *excluded* (the controller re-places them every
    interval, §5.4); any other bound pods -- other tenants, system daemons
    -- are carried over as occupied capacity. Cordoned nodes are excluded
    entirely: a dead machine must not pin capacity or attract placements.
    """
    nodes = api.list_nodes(include_cordoned=False)
    if not nodes:
        raise SchedulingError("the API server has no registered live nodes")
    live = {node.name for node in nodes}
    servers = [Server(node.name, node.capacity) for node in nodes]
    cluster = Cluster(servers)
    managed = managed_jobs or set()
    for pod in api.list_pods():
        if pod.node is None or pod.node not in live or pod.job_id in managed:
            continue
        cluster.place(pod.node, (pod.job_id, pod.role, pod.index), pod.demand)
    return cluster


@dataclass(frozen=True)
class StepReport:
    """Everything one control-loop step decided and did."""

    decision: SchedulingDecision
    reconcile: ReconcileReport
    #: Jobs that received no placement this interval (paused, §4.2).
    paused: Tuple[str, ...]


class ControlLoop:
    """Poll → schedule → reconcile, once per scheduling interval."""

    def __init__(
        self,
        api: APIServer,
        scheduler: Scheduler,
        controller: Optional[JobController] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        crash_points: Optional[CrashPointInjector] = None,
        start_step: int = 0,
        estimator_drift_window: int = 6,
        estimator_drift_threshold: float = 0.5,
        election: Optional[LeaderElection] = None,
    ):
        self.api = api
        self.scheduler = scheduler
        # Hot/standby HA: with an election, every write this loop issues
        # goes through a fenced store, and step() asserts leadership up
        # front. A loop without one is the classic single-controller mode.
        self.election = election
        self.crash_points = crash_points
        if election is not None:
            self.api.fence_writes(election)
        self.controller = controller or JobController(
            api, crash_points=crash_points
        )
        #: Jobs this loop has ever managed and may therefore tear down;
        #: other tenants' pods are off-limits (§7 "Various workloads").
        self._known_jobs: set = set()

        # Observability (repro.obs): the loop has no simulation clock, so
        # trace events are stamped with the 0-based step index.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else active_registry()
        if self.tracer or self.metrics:
            self.profiler = PhaseProfiler(self.metrics)
        else:
            self.profiler = NULL_PROFILER
        # Causal span tracing: a ``step`` root per interval with sweep /
        # snapshot / schedule / reconcile children; the controller opens
        # per-job checkpoint / teardown / launch grandchildren.
        self.spans = span_tracer_for(self.tracer)
        if not self.controller.spans:
            self.controller.spans = self.spans
        # Prediction-quality telemetry: predictions recorded at decision
        # time, resolved by callers through observe_speed /
        # observe_completion (the deployment has no ground-truth clock).
        if self.tracer or self.metrics:
            self.estimators: EstimatorTelemetry = EstimatorTelemetry(
                tracer=self.tracer,
                metrics=self.metrics,
                drift_window=estimator_drift_window,
                drift_threshold=estimator_drift_threshold,
            )
        else:
            self.estimators = NULL_ESTIMATOR_TELEMETRY
        self.scheduler.instrument(
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler,
            spans=self.spans,
        )
        # A recovered loop passes the dead predecessor's step index so the
        # shared clock (trace times, lease expiry) stays monotonic.
        self._step_index = int(start_step)

    @property
    def step_index(self) -> int:
        """The 0-based index of the next scheduling interval."""
        return self._step_index

    @property
    def role(self) -> str:
        """``"leader"`` or ``"standby"``; election-free loops always lead."""
        if self.election is None or self.election.leading:
            return "leader"
        return "standby"

    def step(
        self,
        views: Sequence[JobView],
        progress: Optional[Mapping[str, float]] = None,
    ) -> StepReport:
        """Run one scheduling interval for the given active jobs.

        Parameters
        ----------
        views:
            Scheduler-facing snapshots of the active jobs (§3 estimates).
        progress:
            Per-job progress (steps done), persisted into checkpoints when
            jobs are rescaled or torn down.
        """
        now = float(self._step_index)
        if self.election is not None and not self.election.renew(now):
            # Not (or no longer) the leader: refuse before touching any
            # state. Standbys drive standby_tick(), never step().
            raise StaleLeaderError(
                f"controller {self.election.candidate!r} is not the leader "
                f"(epoch {self.election.epoch}); cannot run a step"
            )
        tracer = self.tracer
        spans = self.spans
        spans.set_time(now)
        self.profiler.begin_interval()
        managed = {view.job_id for view in views}
        with use_registry(self.metrics), spans.span(
            "step", step=self._step_index
        ):
            with spans.span("sweep"), self.profiler.phase("sweep"):
                self.sweep_node_leases(now)
            # Write-ahead: the store knows the loop owns these jobs
            # *before* any of their pods are touched, so a crash mid-pass
            # cannot orphan a half-managed job.
            for job_id in sorted(managed - self._known_jobs):
                self.controller.adopt_job(job_id)
            with spans.span("snapshot"), self.profiler.phase("snapshot"):
                cluster = cluster_from_api(self.api, managed_jobs=managed)
            with spans.span("schedule"), self.profiler.phase("schedule"):
                decision = self.scheduler.schedule(cluster, views)

            if tracer:
                for job_id, alloc in decision.allocations.items():
                    tracer.emit(
                        EVENT_ALLOCATION_DECIDED,
                        now,
                        job_id=job_id,
                        workers=alloc.workers,
                        ps=alloc.ps,
                    )
                for job_id, layout in decision.layouts.items():
                    tracer.emit(
                        EVENT_PLACEMENT_DECIDED,
                        now,
                        job_id=job_id,
                        servers=len(layout),
                        layout={
                            server: [nw, np_]
                            for server, (nw, np_) in sorted(layout.items())
                        },
                    )

            targets = []
            by_id = {view.job_id: view for view in views}
            if self.estimators:
                # What the online models promise for the jobs that will
                # run; callers resolve through observe_speed /
                # observe_completion as the framework reports back.
                done_steps = dict(progress or {})
                for job_id in decision.scheduled_jobs:
                    view = by_id[job_id]
                    alloc = decision.allocations[job_id]
                    if alloc.workers < 1:
                        continue
                    self.estimators.record_speed_prediction(
                        job_id, view.speed(alloc.ps, alloc.workers)
                    )
                    self.estimators.record_total_prediction(
                        job_id,
                        done_steps.get(job_id, 0.0) + view.remaining_steps,
                    )
            for job_id, layout in decision.layouts.items():
                view = by_id[job_id]
                targets.append(
                    JobTarget(
                        job_id=job_id,
                        worker_demand=view.spec.worker_demand,
                        ps_demand=view.spec.ps_demand,
                        layout=dict(layout),
                    )
                )
            # Deposition chaos: sever the election lease *after* the
            # decision but before its writes land -- the GC-pause story.
            # The remaining reconcile mutations then bounce off the fence
            # and StaleLeaderError propagates out of step() (nothing may
            # absorb it, exactly like ControllerCrashed).
            if (
                self.election is not None
                and self.crash_points
                and self.crash_points.take(
                    CRASH_MID_STEP_DEPOSED, self.election.candidate
                )
            ):
                self.election.sever(now)
            with spans.span("reconcile"), self.profiler.phase("reconcile"):
                # Graceful degradation: a rescale failing mid-flight rolls
                # that job back to its previous pods and the loop carries on
                # with the rest, instead of tearing half the fleet down.
                report = self.controller.reconcile(
                    targets,
                    job_progress=dict(progress or {}),
                    scope=self._known_jobs | managed,
                    raise_on_failure=False,
                )
        if tracer:
            for job_id in report.jobs_scaled:
                alloc = decision.allocations.get(job_id)
                tracer.emit(
                    EVENT_JOB_RESCALED,
                    now,
                    job_id=job_id,
                    new=[alloc.workers, alloc.ps] if alloc else None,
                )
            for job_id in report.jobs_rolled_back:
                tracer.emit(EVENT_RESCALE_ROLLED_BACK, now, job_id=job_id)
        metrics = self.metrics
        metrics.counter("loop.steps").inc()
        metrics.counter("loop.pods_created").inc(report.pods_created)
        metrics.counter("loop.pods_deleted").inc(report.pods_deleted)
        metrics.counter("loop.jobs_scaled").inc(len(report.jobs_scaled))
        metrics.counter("loop.rescale_rollbacks").inc(len(report.jobs_rolled_back))
        metrics.counter("loop.reconcile_failures").inc(len(report.jobs_failed))
        # Jobs whose teardown failed stay owned (and durably recorded) so
        # the next pass retries; everything else that left the view is
        # released from the durable managed set (idempotent: reconcile
        # already dropped the keys of the jobs it tore down).
        failed = set(report.jobs_failed)
        for job_id in sorted(self._known_jobs - managed - failed):
            self.controller.release_job(job_id)
        self._known_jobs = managed | (
            (self._known_jobs - managed) & failed
        )
        paused = tuple(
            sorted(job_id for job_id in managed if job_id not in decision.layouts)
        )
        if tracer:
            tracer.emit(
                EVENT_INTERVAL_TICK,
                now,
                running_jobs=len(decision.scheduled_jobs),
                active_jobs=len(managed),
                paused_jobs=len(paused),
                phases=self.profiler.interval_timings(),
            )
        self._step_index += 1
        return StepReport(decision=decision, reconcile=report, paused=paused)

    # -- estimator telemetry -------------------------------------------------------
    def observe_speed(self, job_id: str, actual: float) -> Optional[float]:
        """Score the last interval's speed prediction against reality.

        Callers feed the training speed the framework actually measured;
        returns the signed relative error (or ``None`` with no pending
        prediction). Feeds the fleet MAPE gauges and the drift detector.
        """
        return self.estimators.resolve_speed(
            job_id, actual, float(self._step_index)
        )

    def observe_completion(self, job_id: str, total_steps: float) -> int:
        """Resolve every total-steps prediction for a finished job.

        The Fig.-6 replay: each interval's predicted total is scored
        against the steps the job actually needed. Returns the number of
        predictions resolved and drops any still-pending speed prediction.
        """
        resolved = self.estimators.resolve_totals(
            job_id, total_steps, float(self._step_index)
        )
        self.estimators.discard_job(job_id)
        return resolved

    # -- node health --------------------------------------------------------------
    def heartbeat(self, node_name: str, now: Optional[float] = None) -> None:
        """Forward a node's liveness ping (the kubelet status update).

        Renews the node's KV lease and emits ``node_lease_renewed`` /
        ``lease.renewals``. Only meaningful for nodes registered with a
        ``lease_ttl``; see :meth:`APIServer.heartbeat_node` for the error
        contract.
        """
        now = float(self._step_index) if now is None else now
        before = self.api.node(node_name).lease_id
        node = self.api.heartbeat_node(node_name, now)
        if node.lease_id != before:
            # The lease had lapsed unswept; the ping re-granted a fresh one.
            if self.tracer:
                self.tracer.emit(
                    EVENT_NODE_LEASE_REGRANT, now, server=node_name
                )
            self.metrics.counter("lease.regrants").inc()
            return
        if self.tracer:
            self.tracer.emit(EVENT_NODE_LEASE_RENEWED, now, server=node_name)
        self.metrics.counter("lease.renewals").inc()

    def sweep_node_leases(self, now: Optional[float] = None) -> Tuple[str, ...]:
        """Cordon nodes whose health lease lapsed (runs inside every step).

        Newly cordoned nodes vanish from the scheduling snapshot, their
        pods are marked lost, and the same step's reconcile relaunches the
        affected jobs from checkpoint on live nodes -- a dead machine costs
        at most one scheduling interval of progress. Emits
        ``node_cordoned`` and bumps ``lease.expirations`` /
        ``loop.nodes_cordoned`` per node. A cluster with no leases
        configured sweeps nothing and mutates nothing.
        """
        now = float(self._step_index) if now is None else now
        cordoned = tuple(self.api.sweep_expired(now))
        for name in cordoned:
            if self.tracer:
                self.tracer.emit(EVENT_NODE_CORDONED, now, server=name)
            self.metrics.counter("lease.expirations").inc()
            self.metrics.counter("loop.nodes_cordoned").inc()
        return cordoned

    # -- hot/standby HA ------------------------------------------------------------
    def standby_tick(self, now: Optional[float] = None) -> Optional[Dict[str, float]]:
        """One standby heartbeat: campaign for a vacant leadership.

        A standby calls this every tick (the store has no clock, so
        vacancy is *polled*: a silently dead leader's lease only looks
        lapsed when someone checks). While another leader reigns it
        returns ``None``. On winning the election it fires the
        ``before_campaign``/``after_elected`` crash points, syncs the
        step clock to *now*, runs the full :meth:`recover` path -- intent
        replay, managed-set re-adoption -- and returns the recovered
        per-job checkpoint progress: the takeover is complete and the
        caller should start driving :meth:`step`. An already-leading loop
        just renews its lease.
        """
        if self.election is None:
            raise ConfigurationError("standby_tick requires an election")
        now = float(self._step_index) if now is None else now
        # A successor resumes the shared step clock so trace times and
        # lease expiries stay monotonic across reigns.
        self._step_index = max(self._step_index, int(now))
        if self.election.is_leader(now):
            self.election.renew(now)
            return None
        if self.crash_points and not self.election.leader_alive(now):
            # Only an actual vacancy is "before campaign"; a standby idling
            # behind a healthy leader is not about to campaign for anything.
            self.crash_points.fire(CRASH_BEFORE_CAMPAIGN, self.election.candidate)
        if self.election.campaign(now) is None:
            self.metrics.counter("election.standby_ticks").inc()
            return None
        if self.crash_points:
            self.crash_points.fire(CRASH_AFTER_ELECTED, self.election.candidate)
        return self.recover()

    # -- shutdown & crash recovery ------------------------------------------------
    def drain(self, progress: Optional[Mapping[str, float]] = None) -> ReconcileReport:
        """Tear the loop's jobs down (checkpointing state), e.g. at shutdown.

        Degrades gracefully like :meth:`step`: one job's KV failure does
        not abort the drain for the rest. Jobs that could not be torn down
        stay owned (``report.jobs_failed``) so a retried drain -- or a
        recovered successor -- can finish the work.
        """
        report = self.controller.reconcile(
            [],
            job_progress=dict(progress or {}),
            scope=self._known_jobs,
            raise_on_failure=False,
        )
        self._known_jobs = set(report.jobs_failed)
        return report

    def recover(
        self, job_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, float]:
        """Rebuild state after a scheduler restart (§5.5 fault tolerance).

        Kubernetes restarts a failed scheduler pod automatically; job state
        survives in etcd. With no arguments the loop rebuilds everything
        from the store alone: it re-adopts the durable managed-job set,
        replays any write-ahead intent the dead controller left mid-cycle
        (completing or abandoning the rescale -- ``intent_replayed`` per
        job), and returns the progress recorded in the jobs' checkpoints.

        *job_ids* may still be supplied to adopt additional jobs the store
        does not know about (a migration path, and the pre-intent-log
        behaviour); they are unioned with the stored set and durably
        adopted.

        A missing checkpoint reports 0.0 -- safe (the job restarts from
        scratch) but worth an operator's attention, since "fresh job" and
        "lost checkpoint" look identical from the return value alone: each
        one is traced as ``checkpoint_missing`` and counted in
        ``loop.checkpoints_missing``.
        """
        now = float(self._step_index)
        self.spans.set_time(now)
        stored = self.controller.managed_jobs()
        with self.spans.span("replay_intents"):
            for job_id, phase, outcome in self.controller.replay_intents():
                if self.tracer:
                    self.tracer.emit(
                        EVENT_INTENT_REPLAYED,
                        now,
                        job_id=job_id,
                        phase=phase,
                        outcome=outcome,
                    )
                self.metrics.counter("loop.intents_replayed").inc()
        # Replay may have finished pending teardowns (releasing jobs).
        stored &= self.controller.managed_jobs()
        extra = set(job_ids or ()) - stored
        for job_id in sorted(extra):
            self.controller.adopt_job(job_id)
        adopted: Dict[str, float] = {}
        for job_id in sorted(stored | extra):
            checkpoint = self.controller.load_checkpoint(job_id)
            if checkpoint is None:
                if self.tracer:
                    self.tracer.emit(
                        EVENT_CHECKPOINT_MISSING,
                        now,
                        job_id=job_id,
                    )
                self.metrics.counter("loop.checkpoints_missing").inc()
            adopted[job_id] = 0.0 if checkpoint is None else checkpoint
            self._known_jobs.add(job_id)
        return adopted
