"""Deployment-mode plumbing: the §5.5 poll/schedule/reconcile loop."""

from repro.deploy.failover import (
    FailoverConfig,
    FailoverOutcome,
    run_failover_drill,
)
from repro.deploy.loop import ControlLoop, StepReport, cluster_from_api

__all__ = [
    "ControlLoop",
    "StepReport",
    "cluster_from_api",
    "FailoverConfig",
    "FailoverOutcome",
    "run_failover_drill",
]
