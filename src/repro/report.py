"""Plain-text reporting helpers for examples, the CLI and bench reports.

Everything here renders into monospace text -- no plotting dependencies --
so experiment output is readable in a terminal and diffable in a repo.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode chart of *values* (empty string for no data).

    Examples
    --------
    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if any(math.isnan(v) or math.isinf(v) for v in data):
        raise ConfigurationError("sparkline values must be finite")
    lo, hi = min(data), max(data)
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * len(data)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(_SPARK_LEVELS[int(round((v - lo) * scale))] for v in data)


def bar_chart(
    rows: Sequence[tuple],
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart from ``[(label, value), ...]``.

    The longest bar spans *width* characters; labels are right-aligned.
    """
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    items = [(str(label), float(value)) for label, value in rows]
    if not items:
        return ""
    if any(v < 0 for _, v in items):
        raise ConfigurationError("bar_chart values must be non-negative")
    peak = max(v for _, v in items)
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        length = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(
            f"{label:>{label_width}s} | {'█' * length} {value:g}{unit}"
        )
    return "\n".join(lines)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """An aligned plain-text table; numbers are right-aligned."""
    if not headers:
        raise ConfigurationError("need at least one header")
    string_rows = [[_cell(v) for v in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in string_rows))
        if string_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    is_numeric = [
        bool(string_rows) and all(_numeric(r[i]) for r in string_rows)
        for i in range(len(headers))
    ]

    def render(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if is_numeric[i]:
                parts.append(f"{cell:>{widths[i]}s}")
            else:
                parts.append(f"{cell:<{widths[i]}s}")
        return "  ".join(parts).rstrip()

    lines = [render([str(h) for h in headers])]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in string_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def result_to_dict(result) -> Dict:
    """A JSON-ready dictionary of a :class:`~repro.sim.SimulationResult`."""
    return {
        "scheduler": result.scheduler_name,
        "seed": result.seed,
        "interval": result.interval,
        "summary": {
            k: (None if isinstance(v, float) and math.isinf(v) else v)
            for k, v in result.summary().items()
        },
        "jobs": [
            {
                "job_id": record.job_id,
                "model": record.model,
                "mode": record.mode,
                "arrival_time": record.arrival_time,
                "completion_time": record.completion_time,
                "jct": None if record.completion_time is None else record.jct,
                "scaling_time": record.scaling_time,
                "num_scalings": record.num_scalings,
                "chunks_moved": record.chunks_moved,
                "num_restarts": record.num_restarts,
                "steps_lost": record.steps_lost,
            }
            for record in result.jobs.values()
        ],
        "phase_timings": result.phase_timings,
        "timeline": [
            {
                "time": slot.time,
                "running_jobs": slot.running_jobs,
                "running_tasks": slot.running_tasks,
                "allocated_cpu": slot.allocated_cpu,
                "worker_utilization": slot.worker_utilization,
                "ps_utilization": slot.ps_utilization,
            }
            for slot in result.timeline
        ],
    }


def result_to_json(result, indent: Optional[int] = 2) -> str:
    """Serialise a simulation result for offline analysis."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)
