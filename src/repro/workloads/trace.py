"""Workload-trace serialisation: save and replay job traces as JSON.

The paper's simulator is trace-driven (§6.1). This module lets a generated
workload (or a hand-written one) be persisted and replayed exactly, so
experiments are reproducible across machines and the CLI can operate on
trace files.

Profiles are referenced by zoo name; all per-job fields (mode, threshold,
demands, arrival, static requests, dataset scale) round-trip exactly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from repro.cluster.resources import ResourceVector
from repro.common.errors import ConfigurationError
from repro.workloads.job import JobSpec
from repro.workloads.profiles import get_profile

TRACE_VERSION = 1


def job_to_dict(job: JobSpec) -> Dict:
    """A JSON-ready description of one job."""
    return {
        "job_id": job.job_id,
        "model": job.profile.name,
        "mode": job.mode,
        "threshold": job.threshold,
        "patience": job.patience,
        "worker_demand": dict(job.worker_demand.items()),
        "ps_demand": dict(job.ps_demand.items()),
        "dataset_scale": job.dataset_scale,
        "arrival_time": job.arrival_time,
        "requested_workers": job.requested_workers,
        "requested_ps": job.requested_ps,
    }


#: Fields every trace record must carry; the optional rest have defaults.
REQUIRED_JOB_FIELDS = (
    "job_id",
    "model",
    "mode",
    "threshold",
    "worker_demand",
    "ps_demand",
)


def _record_label(data: Dict, index: Optional[int]) -> str:
    """A human-pointable name for one record in an error message."""
    where = f"trace record {index}" if index is not None else "trace record"
    job_id = data.get("job_id") if isinstance(data, dict) else None
    if job_id:
        where += f" (job_id={job_id!r})"
    return where


def job_from_dict(data: Dict, index: Optional[int] = None) -> JobSpec:
    """Rebuild a job from :func:`job_to_dict` output.

    Malformed records raise :class:`ConfigurationError` (a ``ValueError``)
    naming the offending field and record -- never a bare ``KeyError`` or
    ``TypeError`` from deep inside the constructor chain.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{_record_label({}, index)} must be an object, got {type(data).__name__}"
        )
    missing = [name for name in REQUIRED_JOB_FIELDS if name not in data]
    if missing:
        raise ConfigurationError(
            f"{_record_label(data, index)} missing field(s): {', '.join(missing)}"
        )
    label = _record_label(data, index)
    try:
        profile = get_profile(data["model"])
    except (ConfigurationError, TypeError) as exc:
        raise ConfigurationError(f"{label}: bad field 'model': {exc}") from None
    for name, kind in (
        ("worker_demand", "worker_demand"),
        ("ps_demand", "ps_demand"),
    ):
        if not isinstance(data[name], dict):
            raise ConfigurationError(
                f"{label}: bad field {kind!r}: expected a resource mapping, "
                f"got {type(data[name]).__name__}"
            )
    try:
        return JobSpec(
            job_id=data["job_id"],
            profile=profile,
            mode=data["mode"],
            threshold=data["threshold"],
            patience=data.get("patience", 2),
            worker_demand=ResourceVector(data["worker_demand"]),
            ps_demand=ResourceVector(data["ps_demand"]),
            dataset_scale=data.get("dataset_scale", 1.0),
            arrival_time=data.get("arrival_time", 0.0),
            requested_workers=data.get("requested_workers", 4),
            requested_ps=data.get("requested_ps", 4),
        )
    except ConfigurationError as exc:
        raise ConfigurationError(f"{label}: {exc}") from None
    except TypeError as exc:
        raise ConfigurationError(f"{label}: bad field value: {exc}") from None


def jobs_to_json(jobs: Sequence[JobSpec], indent: int = 2) -> str:
    """Serialise a workload trace."""
    payload = {
        "version": TRACE_VERSION,
        "jobs": [job_to_dict(job) for job in jobs],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def jobs_from_json(payload: Union[str, bytes]) -> List[JobSpec]:
    """Load a workload trace produced by :func:`jobs_to_json`."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid trace JSON: {exc}") from None
    if not isinstance(data, dict) or "jobs" not in data:
        raise ConfigurationError("trace must be an object with a 'jobs' list")
    version = data.get("version", TRACE_VERSION)
    if version != TRACE_VERSION:
        raise ConfigurationError(
            f"unsupported trace version {version!r} (supported: {TRACE_VERSION})"
        )
    if not isinstance(data["jobs"], list):
        raise ConfigurationError(
            f"trace 'jobs' must be a list, got {type(data['jobs']).__name__}"
        )
    jobs = [
        job_from_dict(record, index=i) for i, record in enumerate(data["jobs"])
    ]
    seen: Dict[str, int] = {}
    for i, job in enumerate(jobs):
        if job.job_id in seen:
            raise ConfigurationError(
                f"trace records {seen[job.job_id]} and {i} share job_id "
                f"{job.job_id!r}; ids must be unique"
            )
        seen[job.job_id] = i
    return jobs


def save_trace(jobs: Sequence[JobSpec], path: str) -> None:
    """Write a workload trace to *path*."""
    with open(path, "w") as handle:
        handle.write(jobs_to_json(jobs))


def load_trace(path: str) -> List[JobSpec]:
    """Read a workload trace from *path*."""
    with open(path) as handle:
        return jobs_from_json(handle.read())
