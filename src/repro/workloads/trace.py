"""Workload-trace serialisation: save and replay job traces as JSON.

The paper's simulator is trace-driven (§6.1). This module lets a generated
workload (or a hand-written one) be persisted and replayed exactly, so
experiments are reproducible across machines and the CLI can operate on
trace files.

Profiles are referenced by zoo name; all per-job fields (mode, threshold,
demands, arrival, static requests, dataset scale) round-trip exactly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Union

from repro.cluster.resources import ResourceVector
from repro.common.errors import ConfigurationError
from repro.workloads.job import JobSpec
from repro.workloads.profiles import get_profile

TRACE_VERSION = 1


def job_to_dict(job: JobSpec) -> Dict:
    """A JSON-ready description of one job."""
    return {
        "job_id": job.job_id,
        "model": job.profile.name,
        "mode": job.mode,
        "threshold": job.threshold,
        "patience": job.patience,
        "worker_demand": dict(job.worker_demand.items()),
        "ps_demand": dict(job.ps_demand.items()),
        "dataset_scale": job.dataset_scale,
        "arrival_time": job.arrival_time,
        "requested_workers": job.requested_workers,
        "requested_ps": job.requested_ps,
    }


def job_from_dict(data: Dict) -> JobSpec:
    """Rebuild a job from :func:`job_to_dict` output."""
    try:
        return JobSpec(
            job_id=data["job_id"],
            profile=get_profile(data["model"]),
            mode=data["mode"],
            threshold=data["threshold"],
            patience=data.get("patience", 2),
            worker_demand=ResourceVector(data["worker_demand"]),
            ps_demand=ResourceVector(data["ps_demand"]),
            dataset_scale=data.get("dataset_scale", 1.0),
            arrival_time=data.get("arrival_time", 0.0),
            requested_workers=data.get("requested_workers", 4),
            requested_ps=data.get("requested_ps", 4),
        )
    except KeyError as missing:
        raise ConfigurationError(f"trace record missing field {missing}") from None


def jobs_to_json(jobs: Sequence[JobSpec], indent: int = 2) -> str:
    """Serialise a workload trace."""
    payload = {
        "version": TRACE_VERSION,
        "jobs": [job_to_dict(job) for job in jobs],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def jobs_from_json(payload: Union[str, bytes]) -> List[JobSpec]:
    """Load a workload trace produced by :func:`jobs_to_json`."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid trace JSON: {exc}") from None
    if not isinstance(data, dict) or "jobs" not in data:
        raise ConfigurationError("trace must be an object with a 'jobs' list")
    version = data.get("version", TRACE_VERSION)
    if version != TRACE_VERSION:
        raise ConfigurationError(
            f"unsupported trace version {version!r} (supported: {TRACE_VERSION})"
        )
    jobs = [job_from_dict(record) for record in data["jobs"]]
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("trace contains duplicate job ids")
    return jobs


def save_trace(jobs: Sequence[JobSpec], path: str) -> None:
    """Write a workload trace to *path*."""
    with open(path, "w") as handle:
        handle.write(jobs_to_json(jobs))


def load_trace(path: str) -> List[JobSpec]:
    """Read a workload trace from *path*."""
    with open(path) as handle:
        return jobs_from_json(handle.read())
