"""Validation-set metrics: epoch-end evaluation streams (§2.1, Fig. 1).

The paper bases *scheduling* on training loss (cheap, available every
step), but Fig. 1 also plots training/validation accuracy and validation
loss, and §2.1 notes that validation evaluation happens "only when
necessary (e.g., at the end of each epoch)". This module provides that
side-channel for the Fig-1 reproduction and for tests that need the "no
overfitting for production models" property (§2.1: training-loss
convergence implies convergence of the other metrics).

Model
-----
Given the normalised training loss ``l(E)``:

* validation loss tracks training loss with a small, bounded generalisation
  gap: ``l_val(E) = l(E) * (1 + gap * (1 - l(E)))`` -- the gap grows as the
  model fits the training set, but stays proportional (no divergence, i.e.
  no overfitting);
* accuracy saturates as the loss falls:
  ``acc(E) = max_accuracy * (1 - l(E)^sharpness)``, with validation accuracy
  scaled down by the same relative gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rand import SeedLike, spawn_rng


@dataclass(frozen=True)
class EpochMetrics:
    """One epoch-end evaluation record."""

    epoch: int
    train_loss: float
    validation_loss: float
    train_accuracy: float
    validation_accuracy: float


class ValidationEmitter:
    """Epoch-end metric streams derived from a ground-truth loss curve.

    Parameters
    ----------
    curve:
        Any object with ``loss(epoch) -> normalised loss`` (a
        :class:`~repro.workloads.profiles.LossCurveTruth` or
        :class:`~repro.workloads.lr_schedule.SteppedLossCurve`).
    initial_loss:
        Raw loss scale (losses are emitted in raw units, like the training
        stream).
    max_accuracy:
        Asymptotic training accuracy of the converged model.
    generalisation_gap:
        Relative validation penalty at full convergence (0.05 = val loss 5%
        above train loss; production models keep this small, §2.1).
    sharpness:
        How quickly accuracy saturates as loss falls.
    noise_std:
        Multiplicative evaluation noise (validation sets are finite).
    """

    def __init__(
        self,
        curve,
        initial_loss: float = 6.0,
        max_accuracy: float = 0.95,
        generalisation_gap: float = 0.05,
        sharpness: float = 2.0,
        noise_std: float = 0.004,
        seed: SeedLike = None,
    ):
        if initial_loss <= 0:
            raise ConfigurationError("initial_loss must be positive")
        if not 0 < max_accuracy <= 1:
            raise ConfigurationError("max_accuracy must be in (0, 1]")
        if not 0 <= generalisation_gap < 1:
            raise ConfigurationError("generalisation_gap must be in [0, 1)")
        if sharpness <= 0:
            raise ConfigurationError("sharpness must be positive")
        if noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        self.curve = curve
        self.initial_loss = float(initial_loss)
        self.max_accuracy = float(max_accuracy)
        self.generalisation_gap = float(generalisation_gap)
        self.sharpness = float(sharpness)
        self.noise_std = float(noise_std)
        self._rng = spawn_rng(seed, "validation-noise")

    # -- smooth values ----------------------------------------------------------
    def true_metrics(self, epoch: int) -> EpochMetrics:
        """Noise-free epoch-end metrics."""
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        loss = self.curve.loss(float(epoch))
        fit = 1.0 - loss  # how fitted the model is, in [0, 1)
        val_loss = loss * (1.0 + self.generalisation_gap * fit)
        train_acc = self.max_accuracy * (1.0 - loss**self.sharpness)
        val_acc = train_acc * (1.0 - self.generalisation_gap * fit)
        return EpochMetrics(
            epoch=int(epoch),
            train_loss=loss * self.initial_loss,
            validation_loss=val_loss * self.initial_loss,
            train_accuracy=max(train_acc, 0.0),
            validation_accuracy=max(val_acc, 0.0),
        )

    def observe(self, epoch: int) -> EpochMetrics:
        """One noisy epoch-end evaluation."""
        true = self.true_metrics(epoch)
        if self.noise_std == 0:
            return true

        def jitter(value: float) -> float:
            return float(
                value * max(1e-6, 1.0 + self._rng.normal(0.0, self.noise_std))
            )

        return EpochMetrics(
            epoch=true.epoch,
            train_loss=jitter(true.train_loss),
            validation_loss=jitter(true.validation_loss),
            train_accuracy=min(jitter(true.train_accuracy), 1.0),
            validation_accuracy=min(jitter(true.validation_accuracy), 1.0),
        )

    def history(self, epochs: int) -> List[EpochMetrics]:
        """Epoch-end evaluations for epochs ``0 .. epochs`` inclusive."""
        if epochs < 0:
            raise ConfigurationError("epochs must be non-negative")
        return [self.observe(e) for e in range(epochs + 1)]


def no_overfitting(history: Sequence[EpochMetrics], tolerance: float = 0.0) -> bool:
    """§2.1's production-model property: the validation loss never diverges.

    True when validation loss decreases alongside training loss over the
    run (the final validation loss is within *tolerance* of its minimum).
    """
    if not history:
        raise ConfigurationError("history must be non-empty")
    val = [m.validation_loss for m in history]
    return val[-1] <= min(val) * (1.0 + tolerance) + 1e-12
