"""External CSV job-trace ingestion (PAI-style schema).

Production schedulers are evaluated against real cluster traces; the
SNIPPETS.md exemplar simulator replays a PAI trace whose rows carry an
arrival instant, a duration *estimate* and a GPU demand. This module maps
that schema onto this library's :class:`~repro.workloads.job.JobSpec`:

* ``arrival`` -- submission time in seconds from trace start;
* ``duration`` -- the owner's runtime estimate on one device (seconds);
  each row is matched to the Table-1 zoo model whose single-GPU
  convergence time is nearest in log-space, then the dataset is scaled so
  the job's ground-truth single-GPU duration equals the estimate;
* ``gpus`` -- the owner's device-count request, mapped onto the static
  ``requested_workers``/``requested_ps`` pair (clamped to
  :data:`MAX_REQUESTED_TASKS`).

Optional columns: ``job_id`` (synthesised as ``csv-<row>`` when absent)
and ``mode`` (``sync``/``async``; defaults to ``sync``). Header aliases
from common trace exports are accepted (``submit_time``, ``num_gpu``,
``gpu_request``...).

Every validation error is a :class:`ConfigurationError` (a ``ValueError``)
carrying the 1-based *line number* of the offending row -- non-numeric
cells, non-positive demands and negative arrivals are rejected, never
silently clamped.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, Iterable, List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.workloads.job import JobSpec, make_job
from repro.workloads.profiles import MODEL_ZOO

#: Upper bound applied to per-role task requests derived from ``gpus``.
MAX_REQUESTED_TASKS = 16

#: Bounds on the dataset rescale used to match a row's duration estimate;
#: keeps absurd estimates from producing degenerate (or eternal) jobs.
DURATION_SCALE_RANGE = (0.005, 20.0)

#: Accepted header spellings, canonical name first.
COLUMN_ALIASES = {
    "job_id": ("job_id", "job_name", "jobid", "name", "job"),
    "arrival": ("arrival", "arrival_time", "submit_time", "submission_time"),
    "duration": ("duration", "duration_estimate", "duration_est", "runtime"),
    "gpus": ("gpus", "gpu", "num_gpu", "num_gpus", "gpu_request", "gpu_num"),
    "mode": ("mode", "training_mode"),
}

REQUIRED_COLUMNS = ("arrival", "duration", "gpus")


def _resolve_columns(fieldnames: Iterable[str]) -> Dict[str, str]:
    """Map canonical column names onto the header actually present."""
    normalized = {name.strip().lower(): name for name in fieldnames if name}
    resolved: Dict[str, str] = {}
    for canonical, aliases in COLUMN_ALIASES.items():
        for alias in aliases:
            if alias in normalized:
                resolved[canonical] = normalized[alias]
                break
    missing = [name for name in REQUIRED_COLUMNS if name not in resolved]
    if missing:
        raise ConfigurationError(
            "CSV trace header is missing required column(s): "
            f"{', '.join(missing)} (accepted aliases: "
            + "; ".join(
                f"{name}={'/'.join(COLUMN_ALIASES[name])}" for name in missing
            )
            + ")"
        )
    return resolved


def _parse_float(value: Optional[str], column: str, line: int) -> float:
    if value is None or not str(value).strip():
        raise ConfigurationError(f"CSV trace line {line}: empty {column!r} cell")
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"CSV trace line {line}: {column!r} must be a number, got {value!r}"
        ) from None
    if math.isnan(parsed) or math.isinf(parsed):
        raise ConfigurationError(
            f"CSV trace line {line}: {column!r} must be finite, got {value!r}"
        )
    return parsed


def _nearest_model(duration: float) -> str:
    """The zoo model whose single-GPU convergence time is nearest in log-space."""
    return min(
        MODEL_ZOO,
        key=lambda name: abs(
            math.log(MODEL_ZOO[name].single_gpu_training_time()) - math.log(duration)
        ),
    )


def _job_from_row(
    row: Dict[str, str], columns: Dict[str, str], line: int
) -> JobSpec:
    arrival = _parse_float(row.get(columns["arrival"]), "arrival", line)
    duration = _parse_float(row.get(columns["duration"]), "duration", line)
    gpus = _parse_float(row.get(columns["gpus"]), "gpus", line)
    if arrival < 0:
        raise ConfigurationError(
            f"CSV trace line {line}: arrival must be non-negative, got {arrival}"
        )
    if duration <= 0:
        raise ConfigurationError(
            f"CSV trace line {line}: duration must be positive, got {duration}"
        )
    if gpus <= 0 or gpus != int(gpus):
        raise ConfigurationError(
            f"CSV trace line {line}: gpus must be a positive integer, got {gpus!r}"
        )
    model = _nearest_model(duration)
    reference = MODEL_ZOO[model].single_gpu_training_time()
    lo, hi = DURATION_SCALE_RANGE
    scale = min(max(duration / reference, lo), hi)
    request = min(int(gpus), MAX_REQUESTED_TASKS)
    job_id = (row.get(columns["job_id"]) or "").strip() if "job_id" in columns else ""
    mode = (row.get(columns["mode"]) or "").strip() if "mode" in columns else ""
    if mode and mode not in ("sync", "async"):
        raise ConfigurationError(
            f"CSV trace line {line}: mode must be 'sync' or 'async', got {mode!r}"
        )
    return make_job(
        model,
        mode=mode or "sync",
        job_id=job_id or f"csv-{line}",
        dataset_scale=scale,
        arrival_time=arrival,
        requested_workers=request,
        requested_ps=request,
    )


def jobs_from_csv(source: Union[str, Iterable[str]]) -> List[JobSpec]:
    """Parse a PAI-style CSV trace into a sorted list of :class:`JobSpec`.

    *source* is the CSV text (or any iterable of lines, e.g. an open
    file). The first row must be a header naming at least the ``arrival``,
    ``duration`` and ``gpus`` columns (aliases accepted, see
    :data:`COLUMN_ALIASES`).
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        raise ConfigurationError("CSV trace is empty (no header row)")
    columns = _resolve_columns(reader.fieldnames)
    jobs: List[JobSpec] = []
    seen: Dict[str, int] = {}
    for row in reader:
        line = reader.line_num
        if not any((value or "").strip() for value in row.values()):
            continue  # blank line
        job = _job_from_row(row, columns, line)
        if job.job_id in seen:
            raise ConfigurationError(
                f"CSV trace line {line}: duplicate job_id {job.job_id!r} "
                f"(first used on line {seen[job.job_id]})"
            )
        seen[job.job_id] = line
        jobs.append(job)
    if not jobs:
        raise ConfigurationError("CSV trace contains no job rows")
    jobs.sort(key=lambda j: (j.arrival_time, j.job_id))
    return jobs


def load_csv_trace(path: str) -> List[JobSpec]:
    """Read a PAI-style CSV job trace from *path*."""
    with open(path, newline="") as handle:
        return jobs_from_csv(handle)
