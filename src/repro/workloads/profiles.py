"""The Table-1 model zoo with ground-truth training dynamics.

The paper evaluates nine representative deep-learning jobs (Table 1). We
cannot run MXNet on GPUs here, so each model is described by a
:class:`ModelProfile` carrying

* the *public* metadata reported in Table 1 (parameter count, network type,
  application domain, dataset, dataset size), and
* *ground-truth* dynamics used only by the simulation substrate: a smooth
  training-loss curve and the per-step timing constants of the paper's Eqn 2.

The scheduler under test never reads the ground truth directly -- it only
sees noisy observations produced from it, exactly like the real Optimus only
sees losses and measured speeds.

Loss-curve ground truth
-----------------------
The true normalised loss as a function of the epoch ``E`` is

    l(E) = plateau + exp_weight * exp(-exp_rate * E)
                   + tail_weight / (tail_scale * E + 1)

with ``plateau + exp_weight + tail_weight = 1`` so that ``l(0) = 1``. The
exponential term models the fast initial descent visible in Fig. 5; the
hyperbolic term models the SGD ``O(1/k)`` tail that the paper's fitting
function (Eqn 1) captures. Using a *mixture* as the generator keeps the
estimator honest: the paper's model is a good but not perfect fit, which is
what produces the early prediction errors of Fig. 6.

``tail_scale`` is calibrated at construction time (:func:`solve_tail_scale`)
so that a job with the reference convergence threshold stops after the
profile's ``target_epochs``.

Step-time ground truth
----------------------
The duration of one training step with ``p`` parameter servers and ``w``
workers follows the paper's Eqn 2; see :mod:`repro.workloads.speed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rand import spawn_rng
from repro.common.units import BYTES_PER_PARAM, MILLION

#: Reference convergence threshold used to calibrate ``tail_scale``:
#: normalised training-loss decrease per epoch below which training stops.
REFERENCE_THRESHOLD = 0.002

#: Consecutive epochs the decrease must stay below the threshold (§2.1).
DEFAULT_PATIENCE = 2

#: Hard cap when scanning for the convergence epoch.
MAX_EPOCHS = 5000

NETWORK_CNN = "CNN"
NETWORK_RNN = "RNN"


@dataclass(frozen=True)
class LossCurveTruth:
    """Parameters of the smooth ground-truth loss curve (normalised units)."""

    plateau: float
    exp_weight: float
    exp_rate: float
    tail_scale: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.plateau < 1.0:
            raise ConfigurationError("plateau must be in [0, 1)")
        if not 0.0 <= self.exp_weight <= 1.0 - self.plateau:
            raise ConfigurationError("exp_weight must be in [0, 1 - plateau]")
        if self.exp_rate <= 0 or self.tail_scale <= 0:
            raise ConfigurationError("exp_rate and tail_scale must be positive")

    @property
    def tail_weight(self) -> float:
        return 1.0 - self.plateau - self.exp_weight

    def loss(self, epoch: float) -> float:
        """Smooth normalised loss at (possibly fractional) *epoch*."""
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        return (
            self.plateau
            + self.exp_weight * math.exp(-self.exp_rate * epoch)
            + self.tail_weight / (self.tail_scale * epoch + 1.0)
        )

    def epoch_decrease(self, epoch: int) -> float:
        """Loss decrease over epoch number *epoch* (from ``epoch-1`` to ``epoch``)."""
        if epoch < 1:
            raise ConfigurationError("epoch numbers start at 1")
        return self.loss(epoch - 1) - self.loss(epoch)

    def epochs_to_converge(
        self, threshold: float, patience: int = DEFAULT_PATIENCE
    ) -> int:
        """First epoch after which the per-epoch decrease has stayed below
        *threshold* for *patience* consecutive epochs (§2.1's criterion)."""
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if patience < 1:
            raise ConfigurationError("patience must be at least 1")
        consecutive = 0
        for epoch in range(1, MAX_EPOCHS + 1):
            if self.epoch_decrease(epoch) < threshold:
                consecutive += 1
                if consecutive >= patience:
                    return epoch
            else:
                consecutive = 0
        return MAX_EPOCHS


def solve_tail_scale(
    plateau: float,
    exp_weight: float,
    exp_rate: float,
    target_epochs: int,
    threshold: float = REFERENCE_THRESHOLD,
    patience: int = DEFAULT_PATIENCE,
) -> float:
    """Find ``tail_scale`` so convergence at *threshold* lands on *target_epochs*.

    The convergence epoch is increasing in ``tail_scale`` on ``(0, a_max]``
    and decreasing afterwards, where ``a_max = 4 * threshold / tail_weight``
    maximises it; we bisect on the increasing branch. If the target exceeds
    the achievable maximum (``tail_weight / (4 * threshold)`` epochs), the
    maximiser is returned and the profile simply converges as late as the
    curve family allows.
    """
    tail_weight = 1.0 - plateau - exp_weight
    if tail_weight <= 0:
        raise ConfigurationError("plateau + exp_weight must be < 1")
    if target_epochs < 1:
        raise ConfigurationError("target_epochs must be >= 1")

    def epochs_at(scale: float) -> int:
        curve = LossCurveTruth(plateau, exp_weight, exp_rate, scale)
        return curve.epochs_to_converge(threshold, patience)

    peak_scale = 4.0 * threshold / tail_weight
    if epochs_at(peak_scale) <= target_epochs:
        return peak_scale
    lo, hi = 1e-8, peak_scale
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if epochs_at(mid) < target_epochs:
            lo = mid
        else:
            hi = mid
    return hi


@dataclass(frozen=True)
class ModelProfile:
    """Ground truth and metadata for one Table-1 training job type.

    Timing constants (all in seconds, sizes in bytes) parameterise the
    paper's Eqn 2:

    * ``forward_time_per_example`` -- per-example forward-propagation time on
      one standard container (the ``T_forward`` of Eqn 2);
    * ``backward_time`` -- fixed backward-propagation time ``T_back``;
    * ``update_time`` -- ``T_update``: time for one parameter server holding
      the *whole* model to apply one gradient set;
    * ``overhead_worker`` / ``overhead_ps`` -- the ``δ`` and ``δ'``
      per-task connection-handling coefficients.
    """

    name: str
    params_million: float
    network_type: str
    domain: str
    dataset: str
    dataset_examples: int
    per_worker_batch: int
    global_batch: int
    forward_time_per_example: float
    backward_time: float
    update_time: float
    overhead_worker: float
    overhead_ps: float
    gpu_speedup: float
    target_epochs: int
    loss: LossCurveTruth
    num_param_blocks: int
    async_concurrency: float = 0.5
    staleness_factor: float = 0.02
    #: Per-extra-worker synchronisation cost in seconds (barrier straggling,
    #: gradient aggregation): the "higher synchronization cost" of §3.2's
    #: Fig-9 discussion that makes sync speed decline at large w.
    sync_coordination: float = 0.06
    #: Per-extra-worker contention cost for asynchronous training (lock and
    #: queue contention on the parameter servers).
    async_coordination: float = 0.035
    #: Device under-utilisation floor: per-step compute time stops shrinking
    #: once the per-worker mini-batch drops below this fraction of the
    #: configured per-worker batch ("smaller mini-batch size ... may cause
    #: CPU/GPU under-utilization", §3.2).
    min_batch_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.network_type not in (NETWORK_CNN, NETWORK_RNN):
            raise ConfigurationError(f"unknown network type {self.network_type!r}")
        for attr in (
            "params_million",
            "forward_time_per_example",
            "backward_time",
            "update_time",
            "gpu_speedup",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        if self.dataset_examples <= 0 or self.num_param_blocks <= 0:
            raise ConfigurationError("dataset_examples/num_param_blocks must be positive")
        if self.per_worker_batch <= 0 or self.global_batch <= 0:
            raise ConfigurationError("batch sizes must be positive")
        if not 0 < self.async_concurrency <= 1:
            raise ConfigurationError("async_concurrency must be in (0, 1]")

    # -- derived quantities ---------------------------------------------------
    @property
    def model_size_bytes(self) -> float:
        """Total size of the model parameters (= size of one gradient set)."""
        return self.params_million * MILLION * BYTES_PER_PARAM

    def steps_per_epoch(self, mode: str, dataset_scale: float = 1.0) -> float:
        """Steps needed to process the (possibly downscaled) dataset once.

        For synchronous training each global step consumes ``global_batch``
        examples; for asynchronous training each (per-worker) step consumes
        ``per_worker_batch`` examples, and we count steps summed over
        workers, matching the speed definitions of §3.2.
        """
        examples = self.dataset_examples * float(dataset_scale)
        if examples <= 0:
            raise ConfigurationError("dataset_scale must be positive")
        per_step = self.global_batch if mode == "sync" else self.per_worker_batch
        return max(examples / per_step, 1.0)

    def single_gpu_step_time(self) -> float:
        """Step time for 1-device training (used for the Fig. 2 bench)."""
        compute = (
            self.per_worker_batch * self.forward_time_per_example + self.backward_time
        )
        return compute / self.gpu_speedup

    def single_gpu_training_time(self, threshold: float = REFERENCE_THRESHOLD) -> float:
        """Wall-clock seconds to convergence on one GPU (Fig. 2)."""
        epochs = self.loss.epochs_to_converge(threshold)
        steps = epochs * self.dataset_examples / self.per_worker_batch
        return steps * self.single_gpu_step_time()

    # -- parameter blocks -------------------------------------------------------
    def parameter_blocks(self) -> List[float]:
        """Deterministic per-layer parameter-block sizes (in parameters).

        Real DNNs have many small blocks (biases, batch-norm scales), a bulk
        of medium convolution/recurrent blocks and a few very large blocks
        (fully-connected layers or embeddings). We generate a deterministic
        pseudo-realistic mixture seeded by the model name, normalised so the
        block sizes sum to the model's exact parameter count. The largest
        block of big models exceeds MXNet's default slicing threshold of
        1e6 parameters, which is what triggers the §5.3 imbalance.
        """
        import zlib

        rng = spawn_rng(zlib.crc32(self.name.encode("utf8")), "param-blocks")
        n = self.num_param_blocks
        total = self.params_million * MILLION

        # A realistic layer mix: one large "head" block (fully-connected
        # classifier or embedding, ~8% of parameters, e.g. ResNet-50's
        # 2048x1000 fc = 2.05M of 25M), a bulk of weight blocks holding
        # ~91% of parameters, and roughly two tiny bias/batch-norm blocks
        # per weight block holding the remaining ~1%.
        n_head = 1
        n_small = max(1, (2 * n) // 3)
        n_medium = max(1, n - n_head - n_small)

        head = np.array([0.09 * total])
        medium = rng.lognormal(mean=0.0, sigma=0.7, size=n_medium)
        small = rng.lognormal(mean=0.0, sigma=0.5, size=n_small)

        blocks = np.concatenate(
            [
                head,
                medium / medium.sum() * 0.90 * total,
                small / small.sum() * 0.010 * total,
            ]
        )
        blocks = np.maximum(blocks, 1.0)
        blocks *= total / blocks.sum()
        return [float(b) for b in blocks]

    def with_overrides(self, **kwargs) -> "ModelProfile":
        """A copy of this profile with some fields replaced."""
        return replace(self, **kwargs)


def _make_profile(
    name: str,
    params_million: float,
    network_type: str,
    domain: str,
    dataset: str,
    dataset_examples: int,
    per_worker_batch: int,
    global_batch: int,
    forward_time_per_example: float,
    backward_time: float,
    target_epochs: int,
    plateau: float,
    exp_weight: float,
    exp_rate: float,
    num_param_blocks: int,
    gpu_speedup: float,
    update_time: Optional[float] = None,
) -> ModelProfile:
    tail_scale = solve_tail_scale(plateau, exp_weight, exp_rate, target_epochs)
    loss = LossCurveTruth(plateau, exp_weight, exp_rate, tail_scale)
    if update_time is None:
        # Updating parameters is a linear pass over the model: ~2 GB/s.
        update_time = params_million * MILLION * BYTES_PER_PARAM / 2e9
    return ModelProfile(
        name=name,
        params_million=params_million,
        network_type=network_type,
        domain=domain,
        dataset=dataset,
        dataset_examples=dataset_examples,
        per_worker_batch=per_worker_batch,
        global_batch=global_batch,
        forward_time_per_example=forward_time_per_example,
        backward_time=backward_time,
        update_time=update_time,
        overhead_worker=0.008,
        overhead_ps=0.01,
        gpu_speedup=gpu_speedup,
        target_epochs=target_epochs,
        loss=loss,
        num_param_blocks=num_param_blocks,
    )


def _build_zoo() -> Dict[str, ModelProfile]:
    """The nine Table-1 jobs, with dynamics calibrated to the paper's figures.

    Forward/backward times are for one 5-CPU/10-GB container (the paper's
    standard task shape, §2.3); ``gpu_speedup`` scales them to one TITAN X
    for the Fig. 2 single-GPU training-time bench.
    """
    profiles = [
        _make_profile(
            "resnext-110", 1.7, NETWORK_CNN, "image classification", "CIFAR10",
            60_000, per_worker_batch=128, global_batch=512,
            forward_time_per_example=0.010, backward_time=0.45,
            target_epochs=50, plateau=0.08, exp_weight=0.55, exp_rate=0.12,
            num_param_blocks=221, gpu_speedup=4.0,
        ),
        _make_profile(
            "resnet-50", 25.0, NETWORK_CNN, "image classification",
            "ILSVRC2012-ImageNet", 1_313_788, per_worker_batch=32,
            global_batch=256, forward_time_per_example=0.055,
            backward_time=0.80, target_epochs=55, plateau=0.10,
            exp_weight=0.45, exp_rate=0.15, num_param_blocks=157,
            gpu_speedup=8.0,
        ),
        _make_profile(
            "inception-bn", 11.3, NETWORK_CNN, "image classification", "Caltech",
            30_607, per_worker_batch=64, global_batch=256,
            forward_time_per_example=0.030, backward_time=0.60,
            target_epochs=50, plateau=0.12, exp_weight=0.50, exp_rate=0.20,
            num_param_blocks=188, gpu_speedup=8.0,
        ),
        _make_profile(
            "kaggle-ndsb", 1.4, NETWORK_CNN, "image classification",
            "Kaggle-NDSB1", 37_920, per_worker_batch=64, global_batch=256,
            forward_time_per_example=0.008, backward_time=0.25,
            target_epochs=45, plateau=0.15, exp_weight=0.45, exp_rate=0.25,
            num_param_blocks=64, gpu_speedup=15.0,
        ),
        _make_profile(
            "cnn-rand", 6.0, NETWORK_CNN, "sentence classification", "MR",
            10_662, per_worker_batch=50, global_batch=200,
            forward_time_per_example=0.003, backward_time=0.08,
            target_epochs=12, plateau=0.20, exp_weight=0.50, exp_rate=0.60,
            num_param_blocks=12, gpu_speedup=10.0,
        ),
        _make_profile(
            "dssm", 1.5, NETWORK_RNN, "word representation", "text8",
            214_288, per_worker_batch=256, global_batch=1024,
            forward_time_per_example=0.002, backward_time=0.10,
            target_epochs=20, plateau=0.18, exp_weight=0.45, exp_rate=0.40,
            num_param_blocks=10, gpu_speedup=8.0,
        ),
        _make_profile(
            "rnn-lstm", 4.7, NETWORK_RNN, "language modeling", "PTB",
            1_002_000, per_worker_batch=128, global_batch=512,
            forward_time_per_example=0.004, backward_time=0.30,
            target_epochs=40, plateau=0.25, exp_weight=0.35, exp_rate=0.20,
            num_param_blocks=14, gpu_speedup=12.0,
        ),
        _make_profile(
            "seq2seq", 9.1, NETWORK_RNN, "machine translation", "WMT17",
            1_000_000, per_worker_batch=64, global_batch=256,
            forward_time_per_example=0.012, backward_time=0.50,
            target_epochs=50, plateau=0.07, exp_weight=0.40, exp_rate=0.18,
            num_param_blocks=28, gpu_speedup=14.0,
        ),
        _make_profile(
            "deepspeech2", 38.0, NETWORK_RNN, "speech recognition",
            "LibriSpeech", 45_000, per_worker_batch=16, global_batch=128,
            forward_time_per_example=0.080, backward_time=1.20,
            target_epochs=60, plateau=0.10, exp_weight=0.40, exp_rate=0.15,
            num_param_blocks=40, gpu_speedup=20.0,
        ),
    ]
    return {profile.name: profile for profile in profiles}


#: The nine Table-1 jobs keyed by model name.
MODEL_ZOO: Dict[str, ModelProfile] = _build_zoo()


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile by name (raises on unknown names)."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise ConfigurationError(f"unknown model {name!r}; known models: {known}") from None


def zoo_names() -> Tuple[str, ...]:
    """All model names in a stable order."""
    return tuple(MODEL_ZOO)
