"""Job specifications: what a job owner submits to the cluster.

Following §2.3, the owner specifies the *shape* of each task (the resource
composition of one worker and one parameter server) plus the training mode
and a convergence threshold; the number of tasks is Optimus's decision (and a
fixed owner decision under the baseline schedulers).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.resources import ResourceVector, cpu_mem
from repro.common.errors import ConfigurationError
from repro.workloads.profiles import DEFAULT_PATIENCE, ModelProfile, get_profile
from repro.workloads.speed import validate_mode

#: The paper's standard container shape: 5 CPU cores, 10 GB memory (§2.3).
DEFAULT_WORKER_DEMAND = cpu_mem(5, 10)
DEFAULT_PS_DEMAND = cpu_mem(5, 10)

_job_counter = itertools.count()


@dataclass(frozen=True)
class JobSpec:
    """An immutable description of one submitted training job.

    Parameters
    ----------
    job_id:
        Unique identifier within an experiment.
    profile:
        The :class:`~repro.workloads.profiles.ModelProfile` being trained.
    mode:
        ``"sync"`` or ``"async"``.
    threshold:
        Convergence threshold: the job completes once the normalised
        training-loss decrease per epoch stays below this value for
        ``patience`` epochs (§2.1).
    patience:
        Number of consecutive below-threshold epochs required.
    worker_demand / ps_demand:
        Resource composition of one worker / parameter server container.
    dataset_scale:
        Multiplier on the dataset size; the paper downsizes large datasets
        so experiments fit in ~6 hours (§6.1).
    arrival_time:
        Submission time in seconds from experiment start.
    requested_workers / requested_ps:
        The owner's *static* request, used by schedulers that do not resize
        jobs (FIFO) and as an upper-bound hint elsewhere.
    """

    job_id: str
    profile: ModelProfile
    mode: str
    threshold: float = 0.002
    patience: int = DEFAULT_PATIENCE
    worker_demand: ResourceVector = field(default=DEFAULT_WORKER_DEMAND)
    ps_demand: ResourceVector = field(default=DEFAULT_PS_DEMAND)
    dataset_scale: float = 1.0
    arrival_time: float = 0.0
    requested_workers: int = 4
    requested_ps: int = 4

    def __post_init__(self) -> None:
        validate_mode(self.mode)
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if self.patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if self.dataset_scale <= 0:
            raise ConfigurationError("dataset_scale must be positive")
        if self.arrival_time < 0:
            raise ConfigurationError("arrival_time must be non-negative")
        if self.requested_workers < 1 or self.requested_ps < 1:
            raise ConfigurationError("requested task counts must be >= 1")
        if self.worker_demand.is_zero() or self.ps_demand.is_zero():
            raise ConfigurationError("task demands must be non-empty")

    # -- derived ----------------------------------------------------------------
    @property
    def model_name(self) -> str:
        return self.profile.name

    def steps_per_epoch(self) -> float:
        return self.profile.steps_per_epoch(self.mode, self.dataset_scale)

    def total_steps_to_converge(self) -> float:
        """Ground-truth steps until the §2.1 stopping rule fires."""
        epochs = self.profile.loss.epochs_to_converge(self.threshold, self.patience)
        return epochs * self.steps_per_epoch()

    def task_demand(self, workers: int, ps: int) -> ResourceVector:
        """Aggregate demand of a ``(workers, ps)`` allocation."""
        return self.worker_demand * workers + self.ps_demand * ps


def make_job(
    model: str,
    mode: str = "sync",
    job_id: Optional[str] = None,
    **kwargs,
) -> JobSpec:
    """Convenience constructor looking the model up in the zoo.

    Examples
    --------
    >>> job = make_job("resnet-50", mode="async", threshold=0.003)
    >>> job.profile.params_million
    25.0
    """
    profile = get_profile(model)
    if job_id is None:
        job_id = f"{model}-{next(_job_counter)}"
    return JobSpec(job_id=job_id, profile=profile, mode=mode, **kwargs)
