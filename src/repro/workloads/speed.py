"""Ground-truth step-time and training-speed model (the paper's Eqn 2).

The duration of one training step on a worker, with ``p`` parameter servers
and ``w`` workers, is modelled exactly as in §3.2:

    T = m * T_forward + T_back                       (compute)
        + 2 * (S/p) / (B / w'_p)                     (push + pull transfer)
        + T_update * w'_p / p                        (parameter update)
        + delta * w + delta' * p                     (connection overhead)

where ``m`` is the per-worker mini-batch, ``S`` the model size, ``B`` the
per-container bandwidth and ``w'_p`` the number of workers concurrently
hitting one parameter server (= ``w`` for synchronous training, a fraction of
``w`` for asynchronous training).

Two refinements used by the evaluation:

* **Placement awareness** (§4.2, Theorem 1): when the per-server task layout
  is known, the symmetric transfer term is replaced by the maximum
  cross-server transfer time -- co-located worker/PS pairs exchange data for
  free, exactly like the Fig. 10 accounting.
* **Parameter-server imbalance** (§5.3): an ``imbalance`` factor
  ``rho_max * p >= 1`` scales the per-PS shard; a perfectly balanced
  partition (the PAA goal) has factor 1, MXNet's default partitioner yields
  larger factors and thus slower steps.

This is *ground truth*: the scheduler never calls it directly but fits the
parametric Eqn-3/Eqn-4 speed functions to noisy measurements of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rand import SeedLike, spawn_rng
from repro.workloads.profiles import ModelProfile

MODE_SYNC = "sync"
MODE_ASYNC = "async"
MODES = (MODE_SYNC, MODE_ASYNC)

#: server -> (num_workers, num_ps) for one job.
PlacementLayout = Mapping[str, Tuple[int, int]]


def validate_mode(mode: str) -> str:
    if mode not in MODES:
        raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
    return mode


@dataclass(frozen=True)
class StepBreakdown:
    """The four Eqn-2 components of one step, in seconds."""

    compute: float
    transfer: float
    update: float
    overhead: float

    @property
    def total(self) -> float:
        return self.compute + self.transfer + self.update + self.overhead


class StepTimeModel:
    """Ground-truth step time / training speed for one job.

    Parameters
    ----------
    profile:
        The model being trained.
    mode:
        ``"sync"`` or ``"async"``.
    bandwidth:
        Per-container network bandwidth in bytes/second (the ``B`` of Eqn 2).
    """

    def __init__(
        self, profile: ModelProfile, mode: str, bandwidth: float = 125e6
    ):
        self.profile = profile
        self.mode = validate_mode(mode)
        if bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.bandwidth = float(bandwidth)

    # -- Eqn-2 ingredients ------------------------------------------------------
    def mini_batch(self, w: int) -> float:
        """Per-worker mini-batch size ``m``.

        Synchronous training keeps the *global* batch fixed no matter how
        many workers run (§3.2), so ``m = M / w``; asynchronous workers each
        use the configured per-worker batch.
        """
        self._validate_tasks(1, w)
        if self.mode == MODE_SYNC:
            return self.profile.global_batch / w
        return float(self.profile.per_worker_batch)

    def concurrent_pushers(self, w: int) -> float:
        """``w'_p``: workers concurrently communicating with one PS."""
        if self.mode == MODE_SYNC:
            return float(w)
        return max(1.0, self.profile.async_concurrency * w)

    def breakdown(
        self,
        p: int,
        w: int,
        placement: Optional[PlacementLayout] = None,
        imbalance: float = 1.0,
        bandwidths: Optional[Mapping[str, float]] = None,
    ) -> StepBreakdown:
        """All Eqn-2 components for a ``(p, w)`` configuration.

        ``bandwidths`` optionally maps server names to the per-task NIC
        share on that server (the server NIC divided among all tasks it
        hosts, across jobs) -- placement-aware runs use it to model the
        1 GbE contention of the paper's testbed.
        """
        self._validate_tasks(p, w)
        if imbalance < 1.0 - 1e-9:
            raise ConfigurationError("imbalance factor must be >= 1")
        prof = self.profile
        # Device under-utilisation floor: below min_batch_fraction of the
        # configured per-worker batch, per-step compute stops shrinking.
        batch_floor = prof.per_worker_batch * prof.min_batch_fraction
        effective_batch = max(self.mini_batch(w), batch_floor)
        compute = (
            effective_batch * prof.forward_time_per_example + prof.backward_time
        )
        shard = prof.model_size_bytes / p * imbalance
        pushers = self.concurrent_pushers(w)
        if placement is None:
            transfer = 2.0 * shard * pushers / self.bandwidth
        else:
            transfer = self._placement_transfer(p, w, placement, shard, bandwidths)
        update = prof.update_time * pushers * imbalance / p
        coordination = (
            prof.sync_coordination if self.mode == MODE_SYNC
            else prof.async_coordination
        )
        overhead = (
            prof.overhead_worker * w
            + prof.overhead_ps * p
            + coordination * (w - 1)
        )
        return StepBreakdown(compute, transfer, update, overhead)

    def _placement_transfer(
        self,
        p: int,
        w: int,
        placement: PlacementLayout,
        shard: float,
        bandwidths: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Max cross-server transfer time given a task layout (Fig. 10)."""
        total_w = sum(nw for nw, _ in placement.values())
        total_p = sum(np_ for _, np_ in placement.values())
        if total_w != w or total_p != p:
            raise ConfigurationError(
                f"placement covers ({total_w} workers, {total_p} ps), "
                f"expected ({w}, {p})"
            )
        # Fraction of workers concurrently active (1 for sync).
        concurrency = self.concurrent_pushers(w) / w
        worst = 0.0
        per_ps_plain = self.profile.model_size_bytes / p
        for server, (nw, np_) in placement.items():
            bandwidth = self.bandwidth
            if bandwidths is not None:
                bandwidth = max(bandwidths.get(server, self.bandwidth), 1.0)
            if np_ > 0:
                # Each PS here serves (w - nw) remote workers through its NIC.
                ps_time = 2.0 * shard * (w - nw) * concurrency / bandwidth
                worst = max(worst, ps_time)
            if nw > 0:
                # Each worker here exchanges its shard with (p - np_) remote PS.
                worker_time = 2.0 * per_ps_plain * (p - np_) / bandwidth
                worst = max(worst, worker_time)
        return worst

    # -- public speed interface ---------------------------------------------------
    def step_time(
        self,
        p: int,
        w: int,
        placement: Optional[PlacementLayout] = None,
        imbalance: float = 1.0,
        bandwidths: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Seconds per training step (one worker's step)."""
        return self.breakdown(p, w, placement, imbalance, bandwidths).total

    def speed(
        self,
        p: int,
        w: int,
        placement: Optional[PlacementLayout] = None,
        imbalance: float = 1.0,
        bandwidths: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Training speed in steps/second (§3.2's definition).

        Asynchronous: total steps completed by all workers per second,
        ``w / T``. Synchronous: global steps per second, ``1 / T``.
        """
        t = self.step_time(p, w, placement, imbalance, bandwidths)
        if self.mode == MODE_ASYNC:
            return w / t
        return 1.0 / t

    def measured_speed(
        self,
        p: int,
        w: int,
        seed: SeedLike = None,
        noise_std: float = 0.03,
        placement: Optional[PlacementLayout] = None,
        imbalance: float = 1.0,
    ) -> float:
        """A noisy speed measurement, as a short profiling run would produce."""
        rng = spawn_rng(seed, "speed-noise")
        true = self.speed(p, w, placement, imbalance)
        if noise_std <= 0:
            return true
        return true * max(0.05, 1.0 + rng.normal(0.0, noise_std))

    def examples_per_second(self, p: int, w: int) -> float:
        """Throughput in training examples per second."""
        if self.mode == MODE_SYNC:
            return self.speed(p, w) * self.profile.global_batch
        return self.speed(p, w) * self.profile.per_worker_batch

    @staticmethod
    def _validate_tasks(p: int, w: int) -> None:
        if p < 1 or w < 1:
            raise ConfigurationError(
                f"need at least 1 ps and 1 worker, got p={p}, w={w}"
            )
        if int(p) != p or int(w) != w:
            raise ConfigurationError("p and w must be integers")


def straggler_step_time(
    model: StepTimeModel, p: int, w: int, slowdown: float, imbalance: float = 1.0
) -> float:
    """Step time when one worker runs ``slowdown``-times slower (§5.2).

    Synchronous training waits for the slowest worker, so the straggler's
    extra compute time is added in full; asynchronous training only loses the
    straggler's own throughput (handled by the caller reducing aggregate
    speed).
    """
    if slowdown < 1.0:
        raise ConfigurationError("slowdown must be >= 1")
    base = model.breakdown(p, w, imbalance=imbalance)
    if model.mode == MODE_SYNC:
        return base.total + (slowdown - 1.0) * base.compute
    return base.total
