"""Job arrival processes used by the evaluation (§6.1, §6.3).

Three generators, all returning a list of :class:`~repro.workloads.job.JobSpec`
with arrival times filled in:

* :func:`uniform_arrivals` -- the paper's default: arrival instants drawn
  uniformly at random in ``[0, window]`` (12 000 s in §6.1).
* :func:`poisson_arrivals` -- a Poisson process with a given rate per
  scheduling interval (Fig. 17a uses 3 arrivals / 10 min).
* :func:`google_trace_arrivals` -- a synthetic stand-in for the Google
  cluster trace (Fig. 17b): a background Poisson process overlaid with a few
  high-rate spikes, reproducing the trace's bursty "many job arrival spikes"
  character that the paper calls out.
* :func:`diurnal_arrivals` -- a non-homogeneous process whose intensity
  follows a day/night cycle (production clusters see most submissions
  during working hours); used by the long-horizon soak scenarios.
* :func:`bursty_arrivals` -- a uniform background with explicit,
  caller-scheduled spikes: the controllable version of the Google-trace
  shape, used by the soak engine's arrival-spike chaos.

Each arrival picks a random Table-1 model, a random training mode (unless
pinned) and a convergence threshold uniform in the configured range,
mirroring §6.1's workload recipe. Large models get their datasets downscaled
like the paper does, so every job finishes within a simulated workday.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rand import SeedLike, spawn_rng
from repro.workloads.job import JobSpec, make_job
from repro.workloads.profiles import MODEL_ZOO
from repro.workloads.speed import MODE_ASYNC, MODE_SYNC, validate_mode

#: Dataset downscaling applied to long-running models (§6.1 does the same
#: "so that the experiment can be finished in a reasonable amount of time").
DATASET_DOWNSCALE = {
    "resnet-50": 0.008,
    "deepspeech2": 0.05,
    "seq2seq": 0.04,
    "rnn-lstm": 0.05,
    "resnext-110": 0.15,
    "inception-bn": 0.5,
}

#: Paper's convergence-threshold range ("between 1% and 5%"), expressed on
#: the normalised per-epoch loss-decrease scale used by this library.
THRESHOLD_RANGE = (0.001, 0.005)

#: Owner-specified static task counts (workers = parameter servers, the 1:1
#: ratio §6.1 pins for the baselines), sized to each model's scaling sweet
#: spot -- job owners of production models know roughly how their jobs
#: scale. Schedulers that cannot resize jobs (Tetris, FIFO) run with these.
STATIC_REQUESTS = {
    "resnext-110": 4,
    "resnet-50": 8,
    "inception-bn": 6,
    "kaggle-ndsb": 4,
    "cnn-rand": 2,
    "dssm": 2,
    "rnn-lstm": 4,
    "seq2seq": 6,
    "deepspeech2": 6,
}


def _spawn_job(
    index: int,
    arrival_time: float,
    rng: np.random.Generator,
    models: Sequence[str],
    mode: Optional[str],
    threshold_range: tuple,
) -> JobSpec:
    model = str(rng.choice(list(models)))
    job_mode = mode or (MODE_SYNC if rng.random() < 0.5 else MODE_ASYNC)
    lo, hi = threshold_range
    threshold = float(rng.uniform(lo, hi))
    request = STATIC_REQUESTS.get(model, 4)
    return make_job(
        model,
        mode=job_mode,
        job_id=f"job-{index:04d}-{model}",
        threshold=threshold,
        dataset_scale=DATASET_DOWNSCALE.get(model, 1.0),
        arrival_time=float(arrival_time),
        requested_workers=request,
        requested_ps=request,
    )


def _build_jobs(
    times: Sequence[float],
    seed: SeedLike,
    models: Optional[Sequence[str]],
    mode: Optional[str],
    threshold_range: tuple,
) -> List[JobSpec]:
    if mode is not None:
        validate_mode(mode)
    models = tuple(models) if models else tuple(MODEL_ZOO)
    rng = spawn_rng(seed, "job-mix")
    jobs = [
        _spawn_job(i, t, rng, models, mode, threshold_range)
        for i, t in enumerate(sorted(float(t) for t in times))
    ]
    return jobs


def uniform_arrivals(
    num_jobs: int = 9,
    window: float = 12_000.0,
    seed: SeedLike = None,
    models: Optional[Sequence[str]] = None,
    mode: Optional[str] = None,
    threshold_range: tuple = THRESHOLD_RANGE,
) -> List[JobSpec]:
    """Arrival instants uniform in ``[0, window]`` (the paper's default)."""
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if window < 0:
        raise ConfigurationError("window must be non-negative")
    rng = spawn_rng(seed, "uniform-arrivals")
    times = rng.uniform(0.0, window, size=num_jobs)
    return _build_jobs(times, seed, models, mode, threshold_range)


def poisson_arrivals(
    rate_per_interval: float = 3.0,
    interval: float = 600.0,
    duration: float = 12_000.0,
    seed: SeedLike = None,
    models: Optional[Sequence[str]] = None,
    mode: Optional[str] = None,
    threshold_range: tuple = THRESHOLD_RANGE,
) -> List[JobSpec]:
    """A homogeneous Poisson process (Fig. 17a's workload)."""
    if rate_per_interval <= 0 or interval <= 0 or duration <= 0:
        raise ConfigurationError("rate, interval and duration must be positive")
    rng = spawn_rng(seed, "poisson-arrivals")
    rate_per_second = rate_per_interval / interval
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_second)
        if t >= duration:
            break
        times.append(t)
    if not times:  # degenerate draw; guarantee at least one job
        times.append(float(rng.uniform(0, duration)))
    return _build_jobs(times, seed, models, mode, threshold_range)


def google_trace_arrivals(
    num_jobs: int = 30,
    duration: float = 25_200.0,
    num_spikes: int = 4,
    spike_fraction: float = 0.6,
    seed: SeedLike = None,
    models: Optional[Sequence[str]] = None,
    mode: Optional[str] = None,
    threshold_range: tuple = THRESHOLD_RANGE,
) -> List[JobSpec]:
    """Synthetic Google-trace-like arrivals (Fig. 17b).

    ``spike_fraction`` of the jobs arrive inside ``num_spikes`` short bursts
    (2 minutes each) at random instants; the rest arrive as a background
    Poisson-like uniform scatter. The default 7-hour duration matches the
    trace window the paper extracted.
    """
    if num_jobs < 1 or num_spikes < 1:
        raise ConfigurationError("num_jobs and num_spikes must be >= 1")
    if not 0.0 <= spike_fraction <= 1.0:
        raise ConfigurationError("spike_fraction must be in [0, 1]")
    rng = spawn_rng(seed, "google-arrivals")
    n_spiky = int(round(num_jobs * spike_fraction))
    n_background = num_jobs - n_spiky
    spike_centers = rng.uniform(0.0, duration, size=num_spikes)
    times: List[float] = []
    for i in range(n_spiky):
        center = spike_centers[i % num_spikes]
        times.append(float(np.clip(center + rng.uniform(0, 120.0), 0, duration)))
    times.extend(float(t) for t in rng.uniform(0.0, duration, size=n_background))
    return _build_jobs(times, seed, models, mode, threshold_range)


def diurnal_arrivals(
    num_jobs: int = 24,
    duration: float = 86_400.0,
    period: float = 86_400.0,
    peak_time: float = 0.5,
    amplitude: float = 0.8,
    seed: SeedLike = None,
    models: Optional[Sequence[str]] = None,
    mode: Optional[str] = None,
    threshold_range: tuple = THRESHOLD_RANGE,
) -> List[JobSpec]:
    """A day/night arrival cycle (non-homogeneous, rejection-sampled).

    The instantaneous arrival intensity is ``1 + amplitude * cos(2pi *
    (t - peak) / period)`` with ``peak = peak_time * period`` -- i.e.
    submissions cluster around ``peak_time`` within each period (0.5 =
    midday of a 24 h period). ``amplitude`` in ``[0, 1)`` sets how quiet
    the troughs get; ``0`` degenerates to :func:`uniform_arrivals`.
    Exactly ``num_jobs`` jobs are produced, all inside ``[0, duration]``.
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if duration <= 0 or period <= 0:
        raise ConfigurationError("duration and period must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError("amplitude must be in [0, 1)")
    if not 0.0 <= peak_time <= 1.0:
        raise ConfigurationError("peak_time must be in [0, 1]")
    rng = spawn_rng(seed, "diurnal-arrivals")
    peak = peak_time * period
    times: List[float] = []
    # Thinning: uniform candidates accepted proportionally to intensity.
    # Acceptance probability is >= (1 - amplitude) / (1 + amplitude) > 0,
    # so the loop terminates; the attempt cap is a belt-and-braces bound
    # for pathological amplitude draws under property testing.
    attempts = 0
    max_attempts = 1000 * num_jobs
    while len(times) < num_jobs and attempts < max_attempts:
        attempts += 1
        t = float(rng.uniform(0.0, duration))
        intensity = 1.0 + amplitude * math.cos(2.0 * math.pi * (t - peak) / period)
        if rng.random() * (1.0 + amplitude) <= intensity:
            times.append(t)
    while len(times) < num_jobs:  # cap hit: fill uniformly, stay bounded
        times.append(float(rng.uniform(0.0, duration)))
    return _build_jobs(times, seed, models, mode, threshold_range)


def bursty_arrivals(
    num_jobs: int = 20,
    duration: float = 12_000.0,
    spike_times: Optional[Sequence[float]] = None,
    spike_width: float = 600.0,
    background_fraction: float = 0.4,
    num_spikes: int = 3,
    seed: SeedLike = None,
    models: Optional[Sequence[str]] = None,
    mode: Optional[str] = None,
    threshold_range: tuple = THRESHOLD_RANGE,
) -> List[JobSpec]:
    """Uniform background plus explicit arrival spikes.

    Unlike :func:`google_trace_arrivals`, the spike instants are under
    caller control: ``spike_times`` names them exactly (clamped into the
    horizon), otherwise ``num_spikes`` centres are drawn uniformly.
    ``background_fraction`` of the jobs arrive uniformly over the whole
    window; the remainder are dealt round-robin across the spikes, each
    arriving within ``spike_width`` seconds after its spike centre.
    ``background_fraction=0`` produces a pure spike train -- the soak
    engine's "arrival spike" chaos ingredient.
    """
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if spike_width <= 0:
        raise ConfigurationError("spike_width must be positive")
    if not 0.0 <= background_fraction <= 1.0:
        raise ConfigurationError("background_fraction must be in [0, 1]")
    rng = spawn_rng(seed, "bursty-arrivals")
    if spike_times is None:
        if num_spikes < 1:
            raise ConfigurationError("num_spikes must be >= 1")
        centers = [float(t) for t in rng.uniform(0.0, duration, size=num_spikes)]
    else:
        if not spike_times:
            raise ConfigurationError("spike_times must not be empty")
        centers = [min(max(float(t), 0.0), duration) for t in spike_times]
    n_background = int(round(num_jobs * background_fraction))
    n_spiky = num_jobs - n_background
    times: List[float] = [
        float(t) for t in rng.uniform(0.0, duration, size=n_background)
    ]
    for i in range(n_spiky):
        center = centers[i % len(centers)]
        times.append(
            float(np.clip(center + rng.uniform(0.0, spike_width), 0.0, duration))
        )
    return _build_jobs(times, seed, models, mode, threshold_range)
