"""Workload substrate: the Table-1 model zoo and its ground-truth dynamics.

Everything the simulated cluster "runs" comes from here: model profiles with
calibrated loss curves and Eqn-2 timing constants, noisy loss/speed
observation generators, job specifications and arrival processes.
"""

from repro.workloads.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    google_trace_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.csvtrace import jobs_from_csv, load_csv_trace
from repro.workloads.job import (
    DEFAULT_PS_DEMAND,
    DEFAULT_WORKER_DEMAND,
    JobSpec,
    make_job,
)
from repro.workloads.loss import LossEmitter, LossObservation, epoch_averaged
from repro.workloads.lr_schedule import SteppedLossCurve, with_lr_drops
from repro.workloads.profiles import (
    MODEL_ZOO,
    LossCurveTruth,
    ModelProfile,
    get_profile,
    solve_tail_scale,
    zoo_names,
)
from repro.workloads.speed import (
    MODE_ASYNC,
    MODE_SYNC,
    MODES,
    StepBreakdown,
    StepTimeModel,
    straggler_step_time,
    validate_mode,
)
from repro.workloads.trace import (
    job_from_dict,
    job_to_dict,
    jobs_from_json,
    jobs_to_json,
    load_trace,
    save_trace,
)
from repro.workloads.valmetrics import (
    EpochMetrics,
    ValidationEmitter,
    no_overfitting,
)

__all__ = [
    "MODEL_ZOO",
    "ModelProfile",
    "LossCurveTruth",
    "get_profile",
    "zoo_names",
    "solve_tail_scale",
    "LossEmitter",
    "LossObservation",
    "epoch_averaged",
    "SteppedLossCurve",
    "with_lr_drops",
    "job_to_dict",
    "job_from_dict",
    "jobs_to_json",
    "jobs_from_json",
    "save_trace",
    "load_trace",
    "EpochMetrics",
    "ValidationEmitter",
    "no_overfitting",
    "StepTimeModel",
    "StepBreakdown",
    "straggler_step_time",
    "JobSpec",
    "make_job",
    "MODE_SYNC",
    "MODE_ASYNC",
    "MODES",
    "validate_mode",
    "DEFAULT_WORKER_DEMAND",
    "DEFAULT_PS_DEMAND",
    "uniform_arrivals",
    "poisson_arrivals",
    "google_trace_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
    "jobs_from_csv",
    "load_csv_trace",
]
