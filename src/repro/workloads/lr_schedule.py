"""Loss curves with learning-rate drops (§7 "Convergence estimation").

Production training schedules often cut the learning rate at predefined
epochs (e.g. ResNet training multiplies it by 0.1), which makes the loss
curve *piecewise*: each cut triggers a fresh fast descent towards a lower
plateau that the single Eqn-1 family cannot describe. The paper's proposed
remedy is to "treat the model training after learning rate adjustment as a
new training job and restart online fitting" -- implemented on the
estimator side by
:class:`repro.core.convergence.ConvergenceEstimator`'s ``reset_on_drop``
mode.

This module provides the matching ground truth: a
:class:`SteppedLossCurve` gluing per-phase
:class:`~repro.workloads.profiles.LossCurveTruth` segments together. It
duck-types the curve interface the emitter and the simulator use
(``loss`` / ``epoch_decrease`` / ``epochs_to_converge``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.workloads.profiles import DEFAULT_PATIENCE, MAX_EPOCHS, LossCurveTruth


@dataclass(frozen=True)
class SteppedLossCurve:
    """A piecewise loss curve: one segment per learning-rate phase.

    ``segments`` is ``[(start_epoch, curve), ...]`` with the first start at
    0 and strictly ascending starts. Within segment ``i`` the loss is the
    segment-entry value times the segment curve's own (normalised) decay:

        l(E) = v_i * curve_i.loss(E - start_i)

    so the overall curve is continuous at the phase boundary and then drops
    *faster* than the old tail would -- exactly the Fig-1-style kink a
    learning-rate cut produces.
    """

    segments: Tuple[Tuple[float, LossCurveTruth], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("need at least one segment")
        starts = [start for start, _ in self.segments]
        if starts[0] != 0:
            raise ConfigurationError("the first segment must start at epoch 0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ConfigurationError("segment starts must be strictly ascending")

    def _segment_entries(self) -> List[Tuple[float, float, LossCurveTruth]]:
        """(start, entry_value, curve) per segment."""
        entries = []
        value = 1.0
        for i, (start, curve) in enumerate(self.segments):
            entries.append((start, value, curve))
            if i + 1 < len(self.segments):
                next_start = self.segments[i + 1][0]
                value = value * curve.loss(next_start - start)
        return entries

    def loss(self, epoch: float) -> float:
        """Normalised loss at (possibly fractional) *epoch* (l(0) = 1)."""
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        chosen = None
        for start, value, curve in self._segment_entries():
            if epoch >= start:
                chosen = (start, value, curve)
            else:
                break
        assert chosen is not None
        start, value, curve = chosen
        return value * curve.loss(epoch - start)

    def epoch_decrease(self, epoch: int) -> float:
        if epoch < 1:
            raise ConfigurationError("epoch numbers start at 1")
        return self.loss(epoch - 1) - self.loss(epoch)

    def epochs_to_converge(
        self, threshold: float, patience: int = DEFAULT_PATIENCE
    ) -> int:
        """§2.1's stopping rule evaluated on the piecewise curve.

        A learning-rate drop re-arms the rule: the post-drop descent resets
        the below-threshold streak, so convergence is correctly deferred
        past the drop.
        """
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if patience < 1:
            raise ConfigurationError("patience must be at least 1")
        consecutive = 0
        for epoch in range(1, MAX_EPOCHS + 1):
            if self.epoch_decrease(epoch) < threshold:
                consecutive += 1
                if consecutive >= patience:
                    return epoch
            else:
                consecutive = 0
        return MAX_EPOCHS


def with_lr_drops(
    base: LossCurveTruth,
    drop_epochs: Sequence[float],
    descent_fraction: float = 0.5,
    exp_rate: float = 0.5,
) -> SteppedLossCurve:
    """Attach standard learning-rate drops to a base curve.

    Each drop at epoch ``d`` starts a fresh phase whose loss decays (in
    relative terms) by ``descent_fraction`` towards its new plateau with a
    fast exponential of rate ``exp_rate``, modelling the sharp descent a
    0.1x learning-rate cut produces.
    """
    if not 0 < descent_fraction < 1:
        raise ConfigurationError("descent_fraction must be in (0, 1)")
    segments: List[Tuple[float, LossCurveTruth]] = [(0.0, base)]
    for drop in sorted(float(d) for d in drop_epochs):
        if drop <= 0:
            raise ConfigurationError("drop epochs must be positive")
        phase = LossCurveTruth(
            plateau=1.0 - descent_fraction,
            exp_weight=descent_fraction * 0.8,
            exp_rate=exp_rate,
            tail_scale=base.tail_scale,
        )
        segments.append((drop, phase))
    return SteppedLossCurve(segments=tuple(segments))
