"""Ground-truth loss emission: what a real training job would report.

The estimator side of the library (:mod:`repro.fitting`,
:mod:`repro.core.convergence`) consumes ``(step, loss)`` observations. This
module produces such observations from a profile's smooth
:class:`~repro.workloads.profiles.LossCurveTruth`, with

* multiplicative measurement noise (mini-batch losses are noisy),
* occasional *outlier spikes* (e.g. a bad mini-batch or a restarted worker),
  which the paper's preprocessing (§3.1) must remove, and
* un-normalised raw values (the scheduler normalises by the max observed
  loss itself, mirroring §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rand import SeedLike, spawn_rng
from repro.workloads.profiles import LossCurveTruth


@dataclass(frozen=True)
class LossObservation:
    """One training-loss report: global step number and raw loss value."""

    step: int
    loss: float


class LossEmitter:
    """Streams noisy loss observations for one job.

    Parameters
    ----------
    curve:
        The smooth ground-truth loss curve (normalised units).
    steps_per_epoch:
        Conversion between the step counter and the curve's epoch axis.
    initial_loss:
        Raw loss scale; the emitted value is ``initial_loss * l(E) * noise``.
    noise_std:
        Standard deviation of the multiplicative Gaussian noise.
    outlier_rate:
        Probability that any observation is replaced by an outlier spike.
    seed:
        Anything accepted by :func:`repro.common.rand.spawn_rng`.
    """

    def __init__(
        self,
        curve: LossCurveTruth,
        steps_per_epoch: float,
        initial_loss: float = 6.0,
        noise_std: float = 0.015,
        outlier_rate: float = 0.01,
        seed: SeedLike = None,
    ):
        if steps_per_epoch <= 0:
            raise ConfigurationError("steps_per_epoch must be positive")
        if initial_loss <= 0:
            raise ConfigurationError("initial_loss must be positive")
        if noise_std < 0 or not 0 <= outlier_rate <= 1:
            raise ConfigurationError("invalid noise parameters")
        self.curve = curve
        self.steps_per_epoch = float(steps_per_epoch)
        self.initial_loss = float(initial_loss)
        self.noise_std = float(noise_std)
        self.outlier_rate = float(outlier_rate)
        self._rng = spawn_rng(seed, "loss-noise")

    def true_loss(self, step: float) -> float:
        """Smooth raw loss at a (possibly fractional) step count."""
        return self.initial_loss * self.curve.loss(step / self.steps_per_epoch)

    def observe(self, step: int) -> LossObservation:
        """One noisy raw-loss observation at *step*."""
        value = self.true_loss(step)
        if self.outlier_rate > 0 and self._rng.random() < self.outlier_rate:
            # A spike: between 1.5x and 4x the true loss, as happens when a
            # worker restarts or hits a pathological mini-batch.
            value *= 1.5 + 2.5 * self._rng.random()
        elif self.noise_std > 0:
            value *= max(1e-3, 1.0 + self._rng.normal(0.0, self.noise_std))
        return LossObservation(step=int(step), loss=float(value))

    def observe_range(
        self, start_step: int, end_step: int, stride: int = 1
    ) -> List[LossObservation]:
        """Observations for every ``stride``-th step in ``[start, end)``."""
        if stride < 1:
            raise ConfigurationError("stride must be >= 1")
        return [self.observe(step) for step in range(start_step, end_step, stride)]

    def stream(self, stride: int = 1) -> Iterator[LossObservation]:
        """An endless observation stream starting at step 0."""
        step = 0
        while True:
            yield self.observe(step)
            step += stride


def epoch_averaged(
    observations: Sequence[LossObservation], steps_per_epoch: float
) -> List[LossObservation]:
    """Average raw observations into one data point per epoch.

    §3.1 suggests averaging all losses in an epoch into a single point when
    jobs need hundreds of thousands of steps; the returned observations are
    stamped with the epoch's last step number.
    """
    if steps_per_epoch <= 0:
        raise ConfigurationError("steps_per_epoch must be positive")
    buckets: dict = {}
    for obs in observations:
        buckets.setdefault(int(obs.step // steps_per_epoch), []).append(obs)
    averaged = []
    for epoch in sorted(buckets):
        group = buckets[epoch]
        last_step = max(o.step for o in group)
        mean_loss = float(np.mean([o.loss for o in group]))
        averaged.append(LossObservation(step=last_step, loss=mean_loss))
    return averaged
