"""Cluster substrate: resource vectors, servers and cluster bookkeeping.

This package knows nothing about deep learning; it provides the capacity
accounting that the schedulers and the simulator are built on.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.resources import (
    BANDWIDTH,
    CPU,
    GPU,
    MEMORY,
    ZERO,
    ResourceVector,
    cpu_mem,
)
from repro.cluster.server import ROLE_PS, ROLE_WORKER, Server, TaskKey

__all__ = [
    "Cluster",
    "Server",
    "ResourceVector",
    "cpu_mem",
    "TaskKey",
    "ROLE_PS",
    "ROLE_WORKER",
    "CPU",
    "MEMORY",
    "GPU",
    "BANDWIDTH",
    "ZERO",
]
