"""Multi-dimensional resource vectors.

Deep-learning tasks (workers and parameter servers) occupy several resource
types at once -- CPU cores, memory, possibly GPUs and network bandwidth. The
schedulers in this library reason about *dominant resources* in the DRF sense
(Ghodsi et al., NSDI '11), so the vector type below knows how to compute a
dominant share against a capacity vector.

The set of resource types is open-ended: a :class:`ResourceVector` is a
mapping from type name to a non-negative float amount, with missing types
treated as zero. Vectors are immutable; arithmetic returns new vectors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Conventional resource-type names used by the built-in workloads.
CPU = "cpu"
MEMORY = "memory"
GPU = "gpu"
BANDWIDTH = "bandwidth"

_EPS = 1e-9


class ResourceVector(Mapping[str, float]):
    """An immutable non-negative vector over named resource types.

    Parameters
    ----------
    amounts:
        Mapping from resource-type name to amount. Zero entries are dropped
        so two vectors that differ only in explicit zeros compare equal.

    Examples
    --------
    >>> demand = ResourceVector({"cpu": 4, "memory": 8})
    >>> capacity = ResourceVector({"cpu": 16, "memory": 64})
    >>> (demand * 2).fits_within(capacity)
    True
    >>> demand.dominant_share(capacity)
    0.25
    """

    __slots__ = ("_amounts",)

    def __init__(self, amounts: Optional[Mapping[str, float]] = None):
        cleaned: Dict[str, float] = {}
        for name, value in (amounts or {}).items():
            value = float(value)
            if value < -_EPS:
                raise ConfigurationError(
                    f"resource {name!r} amount must be non-negative, got {value}"
                )
            if value > _EPS:
                cleaned[str(name)] = value
        self._amounts = cleaned

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, key: str) -> float:
        return self._amounts.get(key, 0.0)

    def get(self, key: str, default: float = 0.0) -> float:
        return self._amounts.get(key, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._amounts)

    def __len__(self) -> int:
        return len(self._amounts)

    def __contains__(self, key: object) -> bool:
        return key in self._amounts

    def items(self) -> Iterable[Tuple[str, float]]:
        return self._amounts.items()

    def types(self) -> Tuple[str, ...]:
        """Resource types with a strictly positive amount."""
        return tuple(self._amounts)

    @classmethod
    def _from_clean(cls, amounts: Dict[str, float]) -> "ResourceVector":
        # Arithmetic results are clean by construction (all values > _EPS),
        # so skip __init__'s per-entry validation -- these paths are hot in
        # large allocation/placement rounds.
        vec = object.__new__(cls)
        vec._amounts = amounts
        return vec

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        merged = dict(self._amounts)
        for name, value in other._amounts.items():
            merged[name] = merged.get(name, 0.0) + value
        return ResourceVector._from_clean(merged)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        merged = dict(self._amounts)
        for name, value in other._amounts.items():
            remaining = merged.get(name, 0.0) - value
            if remaining < -1e-6:
                raise ConfigurationError(
                    f"subtraction would make resource {name!r} negative "
                    f"({merged.get(name, 0.0)} - {value})"
                )
            if remaining > _EPS:
                merged[name] = remaining
            else:
                merged.pop(name, None)
        return ResourceVector._from_clean(merged)

    def __mul__(self, factor: float) -> "ResourceVector":
        factor = float(factor)
        if factor < 0:
            raise ConfigurationError("cannot scale a resource vector negatively")
        return ResourceVector._from_clean(
            {k: nv for k, v in self._amounts.items() if (nv := v * factor) > _EPS}
        )

    __rmul__ = __mul__

    # -- comparisons ----------------------------------------------------------
    def fits_within(self, capacity: "ResourceVector", slack: float = 1e-9) -> bool:
        """True when every component is <= the capacity's component."""
        cap = capacity._amounts
        return all(
            value <= cap.get(name, 0.0) + slack
            for name, value in self._amounts.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        names = set(self._amounts) | set(other._amounts)
        return all(abs(self.get(n) - other.get(n)) <= 1e-9 for n in names)

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, round(v, 9)) for k, v in self._amounts.items())))

    def is_zero(self) -> bool:
        return not self._amounts

    # -- DRF helpers ----------------------------------------------------------
    def shares(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Per-type share of *capacity* consumed by this vector.

        Types absent from *capacity* but present here yield ``inf`` -- the
        request can never be satisfied.
        """
        result: Dict[str, float] = {}
        for name, value in self.items():
            cap = capacity.get(name)
            result[name] = value / cap if cap > _EPS else float("inf")
        return result

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """The largest per-type share (DRF's dominant share); 0 if empty."""
        shares = self.shares(capacity)
        return max(shares.values()) if shares else 0.0

    def dominant_resource(self, capacity: "ResourceVector") -> Optional[str]:
        """The type achieving the dominant share; ``None`` for the zero vector."""
        shares = self.shares(capacity)
        if not shares:
            return None
        return max(shares, key=lambda name: (shares[name], name))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._amounts.items()))
        return f"ResourceVector({inner})"


#: The empty vector, useful as an additive identity.
ZERO = ResourceVector()


def cpu_mem(cpus: float, memory_gb: float) -> ResourceVector:
    """Convenience constructor for the common CPU+memory container shape."""
    return ResourceVector({CPU: cpus, MEMORY: memory_gb})
