"""Cluster-level resource bookkeeping.

A :class:`Cluster` is an ordered collection of :class:`~repro.cluster.server.Server`
objects plus aggregate queries that the schedulers need: total/used/free
capacity, per-job placement lookup, dominant resource of a demand against the
whole cluster, and snapshot/restore so "what-if" placements can be trialled
without mutating live state.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cluster.resources import ZERO, ResourceVector
from repro.cluster.server import ROLE_PS, ROLE_WORKER, Server, TaskKey
from repro.common.errors import ConfigurationError


class Cluster:
    """An inventory of servers with placement bookkeeping.

    Examples
    --------
    >>> from repro.cluster.resources import cpu_mem
    >>> cluster = Cluster.homogeneous(num_servers=3, capacity=cpu_mem(16, 64))
    >>> cluster.total_capacity["cpu"]
    48.0
    """

    def __init__(self, servers: Iterable[Server]):
        self._servers: Dict[str, Server] = {}
        for server in servers:
            if server.name in self._servers:
                raise ConfigurationError(f"duplicate server name {server.name!r}")
            self._servers[server.name] = server
        if not self._servers:
            raise ConfigurationError("a cluster needs at least one server")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_servers: int,
        capacity: ResourceVector,
        network_bandwidth: float = 125e6,
        name_prefix: str = "node",
    ) -> "Cluster":
        """Build a cluster of *num_servers* identical servers."""
        if num_servers <= 0:
            raise ConfigurationError("num_servers must be positive")
        return cls(
            Server(f"{name_prefix}-{i}", capacity, network_bandwidth)
            for i in range(num_servers)
        )

    @classmethod
    def testbed(cls) -> "Cluster":
        """The paper's 13-server testbed (§6.1): 7 CPU + 6 GPU servers.

        CPU servers: two 8-core E5-2650 CPUs and 80 GB memory.
        GPU servers: one 8-core E5-1660 CPU, 2 GPUs and 48 GB memory.
        All connected through a 1 GbE switch.
        """
        servers: List[Server] = []
        for i in range(7):
            servers.append(
                Server(
                    f"cpu-{i}",
                    ResourceVector({"cpu": 16, "memory": 80}),
                    network_bandwidth=125e6,
                )
            )
        for i in range(6):
            servers.append(
                Server(
                    f"gpu-{i}",
                    ResourceVector({"cpu": 8, "memory": 48, "gpu": 2}),
                    network_bandwidth=125e6,
                )
            )
        return cls(servers)

    # -- inventory ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self._servers.values())

    def __contains__(self, name: str) -> bool:
        return name in self._servers

    @property
    def servers(self) -> Tuple[Server, ...]:
        return tuple(self._servers.values())

    @property
    def server_names(self) -> Tuple[str, ...]:
        return tuple(self._servers)

    def server(self, name: str) -> Server:
        try:
            return self._servers[name]
        except KeyError:
            raise ConfigurationError(f"unknown server {name!r}") from None

    # -- aggregates -----------------------------------------------------------
    @property
    def total_capacity(self) -> ResourceVector:
        total = ZERO
        for server in self:
            total = total + server.capacity
        return total

    @property
    def total_used(self) -> ResourceVector:
        total = ZERO
        for server in self:
            total = total + server.used
        return total

    @property
    def total_available(self) -> ResourceVector:
        return self.total_capacity - self.total_used

    def utilization(self, resource_type: str = "cpu") -> float:
        cap = self.total_capacity.get(resource_type)
        if cap <= 0:
            return 0.0
        return self.total_used.get(resource_type) / cap

    def dominant_resource(self, demand: ResourceVector) -> Optional[str]:
        """The dominant resource of *demand* against cluster capacity (§4.1)."""
        return demand.dominant_resource(self.total_capacity)

    def fits_in_total(self, demand: ResourceVector) -> bool:
        """Capacity check against aggregate free resources (ignores fragmentation)."""
        return demand.fits_within(self.total_available)

    # -- placement ------------------------------------------------------------
    def place(self, server_name: str, key: TaskKey, demand: ResourceVector) -> None:
        self.server(server_name).place(key, demand)

    def release(self, server_name: str, key: TaskKey) -> ResourceVector:
        return self.server(server_name).release(key)

    def release_job(self, job_id: str) -> int:
        """Release every task of a job across all servers."""
        released = 0
        for server in self:
            released += server.release_job(job_id)
        return released

    def job_placement(self, job_id: str) -> Dict[str, Dict[str, int]]:
        """Map ``server_name -> {"worker": n, "ps": m}`` for a job's tasks."""
        layout: Dict[str, Dict[str, int]] = {}
        for server in self:
            workers = server.task_count(job_id=job_id, role=ROLE_WORKER)
            ps = server.task_count(job_id=job_id, role=ROLE_PS)
            if workers or ps:
                layout[server.name] = {ROLE_WORKER: workers, ROLE_PS: ps}
        return layout

    def placed_task_count(self, job_id: Optional[str] = None) -> int:
        return sum(server.task_count(job_id=job_id) for server in self)

    # -- what-if support --------------------------------------------------------
    def snapshot(self) -> "Cluster":
        """A deep, independent copy of the cluster state."""
        return copy.deepcopy(self)

    def clear(self) -> None:
        """Release every task on every server."""
        for server in self:
            for key in server.task_keys:
                server.release(key)

    def __repr__(self) -> str:
        return (
            f"Cluster(servers={len(self)}, used={self.total_used}, "
            f"capacity={self.total_capacity})"
        )
