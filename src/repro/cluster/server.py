"""A physical server (cluster node) with capacity bookkeeping.

Servers track which tasks currently occupy them. A *task* here is identified
by an opaque ``(job_id, role, index)`` triple -- the cluster layer does not
know anything about training; it only does the resource accounting that the
placement algorithms (:mod:`repro.core.placement`) and baseline schedulers
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cluster.resources import ZERO, ResourceVector
from repro.common.errors import CapacityError

#: Role names used throughout the library.
ROLE_WORKER = "worker"
ROLE_PS = "ps"

TaskKey = Tuple[str, str, int]  # (job_id, role, index)


@dataclass
class Server:
    """One homogeneous-or-not cluster node.

    Parameters
    ----------
    name:
        Unique node name, e.g. ``"node-3"``.
    capacity:
        Total resource capacity of the node.
    network_bandwidth:
        NIC bandwidth in bytes/second, used by the communication model; it is
        *not* part of the allocatable capacity vector by default (the paper's
        testbed shares a 1 GbE NIC among all containers of a node).
    """

    name: str
    capacity: ResourceVector
    network_bandwidth: float = 125e6  # 1 GbE in bytes/s
    _used: ResourceVector = field(default_factory=lambda: ZERO, repr=False)
    _tasks: Dict[TaskKey, ResourceVector] = field(default_factory=dict, repr=False)
    #: Cached ``capacity - used``; recomputed lazily after place/release.
    #: ResourceVector is immutable, so sharing the cached instance is safe.
    _available: ResourceVector = field(default=None, repr=False, compare=False)

    @property
    def used(self) -> ResourceVector:
        """Resources currently occupied by placed tasks."""
        return self._used

    @property
    def available(self) -> ResourceVector:
        """Remaining free capacity."""
        if self._available is None:
            self._available = self.capacity - self._used
        return self._available

    @property
    def task_keys(self) -> Tuple[TaskKey, ...]:
        return tuple(self._tasks)

    def task_count(self, job_id: str = None, role: str = None) -> int:
        """Number of placed tasks, optionally filtered by job and/or role."""
        count = 0
        for jid, r, _ in self._tasks:
            if job_id is not None and jid != job_id:
                continue
            if role is not None and r != role:
                continue
            count += 1
        return count

    def can_fit(self, demand: ResourceVector) -> bool:
        """True when *demand* fits in the currently available capacity."""
        return demand.fits_within(self.available)

    def place(self, key: TaskKey, demand: ResourceVector) -> None:
        """Occupy *demand* resources for the task *key*.

        Raises
        ------
        CapacityError
            If the task is already placed here or the demand does not fit.
        """
        if key in self._tasks:
            raise CapacityError(f"task {key} already placed on {self.name}")
        if not self.can_fit(demand):
            raise CapacityError(
                f"task {key} with demand {demand} does not fit on {self.name} "
                f"(available {self.available})"
            )
        self._tasks[key] = demand
        self._used = self._used + demand
        self._available = None

    def release(self, key: TaskKey) -> ResourceVector:
        """Free the resources of task *key* and return its demand."""
        try:
            demand = self._tasks.pop(key)
        except KeyError:
            raise CapacityError(f"task {key} is not placed on {self.name}") from None
        self._used = self._used - demand
        self._available = None
        return demand

    def release_job(self, job_id: str) -> int:
        """Release every task of *job_id*; returns how many were released."""
        keys = [k for k in self._tasks if k[0] == job_id]
        for key in keys:
            self.release(key)
        return len(keys)

    def utilization(self, resource_type: str = "cpu") -> float:
        """Fraction of one resource type in use (0 when the type is absent)."""
        cap = self.capacity.get(resource_type)
        if cap <= 0:
            return 0.0
        return self._used.get(resource_type) / cap
