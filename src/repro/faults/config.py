"""Knobs for the fault-injection subsystem.

:class:`FaultConfig` is the single immutable description of "how hostile
is this cluster": node mean-time-between-failures, per-task crash
probabilities, KV-store flakiness and checkpoint loss. A default-constructed
config injects nothing at all -- the acceptance bar for this subsystem is
that a run with the default config is bit-identical to a run on a build
that has no fault code in it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import FaultInjectionError


@dataclass(frozen=True)
class FaultConfig:
    """Stochastic fault rates for a simulation or deployment run.

    Parameters
    ----------
    node_mtbf:
        Mean time between failures for each server, in seconds. Failures
        are drawn per interval from the exponential survival model
        ``P(fail in dt) = 1 - exp(-dt / mtbf)``. ``0`` disables node
        crashes.
    node_downtime:
        ``(low, high)`` bounds (seconds) for the uniform draw of how long
        a crashed node stays down before its capacity returns.
    task_crash_rate:
        Per-task, per-interval probability that an individual worker/PS
        task dies independently of its node. ``0`` disables task crashes.
    checkpoint_loss_rate:
        Probability that, when a job must restart, its latest checkpoint
        turns out lost/corrupted and the job falls back to the previous
        one (or to zero progress when none remains).
    kv_error_rate:
        Probability that a single KV-store/API operation fails with a
        :class:`~repro.common.errors.TransientKVError` (applied by
        :class:`repro.faults.FlakyKVStore`, not by the sim engine).
    max_node_failures:
        Optional cap on the total number of node crashes injected over a
        run; ``None`` means unbounded.
    """

    node_mtbf: float = 0.0
    node_downtime: Tuple[float, float] = (600.0, 1800.0)
    task_crash_rate: float = 0.0
    checkpoint_loss_rate: float = 0.0
    kv_error_rate: float = 0.0
    max_node_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node_mtbf < 0:
            raise FaultInjectionError("node_mtbf must be non-negative")
        lo, hi = self.node_downtime
        if lo < 0 or hi < lo:
            raise FaultInjectionError(
                "node_downtime must be (low, high) with 0 <= low <= high"
            )
        for name in ("task_crash_rate", "checkpoint_loss_rate", "kv_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1]")
        if self.max_node_failures is not None and self.max_node_failures < 0:
            raise FaultInjectionError("max_node_failures must be non-negative")

    @property
    def engine_enabled(self) -> bool:
        """True when the sim engine has stochastic faults to inject."""
        return (
            self.node_mtbf > 0
            or self.task_crash_rate > 0
            or self.checkpoint_loss_rate > 0
        )

    @property
    def enabled(self) -> bool:
        """True when *any* fault channel (engine or KV) is active."""
        return self.engine_enabled or self.kv_error_rate > 0

    def failure_probability(self, interval: float) -> float:
        """P(a live node fails within *interval* seconds)."""
        if self.node_mtbf <= 0 or interval <= 0:
            return 0.0
        return 1.0 - math.exp(-interval / self.node_mtbf)
