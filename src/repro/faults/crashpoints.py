"""Named controller crash points (§5.5 crash consistency, made testable).

The §5.4 rescale cycle -- checkpoint, teardown, relaunch -- is exactly the
window where a dying scheduler pod can strand a job: killed after the
teardown, the job has zero pods and (without the intent log) no record
that it was mid-rescale. :class:`CrashPointInjector` kills the controller
at a *named* point inside :meth:`repro.k8s.controller.JobController.reconcile`
by raising :class:`~repro.common.errors.ControllerCrashed`, which nothing
in the control plane is allowed to absorb. Chaos tests then restart the
loop over the same store (``ControlLoop.recover()``) and assert
convergence -- one crash point at a time, every crash point covered.

Crash points are scripted through :class:`ControllerCrash` entries on a
:class:`~repro.faults.FaultPlan` (deterministic, no RNG), mirroring how
:class:`~repro.faults.plan.NodeCrash` scripts node outages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.common.errors import ControllerCrashed, FaultInjectionError

#: After the pre-rescale checkpoint is saved and the intent written, before
#: any pod is torn down.
CRASH_AFTER_CHECKPOINT = "after_checkpoint"
#: After the job's old pods are gone, before the relaunch begins.
CRASH_AFTER_TEARDOWN = "after_teardown"
#: After the first pod of the relaunch is bound, before the rest exist.
CRASH_MID_LAUNCH = "mid_launch"
#: After every new pod is bound, before the intent is marked done.
CRASH_AFTER_LAUNCH = "after_launch"
#: A standby dies just before it would campaign for a vacant leadership.
CRASH_BEFORE_CAMPAIGN = "before_campaign"
#: A candidate dies right after winning the election, before recovery --
#: its claim (and lease) linger until the TTL lapses.
CRASH_AFTER_ELECTED = "after_elected"
#: The leader's lease is severed *mid-step* (after scheduling, before
#: reconcile writes land): a deposition, not a death -- the process keeps
#: running and its writes must be fenced. Consumed via :meth:`take`.
CRASH_MID_STEP_DEPOSED = "mid_step_deposed"

#: The reconcile-cycle crash points, in cycle order.
RECONCILE_CRASH_POINTS = (
    CRASH_AFTER_CHECKPOINT,
    CRASH_AFTER_TEARDOWN,
    CRASH_MID_LAUNCH,
    CRASH_AFTER_LAUNCH,
)

#: Every named crash point (reconcile cycle first, then election ones).
CRASH_POINTS = RECONCILE_CRASH_POINTS + (
    CRASH_BEFORE_CAMPAIGN,
    CRASH_AFTER_ELECTED,
    CRASH_MID_STEP_DEPOSED,
)


@dataclass(frozen=True)
class ControllerCrash:
    """Kill the controller at *point*, optionally only for *job_id*.

    ``job_id=None`` fires on the first job whose cycle reaches the point.
    Each scripted crash fires exactly once -- the restarted controller
    replays the same code path without dying again, like a real crash
    followed by a healthy restart.
    """

    point: str
    job_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise FaultInjectionError(
                f"unknown crash point {self.point!r}; known: {list(CRASH_POINTS)}"
            )


class CrashPointInjector:
    """Fires scripted :class:`ControllerCrash` events, one-shot each.

    Falsy when no crashes remain, so the controller's hot path guards with
    ``if self.crash_points:`` exactly like the ``repro.obs`` null objects.
    """

    def __init__(self, crashes: Iterable[ControllerCrash] = ()):
        self._pending: List[ControllerCrash] = list(crashes)
        #: ``(point, job_id)`` pairs that actually fired, in order.
        self.fired: List[Tuple[str, str]] = []

    @classmethod
    def from_plan(cls, plan) -> "CrashPointInjector":
        """Build an injector from a :class:`~repro.faults.FaultPlan`."""
        return cls(plan.controller_crashes)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def fire(self, point: str, job_id: str) -> None:
        """Raise :class:`ControllerCrashed` if a scripted crash matches."""
        for index, crash in enumerate(self._pending):
            if crash.point != point:
                continue
            if crash.job_id is not None and crash.job_id != job_id:
                continue
            del self._pending[index]
            self.fired.append((point, job_id))
            raise ControllerCrashed(
                f"injected controller crash at {point!r} (job {job_id!r})"
            )

    def take(self, point: str, subject: str = "") -> bool:
        """Consume a matching scripted crash *without* raising.

        Deposition-style points (:data:`CRASH_MID_STEP_DEPOSED`) are not
        deaths: the process survives but its reign ends, so there is no
        :class:`ControllerCrashed` to raise -- the caller severs the
        lease itself when this returns ``True``.
        """
        for index, crash in enumerate(self._pending):
            if crash.point != point:
                continue
            if crash.job_id is not None and crash.job_id != subject:
                continue
            del self._pending[index]
            self.fired.append((point, subject))
            return True
        return False
