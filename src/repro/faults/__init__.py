"""Seeded fault injection and recovery (§5.4–§5.5 robustness).

Optimus claims fault tolerance through etcd-persisted job state and
checkpoint-based restarts; this package makes that claim testable. It
provides:

* :class:`FaultConfig` -- stochastic fault rates (node MTBF, task crash
  probability, checkpoint loss, KV error rate);
* :class:`FaultPlan` / :class:`NodeCrash` / :class:`TaskCrash` /
  :class:`CheckpointLoss` -- scripted, deterministic fault schedules;
* :class:`FaultInjector` -- turns config + plan + a ``RandomSource`` seed
  into per-interval fault events for the sim engine (falsy when disabled,
  like the ``repro.obs`` null objects, so disabled runs are bit-identical
  to a build without fault code);
* :class:`FlakyKVStore` / :class:`RetryingKVStore` -- KV-substrate fault
  injection and the matching retry/backoff recovery wrapper.

See ``docs/fault_tolerance.md`` for the fault model and recovery
semantics.
"""

from repro.faults.config import FaultConfig
from repro.faults.crashpoints import (
    CRASH_AFTER_CHECKPOINT,
    CRASH_AFTER_ELECTED,
    CRASH_AFTER_LAUNCH,
    CRASH_AFTER_TEARDOWN,
    CRASH_BEFORE_CAMPAIGN,
    CRASH_MID_LAUNCH,
    CRASH_MID_STEP_DEPOSED,
    CRASH_POINTS,
    RECONCILE_CRASH_POINTS,
    ControllerCrash,
    CrashPointInjector,
)
from repro.faults.injector import FaultInjector, IntervalFaults, NodeOutage
from repro.faults.kv import FlakyKVStore, RetryingKVStore
from repro.faults.plan import CheckpointLoss, FaultPlan, NodeCrash, TaskCrash

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "NodeCrash",
    "TaskCrash",
    "CheckpointLoss",
    "ControllerCrash",
    "CrashPointInjector",
    "CRASH_POINTS",
    "RECONCILE_CRASH_POINTS",
    "CRASH_AFTER_CHECKPOINT",
    "CRASH_AFTER_TEARDOWN",
    "CRASH_MID_LAUNCH",
    "CRASH_AFTER_LAUNCH",
    "CRASH_BEFORE_CAMPAIGN",
    "CRASH_AFTER_ELECTED",
    "CRASH_MID_STEP_DEPOSED",
    "FaultInjector",
    "IntervalFaults",
    "NodeOutage",
    "FlakyKVStore",
    "RetryingKVStore",
]
