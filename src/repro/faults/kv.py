"""Flaky and retrying wrappers around the etcd-like KV store.

Two composable decorators with the same duck-type interface as
:class:`repro.k8s.kvstore.KVStore`:

* :class:`FlakyKVStore` -- *injects* faults: each data operation fails
  with a seeded probability, raising
  :class:`~repro.common.errors.TransientKVError` *before* the operation
  runs (a failed put never mutates the store, like a request that never
  reached etcd).
* :class:`RetryingKVStore` -- *recovers* from them: every operation runs
  under :func:`repro.common.retry.call_with_retry`, with each retry traced
  as a ``kv_retry`` event and counted in the metrics registry, and budget
  exhaustion traced as ``kv_retry_exhausted`` before the final error
  escapes.

Stack them (``RetryingKVStore(FlakyKVStore(KVStore(), ...))``) to model the
§5.5 claim that job state survives a flaky etcd hop: errors below the
attempt budget are invisible to callers apart from the metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.common.errors import FaultInjectionError, TransientKVError
from repro.common.rand import RandomSource
from repro.common.retry import RetryPolicy, call_with_retry
from repro.k8s.kvstore import KVStore, WatchCallback

T = TypeVar("T")


class FlakyKVStore:
    """A :class:`KVStore` whose data operations fail with probability *error_rate*.

    Failures are drawn from a dedicated seeded stream (``seed.child("kv")``)
    so a given seed produces the same failure sequence every run. Watch
    registration and ``len()`` are deliberately reliable -- they model local
    client state, not network hops.
    """

    def __init__(
        self,
        inner: Optional[KVStore] = None,
        error_rate: float = 0.0,
        seed: Optional[RandomSource] = None,
    ):
        if not 0.0 <= error_rate <= 1.0:
            raise FaultInjectionError("error_rate must be in [0, 1]")
        self.inner = inner if inner is not None else KVStore()
        self.error_rate = float(error_rate)
        self._rng = (seed or RandomSource(0)).child("kv").rng
        self.failures_injected = 0

    def _maybe_fail(self, op: str) -> None:
        if self.error_rate > 0 and float(self._rng.random()) < self.error_rate:
            self.failures_injected += 1
            raise TransientKVError(f"injected transient failure during {op}")

    # -- flaky data path -----------------------------------------------------------
    def put(self, key: str, value: str, lease: Optional[int] = None) -> int:
        self._maybe_fail("put")
        return self.inner.put(key, value, lease=lease)

    def grant_lease(self, ttl: float, now: float = 0.0) -> int:
        self._maybe_fail("grant_lease")
        return self.inner.grant_lease(ttl, now)

    def renew_lease(self, lease_id: int, now: float) -> float:
        self._maybe_fail("renew_lease")
        return self.inner.renew_lease(lease_id, now)

    def revoke_lease(self, lease_id: int) -> List[str]:
        self._maybe_fail("revoke_lease")
        return self.inner.revoke_lease(lease_id)

    def get(self, key: str) -> Optional[str]:
        self._maybe_fail("get")
        return self.inner.get(key)

    def get_with_revision(self, key: str) -> Tuple[Optional[str], int]:
        self._maybe_fail("get_with_revision")
        return self.inner.get_with_revision(key)

    def delete(self, key: str) -> bool:
        self._maybe_fail("delete")
        return self.inner.delete(key)

    def compare_and_swap(
        self, key: str, expected: Optional[str], value: str
    ) -> bool:
        self._maybe_fail("compare_and_swap")
        return self.inner.compare_and_swap(key, expected, value)

    def list_prefix(self, prefix: str) -> Dict[str, str]:
        self._maybe_fail("list_prefix")
        return self.inner.list_prefix(prefix)

    def keys(self, pattern: str = "*") -> List[str]:
        self._maybe_fail("keys")
        return self.inner.keys(pattern)

    def __contains__(self, key: str) -> bool:
        self._maybe_fail("contains")
        return key in self.inner

    # -- reliable local path -------------------------------------------------------
    @property
    def revision(self) -> int:
        return self.inner.revision

    def __len__(self) -> int:
        return len(self.inner)

    def watch(self, prefix: str, callback: WatchCallback) -> int:
        return self.inner.watch(prefix, callback)

    def cancel_watch(self, watch_id: int) -> bool:
        return self.inner.cancel_watch(watch_id)

    # Lease expiry is server-internal bookkeeping (etcd's lessor runs next
    # to the data), not a network hop -- it stays reliable, like watches.
    def expire_leases(self, now: float) -> List[int]:
        return self.inner.expire_leases(now)

    def lease_remaining(self, lease_id: int, now: float) -> float:
        return self.inner.lease_remaining(lease_id, now)

    def lease_keys(self, lease_id: int) -> List[str]:
        return self.inner.lease_keys(lease_id)

    def has_lease(self, lease_id: int) -> bool:
        return self.inner.has_lease(lease_id)


class RetryingKVStore:
    """A :class:`KVStore` front that retries transient failures of *inner*.

    Every retry is observable: ``kv.retries`` / ``kv.retry_exhausted``
    counters on *metrics*, and ``kv_retry`` / ``kv_retry_exhausted`` trace
    events on *tracer* (the event time is a monotonically increasing
    operation sequence number -- the store has no notion of sim time).
    """

    def __init__(
        self,
        inner: KVStore,
        policy: Optional[RetryPolicy] = None,
        seed: Optional[RandomSource] = None,
        tracer=None,
        metrics=None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        from repro.obs import NULL_REGISTRY, NULL_TRACER

        self.inner = inner
        self.policy = policy or RetryPolicy()
        self._rng = seed.child("kv-retry").rng if seed is not None else None
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._sleep = sleep
        self._op_seq = 0

    def _call(self, op: str, fn: Callable[[], T]) -> T:
        self._op_seq += 1
        seq = self._op_seq

        def on_retry(attempt: int, delay: float, exc: BaseException) -> None:
            if self._metrics:
                self._metrics.counter("kv.retries").inc()
            if self._tracer:
                self._tracer.emit(
                    "kv_retry",
                    float(seq),
                    op=op,
                    attempt=attempt,
                    delay=delay,
                    error=str(exc),
                )

        def on_exhausted(attempts: int, exc: BaseException) -> None:
            if self._metrics:
                self._metrics.counter("kv.retry_exhausted").inc()
            if self._tracer:
                self._tracer.emit(
                    "kv_retry_exhausted",
                    float(seq),
                    op=op,
                    attempts=attempts,
                    error=str(exc),
                )

        return call_with_retry(
            fn,
            policy=self.policy,
            rng=self._rng,
            sleep=self._sleep,
            on_retry=on_retry,
            on_exhausted=on_exhausted,
        )

    # -- retried data path ---------------------------------------------------------
    def put(self, key: str, value: str, lease: Optional[int] = None) -> int:
        return self._call("put", lambda: self.inner.put(key, value, lease=lease))

    def grant_lease(self, ttl: float, now: float = 0.0) -> int:
        return self._call("grant_lease", lambda: self.inner.grant_lease(ttl, now))

    def renew_lease(self, lease_id: int, now: float) -> float:
        return self._call(
            "renew_lease", lambda: self.inner.renew_lease(lease_id, now)
        )

    def revoke_lease(self, lease_id: int) -> List[str]:
        return self._call(
            "revoke_lease", lambda: self.inner.revoke_lease(lease_id)
        )

    def get(self, key: str) -> Optional[str]:
        return self._call("get", lambda: self.inner.get(key))

    def get_with_revision(self, key: str) -> Tuple[Optional[str], int]:
        return self._call(
            "get_with_revision", lambda: self.inner.get_with_revision(key)
        )

    def delete(self, key: str) -> bool:
        return self._call("delete", lambda: self.inner.delete(key))

    def compare_and_swap(
        self, key: str, expected: Optional[str], value: str
    ) -> bool:
        return self._call(
            "compare_and_swap",
            lambda: self.inner.compare_and_swap(key, expected, value),
        )

    def list_prefix(self, prefix: str) -> Dict[str, str]:
        return self._call("list_prefix", lambda: self.inner.list_prefix(prefix))

    def keys(self, pattern: str = "*") -> List[str]:
        return self._call("keys", lambda: self.inner.keys(pattern))

    def __contains__(self, key: str) -> bool:
        return self._call("contains", lambda: key in self.inner)

    # -- local pass-through --------------------------------------------------------
    @property
    def revision(self) -> int:
        return self.inner.revision

    def __len__(self) -> int:
        return len(self.inner)

    def watch(self, prefix: str, callback: WatchCallback) -> int:
        return self.inner.watch(prefix, callback)

    def cancel_watch(self, watch_id: int) -> bool:
        return self.inner.cancel_watch(watch_id)

    def expire_leases(self, now: float) -> List[int]:
        return self.inner.expire_leases(now)

    def lease_remaining(self, lease_id: int, now: float) -> float:
        return self.inner.lease_remaining(lease_id, now)

    def lease_keys(self, lease_id: int) -> List[str]:
        return self.inner.lease_keys(lease_id)

    def has_lease(self, lease_id: int) -> bool:
        return self.inner.has_lease(lease_id)
