"""Scripted fault schedules.

Stochastic injection (:class:`repro.faults.FaultConfig`) answers "what
happens under this failure *rate*"; a :class:`FaultPlan` answers "what
happens when server-3 dies at t=1200 exactly". Plans are deterministic by
construction -- no RNG involved -- which makes them the tool of choice for
regression tests and for replaying a failure scenario from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import FaultInjectionError
from repro.faults.crashpoints import CRASH_POINTS, ControllerCrash


@dataclass(frozen=True)
class NodeCrash:
    """Server *server* loses all capacity at *time* for *duration* seconds."""

    time: float
    server: str
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultInjectionError("crash time must be non-negative")
        if self.duration <= 0:
            raise FaultInjectionError("crash duration must be positive")
        if not self.server:
            raise FaultInjectionError("crash needs a server name")


@dataclass(frozen=True)
class TaskCrash:
    """One task of job *job_id* dies at *time*."""

    time: float
    job_id: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultInjectionError("crash time must be non-negative")
        if not self.job_id:
            raise FaultInjectionError("crash needs a job id")


@dataclass(frozen=True)
class CheckpointLoss:
    """Job *job_id*'s latest checkpoint is corrupted as of *time*.

    The loss only bites when the job next restarts: a corrupted checkpoint
    that is overwritten by a newer one before any crash is harmless, which
    mirrors how real checkpoint corruption is discovered (on restore).
    """

    time: float
    job_id: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultInjectionError("loss time must be non-negative")
        if not self.job_id:
            raise FaultInjectionError("loss needs a job id")


@dataclass(frozen=True)
class FaultPlan:
    """An explicit, deterministic schedule of faults.

    Combine with a :class:`~repro.faults.FaultConfig` freely: the injector
    applies planned events first, then layers stochastic ones on top.
    """

    node_crashes: Tuple[NodeCrash, ...] = ()
    task_crashes: Tuple[TaskCrash, ...] = ()
    checkpoint_losses: Tuple[CheckpointLoss, ...] = ()
    #: Scripted controller deaths at named points inside ``reconcile``;
    #: point-ordered (the cycle order), not time-ordered -- the controller
    #: has no clock of its own.
    controller_crashes: Tuple[ControllerCrash, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "node_crashes", tuple(sorted(self.node_crashes, key=lambda c: (c.time, c.server)))
        )
        object.__setattr__(
            self, "task_crashes", tuple(sorted(self.task_crashes, key=lambda c: (c.time, c.job_id)))
        )
        object.__setattr__(
            self,
            "checkpoint_losses",
            tuple(sorted(self.checkpoint_losses, key=lambda c: (c.time, c.job_id))),
        )
        object.__setattr__(
            self,
            "controller_crashes",
            tuple(
                sorted(
                    self.controller_crashes,
                    key=lambda c: (CRASH_POINTS.index(c.point), c.job_id or ""),
                )
            ),
        )

    def __bool__(self) -> bool:
        return bool(
            self.node_crashes
            or self.task_crashes
            or self.checkpoint_losses
            or self.controller_crashes
        )

    def node_crashes_in(self, start: float, end: float) -> Tuple[NodeCrash, ...]:
        """Planned node crashes with ``start <= time < end``."""
        return tuple(c for c in self.node_crashes if start <= c.time < end)

    def task_crashes_in(self, start: float, end: float) -> Tuple[TaskCrash, ...]:
        """Planned task crashes with ``start <= time < end``."""
        return tuple(c for c in self.task_crashes if start <= c.time < end)

    def checkpoint_losses_in(
        self, start: float, end: float
    ) -> Tuple[CheckpointLoss, ...]:
        """Planned checkpoint losses with ``start <= time < end``."""
        return tuple(c for c in self.checkpoint_losses if start <= c.time < end)
