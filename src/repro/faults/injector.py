"""Seeded fault injector: turns config + plan into per-interval fault events.

:class:`FaultInjector` mirrors the design of
:class:`repro.sim.stragglers.StragglerInjector`: it owns a dedicated
``RandomSource`` child stream so fault draws never perturb the scheduler's
or straggler injector's randomness, and it is *falsy* when no faults are
configured so hot paths can guard with ``if injector:`` exactly like the
``repro.obs`` null objects. Same seed + same config + same call sequence
=> identical faults, which is what makes chaos runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.rand import RandomSource
from repro.faults.config import FaultConfig
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class NodeOutage:
    """One node-down episode: *server* is dead from *failed_at* to *up_at*."""

    server: str
    failed_at: float
    up_at: float


@dataclass(frozen=True)
class IntervalFaults:
    """Everything the injector decided for one scheduling interval."""

    failed: Tuple[NodeOutage, ...] = ()
    recovered: Tuple[str, ...] = ()


class FaultInjector:
    """Draws node/task/checkpoint faults interval by interval.

    Parameters
    ----------
    config:
        Stochastic fault rates; ``None`` means all-zero (nothing random).
    seed:
        The simulation's :class:`~repro.common.rand.RandomSource`; the
        injector uses its ``"faults"`` child so draws are isolated.
    plan:
        Optional scripted :class:`~repro.faults.FaultPlan` applied before
        (and in addition to) any stochastic faults.
    """

    def __init__(
        self,
        config: Optional[FaultConfig] = None,
        seed: Optional[RandomSource] = None,
        plan: Optional[FaultPlan] = None,
    ):
        self.config = config or FaultConfig()
        self.plan = plan or FaultPlan()
        self._rng = (seed or RandomSource(0)).child("faults").rng
        #: server name -> time its capacity comes back.
        self._down: Dict[str, float] = {}
        #: jobs whose latest checkpoint is (scripted to be) corrupted.
        self._corrupted: Set[str] = set()
        self._failures_injected = 0

    def __bool__(self) -> bool:
        return self.config.engine_enabled or bool(self.plan)

    # -- node outages --------------------------------------------------------------
    @property
    def down_servers(self) -> Tuple[str, ...]:
        """Servers currently without capacity, sorted by name."""
        return tuple(sorted(self._down))

    def _cap_reached(self) -> bool:
        cap = self.config.max_node_failures
        return cap is not None and self._failures_injected >= cap

    def begin_interval(
        self, now: float, interval: float, servers: Iterable[str]
    ) -> IntervalFaults:
        """Advance the outage state machine across ``[now, now + interval)``.

        Recoveries are processed first (a node whose downtime expired this
        interval is back up and may be reused -- or crash again), then
        scripted crashes, then stochastic crashes drawn per live server in
        sorted name order so the draw sequence is stable.
        """
        names = sorted(servers)
        recovered = self._pop_recovered(now)

        failed: List[NodeOutage] = []
        end = now + interval
        for crash in self.plan.node_crashes_in(now, end):
            if crash.server in self._down or crash.server not in names:
                continue
            outage = NodeOutage(crash.server, crash.time, crash.time + crash.duration)
            self._down[crash.server] = outage.up_at
            self._failures_injected += 1
            failed.append(outage)

        p_fail = self.config.failure_probability(interval)
        if p_fail > 0:
            lo, hi = self.config.node_downtime
            for name in names:
                if name in self._down:
                    continue
                if self._cap_reached():
                    break
                if float(self._rng.random()) < p_fail:
                    downtime = lo if hi <= lo else float(self._rng.uniform(lo, hi))
                    outage = NodeOutage(name, now, now + max(downtime, interval))
                    self._down[name] = outage.up_at
                    self._failures_injected += 1
                    failed.append(outage)

        for loss in self.plan.checkpoint_losses_in(now, end):
            self._corrupted.add(loss.job_id)

        return IntervalFaults(failed=tuple(failed), recovered=recovered)

    def _pop_recovered(self, now: float) -> Tuple[str, ...]:
        due = sorted(s for s, up_at in self._down.items() if up_at <= now)
        for name in due:
            del self._down[name]
        return tuple(due)

    # -- task crashes --------------------------------------------------------------
    def sample_task_crashes(
        self, job_id: str, num_tasks: int, now: float, interval: float
    ) -> int:
        """How many of *job_id*'s *num_tasks* tasks die this interval."""
        planned = sum(
            1
            for c in self.plan.task_crashes_in(now, now + interval)
            if c.job_id == job_id
        )
        drawn = 0
        if self.config.task_crash_rate > 0 and num_tasks > 0:
            drawn = int(self._rng.binomial(num_tasks, self.config.task_crash_rate))
        return planned + drawn

    # -- checkpoint loss -----------------------------------------------------------
    def checkpoint_lost(self, job_id: str) -> bool:
        """Is *job_id*'s latest checkpoint gone? (Consumes a scripted loss.)"""
        if job_id in self._corrupted:
            self._corrupted.discard(job_id)
            return True
        if self.config.checkpoint_loss_rate > 0:
            return float(self._rng.random()) < self.config.checkpoint_loss_rate
        return False

    def note_checkpoint(self, job_id: str) -> None:
        """A fresh checkpoint for *job_id* supersedes any scripted corruption."""
        self._corrupted.discard(job_id)
