"""Prediction-quality telemetry for the §3 online estimators.

Optimus's scheduling loop stands on two online models: the resource→speed
function ``f(p, w)`` (§3.2, Eqn 3/4) and the loss-curve fit that yields
remaining steps to convergence (§3.1). Every allocation is only as good as
those predictions -- yet a drifting estimator is invisible from decision
logs alone, because the scheduler happily keeps acting on wrong numbers.
This module makes *prediction error* a first-class, exportable signal:

* :class:`EstimatorTelemetry` pairs each interval's **prediction** with
  the **observed** value one interval later (speed) or at completion
  (total steps, Fig.-6 style), maintaining per-job and fleet-wide MAPE
  (mean absolute percentage error) and signed bias;
* every resolved pair is emitted as an ``estimator_sample`` trace event,
  so MAPE can be recomputed offline from a trace file alone
  (:func:`repro.obs.summarize.estimator_report`, ``repro top``);
* a windowed **drift detector** watches the recent absolute errors per
  job and signal; when the windowed mean exceeds the configured band it
  emits an ``estimator_drift`` trace event and bumps the
  ``est.refit_suggested`` counter -- the cue that the online model is
  persistently wrong (hardware changed, interference appeared, a
  learning-rate drop broke the curve) and needs a refit or attention.

Signals are named by the :data:`SIGNAL_SPEED` / :data:`SIGNAL_REMAINING`
constants; per-fleet gauges land in the attached registry as
``est.speed_mape``, ``est.speed_bias``, ``est.remaining_mape``, ...
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracer import (
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    NULL_TRACER,
    Tracer,
)

#: The resource→speed prediction (Eqn 3/4): resolved every interval
#: against the speed the job actually achieved.
SIGNAL_SPEED = "speed"
#: The loss-curve prediction of *total* steps to convergence (§3.1):
#: every interval's prediction is resolved at completion against the true
#: total, exactly the Fig.-6 error-vs-progress analysis.
SIGNAL_REMAINING = "remaining"

SIGNALS = (SIGNAL_SPEED, SIGNAL_REMAINING)


class SignalStats:
    """Running error statistics for one (signal, job) or fleet stream."""

    __slots__ = ("count", "abs_error_sum", "signed_error_sum")

    def __init__(self) -> None:
        self.count = 0
        self.abs_error_sum = 0.0
        self.signed_error_sum = 0.0

    def add(self, error: float) -> None:
        self.count += 1
        self.abs_error_sum += abs(error)
        self.signed_error_sum += error

    @property
    def mape(self) -> float:
        """Mean absolute percentage error (as a fraction, not percent)."""
        return self.abs_error_sum / self.count if self.count else 0.0

    @property
    def bias(self) -> float:
        """Mean signed relative error: positive = systematic over-prediction."""
        return self.signed_error_sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"count": self.count, "mape": self.mape, "bias": self.bias}


class EstimatorTelemetry:
    """Predicted-vs-actual tracking with windowed drift detection.

    Parameters
    ----------
    tracer, metrics:
        The ``repro.obs`` sinks; both default to the shared null
        implementations, making an unattached telemetry object free.
    drift_window:
        Number of recent resolutions per (signal, job) the drift detector
        averages over.
    drift_threshold:
        Windowed MAPE band (fraction): a full window whose mean absolute
        error exceeds this fires one ``estimator_drift`` event, then the
        window restarts (a persistent drift re-fires every *window*
        resolutions, not every sample).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        drift_window: int = 6,
        drift_threshold: float = 0.5,
    ):
        if drift_window < 2:
            raise ConfigurationError("drift_window must be >= 2")
        if drift_threshold <= 0:
            raise ConfigurationError("drift_threshold must be positive")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.drift_window = int(drift_window)
        self.drift_threshold = float(drift_threshold)
        #: One pending speed prediction per job (the decision just made).
        self._pending_speed: Dict[str, float] = {}
        #: Every unresolved total-steps prediction per job, in order.
        self._pending_totals: Dict[str, List[float]] = {}
        self._job_stats: Dict[Tuple[str, str], SignalStats] = {}
        self._fleet_stats: Dict[str, SignalStats] = {
            signal: SignalStats() for signal in SIGNALS
        }
        self._windows: Dict[Tuple[str, str], Deque[float]] = {}
        self.drift_events = 0

    # -- recording predictions ------------------------------------------------
    def record_speed_prediction(self, job_id: str, predicted: float) -> None:
        """Note the speed the model promised for the interval starting now.

        An unresolved previous prediction (the job was descheduled before
        running) is overwritten: only run intervals produce samples.
        """
        if predicted > 0:
            self._pending_speed[job_id] = float(predicted)

    def record_total_prediction(self, job_id: str, predicted_total: float) -> None:
        """Note this interval's predicted total steps to convergence."""
        if predicted_total > 0:
            self._pending_totals.setdefault(job_id, []).append(
                float(predicted_total)
            )

    # -- resolving against reality --------------------------------------------
    def resolve_speed(
        self, job_id: str, actual: float, time: float
    ) -> Optional[float]:
        """Pair the pending speed prediction with the achieved speed.

        Returns the signed relative error, or ``None`` when there was no
        pending prediction (or the observation is unusable).
        """
        predicted = self._pending_speed.pop(job_id, None)
        if predicted is None or actual <= 0:
            return None
        return self._resolve(SIGNAL_SPEED, job_id, predicted, actual, time)

    def resolve_totals(
        self, job_id: str, actual_total: float, time: float
    ) -> int:
        """Resolve every recorded total-steps prediction at completion.

        Returns the number of predictions resolved. This is the Fig.-6
        replay: each prediction the estimator made over the job's lifetime
        is scored against the total the job actually needed.
        """
        predictions = self._pending_totals.pop(job_id, [])
        if actual_total <= 0:
            return 0
        for predicted in predictions:
            self._resolve(SIGNAL_REMAINING, job_id, predicted, actual_total, time)
        return len(predictions)

    def discard_job(self, job_id: str) -> None:
        """Drop pending predictions for a job that will never resolve them."""
        self._pending_speed.pop(job_id, None)
        self._pending_totals.pop(job_id, None)

    def _resolve(
        self, signal: str, job_id: str, predicted: float, actual: float, time: float
    ) -> float:
        error = (predicted - actual) / actual
        key = (signal, job_id)
        stats = self._job_stats.get(key)
        if stats is None:
            stats = self._job_stats[key] = SignalStats()
        stats.add(error)
        fleet = self._fleet_stats[signal]
        fleet.add(error)
        metrics = self.metrics
        metrics.counter(f"est.{signal}_samples").inc()
        metrics.gauge(f"est.{signal}_mape").set(fleet.mape)
        metrics.gauge(f"est.{signal}_bias").set(fleet.bias)
        if self.tracer:
            self.tracer.emit(
                EVENT_ESTIMATOR_SAMPLE,
                time,
                job_id=job_id,
                signal=signal,
                predicted=predicted,
                actual=actual,
                error=error,
            )
        self._check_drift(signal, job_id, error, time)
        return error

    # -- drift detection -------------------------------------------------------
    def _check_drift(
        self, signal: str, job_id: str, error: float, time: float
    ) -> None:
        key = (signal, job_id)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = deque(maxlen=self.drift_window)
        window.append(abs(error))
        if len(window) < self.drift_window:
            return
        window_mape = sum(window) / len(window)
        if window_mape <= self.drift_threshold:
            return
        window.clear()  # restart: one event per full drifting window
        self.drift_events += 1
        self.metrics.counter("est.refit_suggested").inc()
        self.metrics.counter(f"est.{signal}_drift_events").inc()
        if self.tracer:
            self.tracer.emit(
                EVENT_ESTIMATOR_DRIFT,
                time,
                job_id=job_id,
                signal=signal,
                window_mape=window_mape,
                window=self.drift_window,
                threshold=self.drift_threshold,
            )

    # -- reporting -------------------------------------------------------------
    def job_stats(self, job_id: str, signal: str) -> SignalStats:
        """Error statistics for one job and signal (zeros if unseen)."""
        return self._job_stats.get((signal, job_id), SignalStats())

    def fleet_stats(self, signal: str) -> SignalStats:
        if signal not in self._fleet_stats:
            raise ConfigurationError(
                f"unknown signal {signal!r}; known: {SIGNALS}"
            )
        return self._fleet_stats[signal]

    def snapshot(self) -> Dict:
        """A JSON-ready dump: fleet and per-job stats plus drift count."""
        jobs: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (signal, job_id), stats in sorted(self._job_stats.items()):
            jobs.setdefault(job_id, {})[signal] = stats.snapshot()
        return {
            "fleet": {
                signal: stats.snapshot()
                for signal, stats in sorted(self._fleet_stats.items())
            },
            "jobs": jobs,
            "drift_events": self.drift_events,
        }

    def __bool__(self) -> bool:
        return True


class NullEstimatorTelemetry(EstimatorTelemetry):
    """Telemetry disabled: every call is a no-op, truthiness False."""

    def __init__(self) -> None:
        super().__init__()

    def record_speed_prediction(self, job_id: str, predicted: float) -> None:
        pass

    def record_total_prediction(self, job_id: str, predicted_total: float) -> None:
        pass

    def resolve_speed(self, job_id, actual, time):  # type: ignore[override]
        return None

    def resolve_totals(self, job_id, actual_total, time) -> int:  # type: ignore[override]
        return 0

    def discard_job(self, job_id: str) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: Shared default instance.
NULL_ESTIMATOR_TELEMETRY = NullEstimatorTelemetry()
