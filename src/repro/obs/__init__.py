"""Structured observability: tracing, spans, metrics, estimator telemetry.

The schedulers in this repository make one decision per scheduling
interval; understanding *why* a decision was made and *where* interval
time goes requires telemetry the paper's evaluation (and every perf PR
here) leans on. This package provides that substrate with zero external
dependencies:

* :mod:`repro.obs.tracer` -- typed JSONL event tracing
  (``job_arrived`` .. ``estimator_drift``); off by default via
  :data:`NULL_TRACER`.
* :mod:`repro.obs.spans` -- causal span tracing over the same stream:
  each scheduling interval / control-loop step becomes a flame tree
  (``interval`` -> ``fit`` / ``allocate`` / ``place`` / ``rescale``).
* :mod:`repro.obs.estimators` -- predicted-vs-actual tracking for the §3
  online models: per-job and fleet MAPE, signed bias, and a windowed
  drift detector that flags stale estimators.
* :mod:`repro.obs.registry` -- counters, gauges, fixed-bucket histograms
  (with interpolated quantiles), ``timer()`` context managers and the
  per-interval :class:`PhaseProfiler`; off by default via
  :data:`NULL_REGISTRY`.
* :mod:`repro.obs.timeseries` -- a fixed-memory ring-buffer TSDB sampling
  the registry once per interval, downsampling on overflow.
* :mod:`repro.obs.export` -- Prometheus text exposition and the
  ``repro top`` cluster/job table.
* :mod:`repro.obs.summarize` -- turn a trace file into per-phase time
  breakdowns, span flame trees, estimator reports and per-job timelines.
"""

from repro.obs.estimators import (
    NULL_ESTIMATOR_TELEMETRY,
    SIGNAL_REMAINING,
    SIGNAL_SPEED,
    SIGNALS,
    EstimatorTelemetry,
    NullEstimatorTelemetry,
    SignalStats,
)
from repro.obs.export import (
    EXPORT_QUANTILES,
    render_prometheus,
    render_top,
    top_state,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_PROFILER,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullPhaseProfiler,
    NullRegistry,
    PhaseProfiler,
    active_registry,
    install_registry,
    quantile_from_snapshot,
    use_registry,
)
from repro.obs.spans import (
    NULL_SPAN_TRACER,
    NullSpanTracer,
    Span,
    SpanTracer,
    span_tracer_for,
)
from repro.obs.summarize import (
    decision_timeline,
    estimator_report,
    event_type_counts,
    job_timelines,
    phase_breakdown,
    render_span_flame,
    span_flame,
    span_tree,
    summarize_file,
    summarize_trace,
)
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    TimeSeries,
    TimeSeriesDB,
)
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_MISSING,
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_INTENT_REPLAYED,
    EVENT_JOB_RESTARTED,
    EVENT_KV_RETRY,
    EVENT_KV_RETRY_EXHAUSTED,
    EVENT_NODE_CORDONED,
    EVENT_NODE_FAILED,
    EVENT_NODE_LEASE_RENEWED,
    EVENT_NODE_RECOVERED,
    EVENT_PLACEMENT_DECIDED,
    EVENT_RESCALE_ROLLED_BACK,
    EVENT_SPAN,
    EVENT_STRAGGLER_DETECTED,
    EVENT_TASK_CRASHED,
    EVENT_TYPES,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_trace,
    read_trace_tolerant,
)

__all__ = [
    # tracer
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "read_trace",
    "read_trace_tolerant",
    "EVENT_TYPES",
    "EVENT_JOB_ARRIVED",
    "EVENT_ALLOCATION_DECIDED",
    "EVENT_PLACEMENT_DECIDED",
    "EVENT_JOB_RESCALED",
    "EVENT_STRAGGLER_DETECTED",
    "EVENT_JOB_COMPLETED",
    "EVENT_INTERVAL_TICK",
    "EVENT_NODE_FAILED",
    "EVENT_NODE_RECOVERED",
    "EVENT_TASK_CRASHED",
    "EVENT_JOB_RESTARTED",
    "EVENT_KV_RETRY",
    "EVENT_KV_RETRY_EXHAUSTED",
    "EVENT_RESCALE_ROLLED_BACK",
    "EVENT_CHECKPOINT_MISSING",
    "EVENT_NODE_CORDONED",
    "EVENT_NODE_LEASE_RENEWED",
    "EVENT_INTENT_REPLAYED",
    "EVENT_SPAN",
    "EVENT_ESTIMATOR_SAMPLE",
    "EVENT_ESTIMATOR_DRIFT",
    # spans
    "Span",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_SPAN_TRACER",
    "span_tracer_for",
    # estimators
    "EstimatorTelemetry",
    "NullEstimatorTelemetry",
    "NULL_ESTIMATOR_TELEMETRY",
    "SignalStats",
    "SIGNAL_SPEED",
    "SIGNAL_REMAINING",
    "SIGNALS",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "active_registry",
    "install_registry",
    "use_registry",
    "quantile_from_snapshot",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "NULL_PROFILER",
    # timeseries
    "TimeSeries",
    "TimeSeriesDB",
    "DEFAULT_CAPACITY",
    # export
    "render_prometheus",
    "render_top",
    "top_state",
    "EXPORT_QUANTILES",
    # summarize
    "phase_breakdown",
    "job_timelines",
    "decision_timeline",
    "summarize_trace",
    "summarize_file",
    "event_type_counts",
    "span_tree",
    "span_flame",
    "render_span_flame",
    "estimator_report",
]
