"""Structured observability: event tracing, metrics and profiling hooks.

The schedulers in this repository make one decision per scheduling
interval; understanding *why* a decision was made and *where* interval
time goes requires telemetry the paper's evaluation (and every perf PR
here) leans on. This package provides that substrate with zero external
dependencies:

* :mod:`repro.obs.tracer` -- typed JSONL event tracing
  (``job_arrived`` .. ``interval_tick``); off by default via
  :data:`NULL_TRACER`.
* :mod:`repro.obs.registry` -- counters, gauges, fixed-bucket histograms,
  ``timer()`` context managers and the per-interval
  :class:`PhaseProfiler`; off by default via :data:`NULL_REGISTRY`.
* :mod:`repro.obs.summarize` -- turn a trace file into per-phase time
  breakdowns and per-job decision timelines.
"""

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_PROFILER,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullPhaseProfiler,
    NullRegistry,
    PhaseProfiler,
    active_registry,
    install_registry,
    use_registry,
)
from repro.obs.summarize import (
    decision_timeline,
    job_timelines,
    phase_breakdown,
    summarize_file,
    summarize_trace,
)
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_MISSING,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_INTENT_REPLAYED,
    EVENT_JOB_RESTARTED,
    EVENT_KV_RETRY,
    EVENT_KV_RETRY_EXHAUSTED,
    EVENT_NODE_CORDONED,
    EVENT_NODE_FAILED,
    EVENT_NODE_LEASE_RENEWED,
    EVENT_NODE_RECOVERED,
    EVENT_PLACEMENT_DECIDED,
    EVENT_RESCALE_ROLLED_BACK,
    EVENT_STRAGGLER_DETECTED,
    EVENT_TASK_CRASHED,
    EVENT_TYPES,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_trace,
)

__all__ = [
    # tracer
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "read_trace",
    "EVENT_TYPES",
    "EVENT_JOB_ARRIVED",
    "EVENT_ALLOCATION_DECIDED",
    "EVENT_PLACEMENT_DECIDED",
    "EVENT_JOB_RESCALED",
    "EVENT_STRAGGLER_DETECTED",
    "EVENT_JOB_COMPLETED",
    "EVENT_INTERVAL_TICK",
    "EVENT_NODE_FAILED",
    "EVENT_NODE_RECOVERED",
    "EVENT_TASK_CRASHED",
    "EVENT_JOB_RESTARTED",
    "EVENT_KV_RETRY",
    "EVENT_KV_RETRY_EXHAUSTED",
    "EVENT_RESCALE_ROLLED_BACK",
    "EVENT_CHECKPOINT_MISSING",
    "EVENT_NODE_CORDONED",
    "EVENT_NODE_LEASE_RENEWED",
    "EVENT_INTENT_REPLAYED",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "active_registry",
    "install_registry",
    "use_registry",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "NULL_PROFILER",
    # summarize
    "phase_breakdown",
    "job_timelines",
    "decision_timeline",
    "summarize_trace",
    "summarize_file",
]
