"""Structured observability: tracing, spans, metrics, estimator telemetry.

The schedulers in this repository make one decision per scheduling
interval; understanding *why* a decision was made and *where* interval
time goes requires telemetry the paper's evaluation (and every perf PR
here) leans on. This package provides that substrate with zero external
dependencies:

* :mod:`repro.obs.tracer` -- typed JSONL event tracing
  (``job_arrived`` .. ``estimator_drift``); off by default via
  :data:`NULL_TRACER`.
* :mod:`repro.obs.spans` -- causal span tracing over the same stream:
  each scheduling interval / control-loop step becomes a flame tree
  (``interval`` -> ``fit`` / ``allocate`` / ``place`` / ``rescale``).
* :mod:`repro.obs.estimators` -- predicted-vs-actual tracking for the §3
  online models: per-job and fleet MAPE, signed bias, and a windowed
  drift detector that flags stale estimators.
* :mod:`repro.obs.registry` -- counters, gauges, fixed-bucket histograms
  (with interpolated quantiles), ``timer()`` context managers and the
  per-interval :class:`PhaseProfiler`; off by default via
  :data:`NULL_REGISTRY`.
* :mod:`repro.obs.timeseries` -- a fixed-memory ring-buffer TSDB sampling
  the registry once per interval, downsampling on overflow.
* :mod:`repro.obs.export` -- Prometheus text exposition and the
  ``repro top`` cluster/job table.
* :mod:`repro.obs.summarize` -- turn a trace file into per-phase time
  breakdowns, span flame trees, estimator reports and per-job timelines.
* :mod:`repro.obs.ledger` -- the scheduler decision ledger: compact
  ``decision`` events (grants with marginal gain and runner-up gap,
  denial reasons, placement provenance) with a sampling/budget knob;
  off by default via :data:`NULL_LEDGER`.
* :mod:`repro.obs.explain` -- replay a ledger into per-job timelines
  (``repro explain``) and align two runs to find the first divergent
  decision per job (``repro trace diff``).
"""

from repro.obs.estimators import (
    NULL_ESTIMATOR_TELEMETRY,
    SIGNAL_REMAINING,
    SIGNAL_SPEED,
    SIGNALS,
    EstimatorTelemetry,
    NullEstimatorTelemetry,
    SignalStats,
)
from repro.obs.export import (
    EXPORT_QUANTILES,
    render_prometheus,
    render_top,
    top_state,
)
from repro.obs.explain import (
    describe_decision,
    explain_job,
    explain_trace,
    format_trace_diff,
    trace_diff,
)
from repro.obs.ledger import (
    DENIAL_REASONS,
    LEDGER_MODES,
    NULL_LEDGER,
    DecisionLedger,
    NullDecisionLedger,
    active_ledger,
    install_ledger,
    use_ledger,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_PROFILER,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullPhaseProfiler,
    NullRegistry,
    PhaseProfiler,
    active_registry,
    install_registry,
    quantile_from_snapshot,
    use_registry,
)
from repro.obs.spans import (
    NULL_SPAN_TRACER,
    NullSpanTracer,
    Span,
    SpanTracer,
    span_tracer_for,
)
from repro.obs.summarize import (
    control_plane_summary,
    decision_summary,
    decision_timeline,
    estimator_report,
    event_type_counts,
    job_timelines,
    phase_breakdown,
    render_span_flame,
    span_flame,
    span_tree,
    summarize_file,
    summarize_trace,
)
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    TimeSeries,
    TimeSeriesDB,
)
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_MISSING,
    EVENT_CHECKPOINT_RECORDED,
    EVENT_DECISION,
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_INTENT_REPLAYED,
    EVENT_JOB_RESTARTED,
    EVENT_KV_RETRY,
    EVENT_KV_RETRY_EXHAUSTED,
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_NODE_CORDONED,
    EVENT_NODE_FAILED,
    EVENT_NODE_LEASE_REGRANT,
    EVENT_NODE_LEASE_RENEWED,
    EVENT_NODE_RECOVERED,
    EVENT_PLACEMENT_DECIDED,
    EVENT_RESCALE_ROLLED_BACK,
    EVENT_SPAN,
    EVENT_STRAGGLER_DETECTED,
    EVENT_TASK_CRASHED,
    EVENT_TYPES,
    EVENT_WRITE_FENCED,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_trace,
    read_trace_tolerant,
)

__all__ = [
    # tracer
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "read_trace",
    "read_trace_tolerant",
    "EVENT_TYPES",
    "EVENT_JOB_ARRIVED",
    "EVENT_ALLOCATION_DECIDED",
    "EVENT_PLACEMENT_DECIDED",
    "EVENT_JOB_RESCALED",
    "EVENT_STRAGGLER_DETECTED",
    "EVENT_JOB_COMPLETED",
    "EVENT_INTERVAL_TICK",
    "EVENT_NODE_FAILED",
    "EVENT_NODE_RECOVERED",
    "EVENT_TASK_CRASHED",
    "EVENT_JOB_RESTARTED",
    "EVENT_KV_RETRY",
    "EVENT_KV_RETRY_EXHAUSTED",
    "EVENT_RESCALE_ROLLED_BACK",
    "EVENT_CHECKPOINT_MISSING",
    "EVENT_NODE_CORDONED",
    "EVENT_NODE_LEASE_RENEWED",
    "EVENT_INTENT_REPLAYED",
    "EVENT_SPAN",
    "EVENT_ESTIMATOR_SAMPLE",
    "EVENT_ESTIMATOR_DRIFT",
    "EVENT_CHECKPOINT_RECORDED",
    "EVENT_LEADER_ELECTED",
    "EVENT_LEADER_DEPOSED",
    "EVENT_WRITE_FENCED",
    "EVENT_NODE_LEASE_REGRANT",
    "EVENT_DECISION",
    # ledger
    "DecisionLedger",
    "NullDecisionLedger",
    "NULL_LEDGER",
    "LEDGER_MODES",
    "DENIAL_REASONS",
    "active_ledger",
    "install_ledger",
    "use_ledger",
    # explain
    "describe_decision",
    "explain_job",
    "explain_trace",
    "trace_diff",
    "format_trace_diff",
    # spans
    "Span",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_SPAN_TRACER",
    "span_tracer_for",
    # estimators
    "EstimatorTelemetry",
    "NullEstimatorTelemetry",
    "NULL_ESTIMATOR_TELEMETRY",
    "SignalStats",
    "SIGNAL_SPEED",
    "SIGNAL_REMAINING",
    "SIGNALS",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "active_registry",
    "install_registry",
    "use_registry",
    "quantile_from_snapshot",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "NULL_PROFILER",
    # timeseries
    "TimeSeries",
    "TimeSeriesDB",
    "DEFAULT_CAPACITY",
    # export
    "render_prometheus",
    "render_top",
    "top_state",
    "EXPORT_QUANTILES",
    # summarize
    "phase_breakdown",
    "job_timelines",
    "decision_timeline",
    "decision_summary",
    "control_plane_summary",
    "summarize_trace",
    "summarize_file",
    "event_type_counts",
    "span_tree",
    "span_flame",
    "render_span_flame",
    "estimator_report",
]
