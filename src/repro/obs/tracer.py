"""Structured event tracing for the scheduler pipeline.

A :class:`Tracer` receives *typed* events -- ``job_arrived``,
``allocation_decided``, ``placement_decided``, ``job_rescaled``,
``straggler_detected``, ``job_completed``, ``interval_tick`` -- from the
simulation engine and the deployment control loop. Every event carries a
monotonically increasing ``seq`` number, the simulation (or step) time it
happened at, and event-specific fields.

Three implementations cover every use:

* :data:`NULL_TRACER` -- the default; truthiness-false so hot paths can skip
  building event payloads entirely (``if tracer: tracer.emit(...)``).
* :class:`RecordingTracer` -- keeps events in memory (tests, notebooks).
* :class:`JsonlTracer` -- streams events as JSON Lines to a file, one JSON
  object per line, readable by :mod:`repro.obs.summarize`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.common.errors import ConfigurationError

#: A job entered the system and was admitted by the engine.
EVENT_JOB_ARRIVED = "job_arrived"
#: The allocator granted a job its (workers, ps) counts for one interval.
EVENT_ALLOCATION_DECIDED = "allocation_decided"
#: The placer mapped a job's tasks onto servers for one interval.
EVENT_PLACEMENT_DECIDED = "placement_decided"
#: A running job's (workers, ps) changed and it paid the §5.4 scaling cost.
EVENT_JOB_RESCALED = "job_rescaled"
#: A straggler episode hit one of a job's workers this interval (§5.2).
EVENT_STRAGGLER_DETECTED = "straggler_detected"
#: A job reached its convergence stopping rule.
EVENT_JOB_COMPLETED = "job_completed"
#: One scheduling interval finished; carries the per-phase timings.
EVENT_INTERVAL_TICK = "interval_tick"
#: A server lost all capacity to an injected crash (``repro.faults``).
EVENT_NODE_FAILED = "node_failed"
#: A previously failed server's capacity came back.
EVENT_NODE_RECOVERED = "node_recovered"
#: One or more of a job's tasks died independently of their node.
EVENT_TASK_CRASHED = "task_crashed"
#: A job rolled back to its last checkpoint and pays restart overhead.
EVENT_JOB_RESTARTED = "job_restarted"
#: A transient KV-store failure was retried (``repro.common.retry``).
EVENT_KV_RETRY = "kv_retry"
#: A KV-store operation exhausted its retry budget and the error escaped.
EVENT_KV_RETRY_EXHAUSTED = "kv_retry_exhausted"
#: A mid-flight rescale failed and the job was rolled back to its previous pods.
EVENT_RESCALE_ROLLED_BACK = "rescale_rolled_back"
#: Recovery found no checkpoint for a job (fresh job or lost checkpoint).
EVENT_CHECKPOINT_MISSING = "checkpoint_missing"
#: A node's health lease lapsed and the control loop cordoned it.
EVENT_NODE_CORDONED = "node_cordoned"
#: A node heartbeat renewed its health lease.
EVENT_NODE_LEASE_RENEWED = "node_lease_renewed"
#: Recovery replayed a write-ahead intent left by a dead controller.
EVENT_INTENT_REPLAYED = "intent_replayed"
#: A causal span closed (``repro.obs.spans``): one timed node of the
#: per-interval flame tree, carrying ``span_id``/``parent_id``/``name``.
EVENT_SPAN = "span"
#: One prediction-vs-reality sample from the §3 estimators
#: (``repro.obs.estimators``): predicted, actual and relative error.
EVENT_ESTIMATOR_SAMPLE = "estimator_sample"
#: The windowed estimator error crossed the drift band: the online model
#: is persistently wrong and a refit (or operator attention) is warranted.
EVENT_ESTIMATOR_DRIFT = "estimator_drift"
#: A job's progress was checkpointed (fault runs only): carries ``job_id``
#: and the cumulative ``steps`` saved -- the anchor for the soak checker's
#: monotonic-checkpoint invariant.
EVENT_CHECKPOINT_RECORDED = "checkpoint_recorded"
#: A candidate won the leader election and minted a new fencing epoch.
EVENT_LEADER_ELECTED = "leader_elected"
#: A leader's reign ended (lease lapsed, resignation, or a successor
#: cleaned up its stale record); carries the deposed ``epoch``.
EVENT_LEADER_DEPOSED = "leader_deposed"
#: A deposed leader's write was rejected by its fenced store.
EVENT_WRITE_FENCED = "write_fenced"
#: A late node heartbeat re-granted a lapsed (but unswept) health lease.
EVENT_NODE_LEASE_REGRANT = "node_lease_regrant"
#: One scheduler decision record from the :mod:`repro.obs.ledger`: a
#: marginal-gain grant (with runner-up and gap), a per-job denial with its
#: reason, a placement provenance note (cache replay vs fresh, spill), or
#: a shrink-retry record. ``kind`` discriminates the sub-record.
EVENT_DECISION = "decision"
#: Terminal accounting record emitted once by a soak/simulation runner:
#: which jobs finished, which are legitimately unfinished, and any state
#: (pods, leases, intents) still held after teardown. The soak invariant
#: checker reconciles the whole stream against this event.
EVENT_RUN_COMPLETED = "run_completed"

#: Every event type a tracer accepts.
EVENT_TYPES = frozenset(
    {
        EVENT_JOB_ARRIVED,
        EVENT_ALLOCATION_DECIDED,
        EVENT_PLACEMENT_DECIDED,
        EVENT_JOB_RESCALED,
        EVENT_STRAGGLER_DETECTED,
        EVENT_JOB_COMPLETED,
        EVENT_INTERVAL_TICK,
        EVENT_NODE_FAILED,
        EVENT_NODE_RECOVERED,
        EVENT_TASK_CRASHED,
        EVENT_JOB_RESTARTED,
        EVENT_KV_RETRY,
        EVENT_KV_RETRY_EXHAUSTED,
        EVENT_RESCALE_ROLLED_BACK,
        EVENT_CHECKPOINT_MISSING,
        EVENT_NODE_CORDONED,
        EVENT_NODE_LEASE_RENEWED,
        EVENT_INTENT_REPLAYED,
        EVENT_LEADER_ELECTED,
        EVENT_LEADER_DEPOSED,
        EVENT_WRITE_FENCED,
        EVENT_NODE_LEASE_REGRANT,
        EVENT_SPAN,
        EVENT_ESTIMATOR_SAMPLE,
        EVENT_ESTIMATOR_DRIFT,
        EVENT_CHECKPOINT_RECORDED,
        EVENT_DECISION,
        EVENT_RUN_COMPLETED,
    }
)


class Tracer:
    """Base tracer: validates events and hands them to :meth:`_record`.

    Subclasses implement :meth:`_record`; callers only ever use
    :meth:`emit`. A tracer is truthy exactly when it is enabled, so the
    hot-path guard ``if tracer: tracer.emit(...)`` costs one bool check
    when tracing is off.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, event: str, time: float, **fields) -> Optional[Dict]:
        """Record one event; returns the event dict (or None when disabled)."""
        if event not in EVENT_TYPES:
            raise ConfigurationError(
                f"unknown trace event {event!r}; known: {sorted(EVENT_TYPES)}"
            )
        payload: Dict = {"seq": self._seq, "time": float(time), "event": event}
        payload.update(fields)
        self._seq += 1
        self._record(payload)
        return payload

    def _record(self, payload: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (a no-op by default)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __bool__(self) -> bool:
        return self.enabled


class NullTracer(Tracer):
    """The disabled tracer: every call is a no-op, truthiness is False."""

    enabled = False

    def emit(self, event: str, time: float, **fields) -> Optional[Dict]:
        return None

    def _record(self, payload: Dict) -> None:  # pragma: no cover - unreachable
        pass


#: Shared default instance -- hot paths compare against this cheaply.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Keeps every event in an in-memory list (``tracer.events``)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict] = []

    def _record(self, payload: Dict) -> None:
        self.events.append(payload)

    def of_type(self, event: str) -> List[Dict]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if e["event"] == event]

    def for_job(self, job_id: str) -> List[Dict]:
        """All recorded events carrying this ``job_id``, in emission order."""
        return [e for e in self.events if e.get("job_id") == job_id]


class JsonlTracer(Tracer):
    """Streams events to a JSON-Lines file (one JSON object per line)."""

    def __init__(self, destination: Union[str, TextIO]):
        super().__init__()
        if isinstance(destination, str):
            self._stream: TextIO = open(destination, "w", encoding="utf8")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False

    def _record(self, payload: Dict) -> None:
        self._stream.write(json.dumps(payload, separators=(",", ":")) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


def read_trace(source: Union[str, TextIO]) -> List[Dict]:
    """Parse a JSONL trace back into a list of event dicts.

    Raises :class:`ConfigurationError` on the first malformed line; use
    :func:`read_trace_tolerant` for traces that may be truncated or
    corrupted (a crashed writer, a partial download).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf8") as handle:
            return read_trace(handle)
    events = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from exc
    return events


def read_trace_tolerant(
    source: Union[str, TextIO],
) -> Tuple[List[Dict], int]:
    """Parse a JSONL trace, skipping corrupt lines instead of raising.

    Returns ``(events, skipped)`` where ``skipped`` counts the malformed
    lines (invalid JSON, or JSON that is not an object) that were dropped.
    A half-written final line -- the usual result of a writer killed
    mid-flush -- therefore costs one skipped line, not the whole report.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf8") as handle:
            return read_trace_tolerant(handle)
    events: List[Dict] = []
    skipped = 0
    for line in source:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(event, dict):
            skipped += 1
            continue
        events.append(event)
    return events, skipped
