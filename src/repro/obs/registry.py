"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of the observability layer (the tracer is
the event half). It is deliberately tiny and dependency-free:

* :class:`Counter` -- monotonically increasing totals (jobs admitted,
  allocation grants, pods created, ...).
* :class:`Gauge` -- last-written values (active jobs, leftover CPU, ...).
* :class:`Histogram` -- fixed-bucket distributions; the default buckets are
  tuned for phase timings in seconds.
* :meth:`MetricsRegistry.timer` -- a context manager that times its body
  into a histogram, used for the per-interval phase profiling hooks.

A process-wide *active* registry lets leaf algorithms
(:func:`repro.core.allocation.allocate`, :func:`repro.core.placement.place_jobs`)
record into whatever registry the caller installed without threading one
through every signature. The default active registry is
:data:`NULL_REGISTRY`, whose instruments are shared no-ops, so instrumented
hot paths cost one dict lookup and one no-op call when metrics are off.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Default histogram buckets (seconds): 10 µs .. 30 s, roughly log-spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    5e-3,
    0.025,
    0.1,
    0.5,
    2.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``bounds`` are upper bucket edges; one implicit overflow bucket catches
    everything beyond the last edge. ``bucket_counts[i]`` is the number of
    observations ``<= bounds[i]`` but greater than the previous edge.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        edges = tuple(float(b) for b in bounds)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                "histogram bounds must be non-empty and strictly increasing"
            )
        self.bounds = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-th quantile by linear interpolation within buckets.

        The rank is located in its bucket, then interpolated between the
        bucket's edges (the overflow bucket interpolates toward the
        observed maximum). Results are clamped to the observed
        ``[min, max]`` range, so degenerate bucket choices stay sane.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                upper = max(upper, lower)
                fraction = (rank - seen) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            seen += bucket_count
        return self.max

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(
                    # The overflow edge is the string "inf" so the snapshot
                    # stays strict JSON (json.dumps would emit Infinity).
                    list(self.bounds) + ["inf"],
                    self.bucket_counts,
                )
            ],
        }


def quantile_from_snapshot(histogram_snapshot: Dict, q: float) -> float:
    """:meth:`Histogram.quantile` over a ``snapshot()`` dict.

    Lets the Prometheus exporter (and any offline consumer of a
    ``--metrics-out`` JSON dump) estimate quantiles without the live
    :class:`Histogram` object. Uses the same within-bucket linear
    interpolation, clamped to the recorded ``[min, max]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("q must be in [0, 1]")
    count = histogram_snapshot.get("count", 0)
    if not count:
        return 0.0
    observed_min = histogram_snapshot.get("min")
    observed_max = histogram_snapshot.get("max")
    observed_min = 0.0 if observed_min is None else float(observed_min)
    observed_max = observed_min if observed_max is None else float(observed_max)
    rank = q * count
    seen = 0
    lower = 0.0
    for bucket in histogram_snapshot.get("buckets", []):
        bucket_count = bucket["count"]
        edge = bucket["le"]
        upper = observed_max if edge == "inf" else float(edge)
        if bucket_count:
            if seen + bucket_count >= rank:
                upper = max(upper, lower)
                fraction = (rank - seen) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, observed_min), observed_max)
            seen += bucket_count
        lower = upper if edge != "inf" else lower
    return observed_max


class _Timer:
    """Context manager that observes its wall-clock body into a histogram."""

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._histogram.observe(self.elapsed)


class MetricsRegistry:
    """Named instruments, created lazily on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` body into the histogram called *name*."""
        return _Timer(self.histogram(name))

    def snapshot(self) -> Dict:
        """A JSON-ready dump of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def __bool__(self) -> bool:
        return True


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullTimer:
    """Shared no-op timer context manager."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_TIMER = _NullTimer()


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, truthiness False."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name, bounds=DEFAULT_TIME_BUCKETS):  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def timer(self, name: str):  # type: ignore[override]
        return _NULL_TIMER

    def snapshot(self) -> Dict:
        return {}

    def __bool__(self) -> bool:
        return False


#: Shared default instance.
NULL_REGISTRY = NullRegistry()

#: The process-wide registry leaf algorithms record into.
_ACTIVE: MetricsRegistry = NULL_REGISTRY


def active_registry() -> MetricsRegistry:
    """The currently installed registry (:data:`NULL_REGISTRY` by default)."""
    return _ACTIVE


def install_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install *registry* as the active one; returns the previous registry.

    Passing ``None`` restores the null registry.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scope *registry* as the active one for a ``with`` block."""
    previous = install_registry(registry)
    try:
        yield active_registry()
    finally:
        install_registry(previous)


class PhaseProfiler:
    """Per-interval phase timing: the engine's profiling hook.

    Each phase (snapshot, fit, allocate, place, reconcile, progress, ...)
    is timed with a context manager. Durations land in two places: the
    current interval's dict (reset by :meth:`begin_interval`, read by
    :meth:`interval_timings` into the ``interval_tick`` trace event) and
    the cumulative per-phase histograms of the attached registry under
    ``phase.<name>``.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._current: Dict[str, float] = {}
        self._totals: Dict[str, List[float]] = {}  # name -> [count, total, max]

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._current[name] = self._current.get(name, 0.0) + elapsed
            stats = self._totals.get(name)
            if stats is None:
                stats = self._totals[name] = [0, 0.0, 0.0]
            stats[0] += 1
            stats[1] += elapsed
            stats[2] = max(stats[2], elapsed)
            self.metrics.histogram(f"phase.{name}").observe(elapsed)

    def begin_interval(self) -> None:
        self._current = {}

    def interval_timings(self) -> Dict[str, float]:
        """This interval's phase durations (seconds), by phase name."""
        return dict(self._current)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-phase stats: count, total, mean, max."""
        return {
            name: {
                "count": stats[0],
                "total": stats[1],
                "mean": stats[1] / stats[0] if stats[0] else 0.0,
                "max": stats[2],
            }
            for name, stats in sorted(self._totals.items())
        }


class NullPhaseProfiler(PhaseProfiler):
    """Profiling disabled: ``phase`` is a shared no-op context manager."""

    def __init__(self) -> None:
        super().__init__(NULL_REGISTRY)

    def phase(self, name: str):  # type: ignore[override]
        return _NULL_TIMER

    def begin_interval(self) -> None:
        pass

    def interval_timings(self) -> Dict[str, float]:
        return {}

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {}

    def __bool__(self) -> bool:
        return False


#: Shared default instance.
NULL_PROFILER = NullPhaseProfiler()
