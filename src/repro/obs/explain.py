"""Replay the decision ledger: per-job explanations and cross-run diffs.

Two consumers of the ``decision`` events the :mod:`repro.obs.ledger`
writes (plus the outcome events that were already on the stream):

* :func:`explain_job` -- "why did job J end up with 3 workers?": replays
  one job's grants, denials, placements, shrinks and rescales into a
  human-readable timeline with reasons and runner-up gaps. This is the
  ``repro explain`` subcommand.
* :func:`trace_diff` -- "why is OASiS 12% worse on seed 42?": aligns two
  runs of the same workload (different policy/seed/engine), finds the
  *first divergent decision* per job and attributes each job's JCT delta
  to it. This is ``repro trace diff A B`` and the arena's
  divergence-attribution report.

Both work on any trace: full-fidelity ledgers give decision-level
alignment; traces without ``decision`` events (sampled or off) fall back
to the coarser ``allocation_decided`` outcomes, so the tools degrade
rather than fail.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_DECISION,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
)

#: Events :func:`explain_job` renders, beyond ``decision`` itself.
_OUTCOME_EVENTS = (
    EVENT_JOB_ARRIVED,
    EVENT_ALLOCATION_DECIDED,
    EVENT_JOB_RESCALED,
    EVENT_JOB_COMPLETED,
)


def _fmt_gain(value) -> str:
    try:
        return f"{float(value):.4g}"
    except (TypeError, ValueError):
        return "?"


def describe_decision(event: Dict) -> str:
    """One human-readable line for a ``decision`` event (any ``kind``)."""
    kind = event.get("kind")
    if kind == "grant":
        task = event.get("task", "?")
        after = f"({event.get('workers', '?')}w, {event.get('ps', '?')}ps)"
        if task == "bundle":
            head = f"granted {event.get('workers', '?')}-bundle -> {after}"
            gain = f"surplus {_fmt_gain(event.get('gain'))}"
        else:
            head = f"granted +1 {task} -> {after}"
            gain = f"gain {_fmt_gain(event.get('gain'))}"
        parts = [head, gain]
        if event.get("index") is not None:
            parts.append(f"grant #{event['index']}")
        runner = event.get("runner_up")
        gap = event.get("runner_up_gap")
        if runner is not None:
            parts.append(f"runner-up {runner} (gap {_fmt_gain(gap)})")
        elif gap is not None:
            parts.append(f"edge over 2nd-best bundle {_fmt_gain(gap)}")
        if event.get("sampled"):
            parts.append("sampled")
        return ", ".join(parts)
    if kind == "deny":
        reason = event.get("reason", "?")
        details = []
        if event.get("stage"):
            details.append(f"stage={event['stage']}")
        if event.get("workers") is not None:
            details.append(f"at ({event['workers']}w, {event.get('ps', '?')}ps)")
        if event.get("gain") is not None:
            details.append(f"gain {_fmt_gain(event['gain'])}")
        if event.get("shared_shape"):
            details.append("shape already proven hopeless")
        suffix = f" ({', '.join(details)})" if details else ""
        return f"denied: {reason}{suffix}"
    if kind == "placement":
        provenance = event.get("provenance", "?")
        servers = event.get("servers", "?")
        spill = ", cross-server spill" if event.get("spill") else ""
        verb = "cache replay" if provenance == "cache" else "fresh placement"
        return f"{verb} on {servers} server(s){spill}"
    if kind == "shrink":
        req = event.get("requested", ["?", "?"])
        got = event.get("granted", ["?", "?"])
        return (
            f"shrunk to fit fragmentation: ({req[0]}w, {req[1]}ps) -> "
            f"({got[0]}w, {got[1]}ps)"
        )
    return f"decision ({kind})"


def _describe_outcome(event: Dict) -> str:
    kind = event.get("event")
    if kind == EVENT_JOB_ARRIVED:
        return f"arrived ({event.get('model', '?')}, {event.get('mode', '?')})"
    if kind == EVENT_ALLOCATION_DECIDED:
        return (
            f"interval allocation: w={event.get('workers')} "
            f"ps={event.get('ps')}"
        )
    if kind == EVENT_JOB_RESCALED:
        old = event.get("old", ["?", "?"])
        new = event.get("new", ["?", "?"])
        return (
            f"rescaled ({old[0]}, {old[1]}) -> ({new[0]}, {new[1]}), "
            f"overhead {event.get('overhead', 0):.0f}s"
        )
    if kind == EVENT_JOB_COMPLETED:
        return f"completed after {event.get('steps', 0):.0f} steps"
    return str(kind)


def explain_job(
    events: Sequence[Dict], job_id: str, at: Optional[float] = None
) -> List[str]:
    """One job's decision timeline as human-readable lines.

    ``at`` truncates the replay to events at or before that simulation
    time ("what did the scheduler know at T?"). Returns an empty list
    when the trace never mentions the job.
    """
    lines: List[str] = []
    final: Optional[Tuple] = None
    saw_decisions = False
    for event in events:
        if not isinstance(event, dict) or event.get("job_id") != job_id:
            continue
        kind = event.get("event")
        if kind not in _OUTCOME_EVENTS and kind != EVENT_DECISION:
            continue
        time = event.get("time")
        if at is not None and isinstance(time, (int, float)) and time > at:
            continue
        try:
            stamp = f"t={float(time):>10.0f}"
        except (TypeError, ValueError):
            stamp = "t=         ?"
        if kind == EVENT_DECISION:
            saw_decisions = True
            lines.append(f"{stamp}  {describe_decision(event)}")
        else:
            lines.append(f"{stamp}  {_describe_outcome(event)}")
        if kind == EVENT_ALLOCATION_DECIDED:
            final = (event.get("workers"), event.get("ps"))
    if lines:
        header = f"{job_id}: {len(lines)} decision/outcome events"
        if at is not None:
            header += f" (up to t={at:.0f})"
        if final is not None:
            header += f"; last interval allocation w={final[0]} ps={final[1]}"
        if not saw_decisions:
            lines.append(
                "note: no decision-ledger events in this trace (ledger off "
                "or sampled out); showing outcome events only"
            )
        lines.insert(0, header)
    return lines


def explain_trace(
    events: Sequence[Dict], job_id: str, at: Optional[float] = None
) -> str:
    """:func:`explain_job` joined into one printable block."""
    lines = explain_job(events, job_id, at=at)
    if not lines:
        known = sorted(
            {
                e.get("job_id")
                for e in events
                if isinstance(e, dict) and e.get("job_id")
            }
        )
        preview = ", ".join(known[:8]) + (" ..." if len(known) > 8 else "")
        return f"no events for job {job_id!r}; jobs in trace: {preview or '(none)'}"
    return "\n".join(lines)


# -- cross-run diff --------------------------------------------------------------


def _decision_key(event: Dict) -> Optional[Tuple]:
    """A structural fingerprint of one decision, comparable across runs.

    Floats (gains, surpluses) are excluded: two runs that made the *same*
    move for slightly different scores have not diverged in any way that
    affects the outcome.
    """
    kind = event.get("event")
    if kind == EVENT_DECISION:
        sub = event.get("kind")
        if sub == "grant":
            return (
                "grant",
                event.get("task"),
                event.get("workers"),
                event.get("ps"),
            )
        if sub == "deny":
            return ("deny", event.get("reason"))
        if sub == "placement":
            return (
                "placement",
                event.get("provenance"),
                event.get("servers"),
            )
        if sub == "shrink":
            return (
                "shrink",
                tuple(event.get("requested") or ()),
                tuple(event.get("granted") or ()),
            )
        return ("decision", sub)
    if kind == EVENT_ALLOCATION_DECIDED:
        return ("alloc", event.get("workers"), event.get("ps"))
    return None


def _job_sequences(
    events: Sequence[Dict],
) -> Tuple[Dict[str, List[Tuple[float, Tuple, Dict]]], Dict[str, float], Dict[str, float]]:
    """Per-job decision sequences plus arrival and completion times."""
    sequences: Dict[str, List[Tuple[float, Tuple, Dict]]] = {}
    arrivals: Dict[str, float] = {}
    completions: Dict[str, float] = {}
    for event in events:
        if not isinstance(event, dict):
            continue
        job_id = event.get("job_id")
        if not job_id:
            continue
        kind = event.get("event")
        if kind == EVENT_JOB_ARRIVED:
            arrivals[job_id] = float(
                event.get("arrival_time", event.get("time", 0.0)) or 0.0
            )
        elif kind == EVENT_JOB_COMPLETED:
            finish = event.get("completion_time", event.get("time"))
            if isinstance(finish, (int, float)):
                completions[job_id] = float(finish)
        key = _decision_key(event)
        if key is not None:
            try:
                time = float(event.get("time", 0.0))
            except (TypeError, ValueError):
                time = 0.0
            sequences.setdefault(job_id, []).append((time, key, event))
    return sequences, arrivals, completions


def trace_diff(
    events_a: Sequence[Dict],
    events_b: Sequence[Dict],
    label_a: str = "A",
    label_b: str = "B",
) -> Dict:
    """Align two runs of the same workload; find per-job divergence points.

    For every job appearing in either trace, walks its decision sequences
    in lockstep and records the first index where they disagree (or where
    one run simply has more decisions). Each divergent job also carries
    its JCT in both runs and the delta, so policy gaps can be attributed:
    "job-7 lost 1800 s, and its first divergence was run B denying it
    capacity at t=600".

    Returns a plain dict (JSON-friendly)::

        {"label_a": ..., "label_b": ...,
         "jobs": {job_id: {"divergence": {...} | None,
                           "jct_a": ..., "jct_b": ..., "jct_delta": ...}},
         "divergent_jobs": int, "compared_jobs": int,
         "total_jct_delta": float}
    """
    seq_a, arr_a, done_a = _job_sequences(events_a)
    seq_b, arr_b, done_b = _job_sequences(events_b)
    jobs: Dict[str, Dict] = {}
    divergent = 0
    total_delta = 0.0
    for job_id in sorted(set(seq_a) | set(seq_b) | set(arr_a) | set(arr_b)):
        a = seq_a.get(job_id, [])
        b = seq_b.get(job_id, [])
        divergence: Optional[Dict] = None
        for index in range(max(len(a), len(b))):
            if index >= len(a):
                time_b, _, ev_b = b[index]
                divergence = {
                    "index": index,
                    "time_a": None,
                    "time_b": time_b,
                    "a": None,
                    "b": describe_decision(ev_b)
                    if ev_b.get("event") == EVENT_DECISION
                    else _describe_outcome(ev_b),
                }
                break
            if index >= len(b):
                time_a, _, ev_a = a[index]
                divergence = {
                    "index": index,
                    "time_a": time_a,
                    "time_b": None,
                    "a": describe_decision(ev_a)
                    if ev_a.get("event") == EVENT_DECISION
                    else _describe_outcome(ev_a),
                    "b": None,
                }
                break
            time_a, key_a, ev_a = a[index]
            time_b, key_b, ev_b = b[index]
            if key_a != key_b:
                divergence = {
                    "index": index,
                    "time_a": time_a,
                    "time_b": time_b,
                    "a": describe_decision(ev_a)
                    if ev_a.get("event") == EVENT_DECISION
                    else _describe_outcome(ev_a),
                    "b": describe_decision(ev_b)
                    if ev_b.get("event") == EVENT_DECISION
                    else _describe_outcome(ev_b),
                }
                break
        jct_a = jct_b = jct_delta = None
        if job_id in done_a and job_id in arr_a:
            jct_a = done_a[job_id] - arr_a[job_id]
        if job_id in done_b and job_id in arr_b:
            jct_b = done_b[job_id] - arr_b[job_id]
        if jct_a is not None and jct_b is not None:
            jct_delta = jct_b - jct_a
            total_delta += jct_delta
        if divergence is not None:
            divergent += 1
        jobs[job_id] = {
            "divergence": divergence,
            "jct_a": jct_a,
            "jct_b": jct_b,
            "jct_delta": jct_delta,
        }
    return {
        "label_a": label_a,
        "label_b": label_b,
        "jobs": jobs,
        "compared_jobs": len(jobs),
        "divergent_jobs": divergent,
        "total_jct_delta": round(total_delta, 2),
    }


def format_trace_diff(diff: Dict, max_jobs: Optional[int] = None) -> str:
    """Render a :func:`trace_diff` result as a printable report.

    Jobs are ordered by absolute JCT delta (largest damage first), jobs
    with no divergence and no delta are summarised in one line.
    """
    label_a = diff.get("label_a", "A")
    label_b = diff.get("label_b", "B")
    lines = [
        f"trace diff: {label_a} vs {label_b} -- "
        f"{diff.get('divergent_jobs', 0)}/{diff.get('compared_jobs', 0)} "
        f"job(s) diverged, total JCT delta "
        f"{diff.get('total_jct_delta', 0.0):+.0f} s ({label_b} - {label_a})"
    ]
    jobs = diff.get("jobs", {})

    def damage(item) -> float:
        delta = item[1].get("jct_delta")
        return abs(delta) if delta is not None else 0.0

    interesting = [
        (job_id, info)
        for job_id, info in sorted(jobs.items(), key=damage, reverse=True)
        if info.get("divergence") is not None or info.get("jct_delta")
    ]
    identical = len(jobs) - len(interesting)
    shown = interesting if max_jobs is None else interesting[:max_jobs]
    for job_id, info in shown:
        delta = info.get("jct_delta")
        if delta is not None:
            lines.append(f"\n{job_id}: JCT delta {delta:+.0f} s")
        else:
            jct_a, jct_b = info.get("jct_a"), info.get("jct_b")
            status = (
                f"finished only in {label_a}"
                if jct_a is not None and jct_b is None
                else f"finished only in {label_b}"
                if jct_b is not None and jct_a is None
                else "unfinished in both"
            )
            lines.append(f"\n{job_id}: {status}")
        div = info.get("divergence")
        if div is None:
            lines.append("  decisions identical in both runs")
            continue
        lines.append(f"  first divergence at decision #{div['index']}:")
        time_a = div.get("time_a")
        time_b = div.get("time_b")
        a_text = div.get("a") or "(no further decisions)"
        b_text = div.get("b") or "(no further decisions)"
        a_stamp = f"t={time_a:.0f}" if time_a is not None else "t=-"
        b_stamp = f"t={time_b:.0f}" if time_b is not None else "t=-"
        lines.append(f"    {label_a} {a_stamp}: {a_text}")
        lines.append(f"    {label_b} {b_stamp}: {b_text}")
    if len(interesting) > len(shown):
        lines.append(f"\n... {len(interesting) - len(shown)} more divergent job(s)")
    if identical:
        lines.append(
            f"\n{identical} job(s) made identical decisions with equal outcomes"
        )
    return "\n".join(lines)
