"""Turn a JSONL trace into a human-readable report.

Two views are produced from the same event stream:

* **Per-phase time breakdown** -- aggregated from the ``phases`` field of
  ``interval_tick`` events: where does a scheduling interval's wall-clock
  time go (snapshot, fit, allocate, place, reconcile, progress)?
* **Per-job decision timeline** -- every ``job_*`` / ``*_decided`` event
  for each job in order: when it arrived, what it was granted each
  interval, when it was rescaled, when it completed.

Usage::

    python -m repro.obs.summarize trace.jsonl
    optimus-repro trace trace.jsonl

or programmatically through :func:`summarize_trace`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_PLACEMENT_DECIDED,
    EVENT_STRAGGLER_DETECTED,
    read_trace,
)
from repro.report import format_table


def phase_breakdown(events: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Aggregate ``interval_tick.phases`` into per-phase totals.

    Returns ``{phase: {count, total, mean, share}}`` where ``share`` is the
    phase's fraction of all profiled time across the trace.
    """
    totals: Dict[str, List[float]] = {}
    for event in events:
        if event.get("event") != EVENT_INTERVAL_TICK:
            continue
        for phase, seconds in (event.get("phases") or {}).items():
            stats = totals.setdefault(phase, [0.0, 0.0])
            stats[0] += 1
            stats[1] += float(seconds)
    grand_total = sum(stats[1] for stats in totals.values())
    return {
        phase: {
            "count": stats[0],
            "total": stats[1],
            "mean": stats[1] / stats[0] if stats[0] else 0.0,
            "share": stats[1] / grand_total if grand_total > 0 else 0.0,
        }
        for phase, stats in sorted(totals.items())
    }


def job_timelines(events: Sequence[Dict]) -> Dict[str, List[Dict]]:
    """Group per-job events (anything carrying ``job_id``) by job, in order."""
    timelines: Dict[str, List[Dict]] = {}
    for event in events:
        job_id = event.get("job_id")
        if job_id is not None:
            timelines.setdefault(job_id, []).append(event)
    return timelines


def _describe(event: Dict) -> str:
    kind = event["event"]
    if kind == EVENT_JOB_ARRIVED:
        return f"arrived ({event.get('model', '?')}, {event.get('mode', '?')})"
    if kind == EVENT_ALLOCATION_DECIDED:
        return f"allocated w={event.get('workers')} ps={event.get('ps')}"
    if kind == EVENT_PLACEMENT_DECIDED:
        return f"placed on {event.get('servers')} server(s)"
    if kind == EVENT_JOB_RESCALED:
        old = event.get("old", ["?", "?"])
        new = event.get("new", ["?", "?"])
        return (
            f"rescaled ({old[0]}, {old[1]}) -> ({new[0]}, {new[1]}), "
            f"overhead {event.get('overhead', 0):.0f}s"
        )
    if kind == EVENT_STRAGGLER_DETECTED:
        return f"straggler episode(s): {event.get('episodes')}"
    if kind == EVENT_JOB_COMPLETED:
        return f"completed after {event.get('steps', 0):.0f} steps"
    return kind


def decision_timeline(events: Sequence[Dict], job_id: str) -> List[str]:
    """Human-readable one-liners for one job's lifecycle."""
    lines = []
    for event in job_timelines(events).get(job_id, []):
        lines.append(f"t={event['time']:>10.0f}  {_describe(event)}")
    return lines


def summarize_trace(
    events: Sequence[Dict], max_events_per_job: Optional[int] = 8
) -> str:
    """Render the full report: phase breakdown + per-job timelines."""
    sections: List[str] = []

    breakdown = phase_breakdown(events)
    sections.append(f"trace summary: {len(events)} events")
    if breakdown:
        rows = [
            [
                phase,
                int(stats["count"]),
                stats["total"],
                stats["mean"] * 1e3,
                100.0 * stats["share"],
            ]
            for phase, stats in sorted(
                breakdown.items(), key=lambda kv: -kv[1]["total"]
            )
        ]
        sections.append("")
        sections.append("per-phase time breakdown:")
        sections.append(
            format_table(
                ["phase", "intervals", "total (s)", "mean (ms)", "share (%)"],
                rows,
            )
        )

    timelines = job_timelines(events)
    if timelines:
        sections.append("")
        sections.append("per-job decision timelines:")
        for job_id in sorted(timelines):
            job_events = timelines[job_id]
            sections.append(f"\n{job_id} ({len(job_events)} events):")
            shown = job_events
            if max_events_per_job is not None and len(shown) > max_events_per_job:
                head = max_events_per_job // 2
                tail = max_events_per_job - head
                omitted = len(shown) - head - tail
                shown = (
                    shown[:head]
                    + [{"time": float("nan"), "event": f"... {omitted} more ..."}]
                    + shown[-tail:]
                )
            for event in shown:
                if event["event"].startswith("..."):
                    sections.append(f"  {event['event']}")
                else:
                    sections.append(f"  t={event['time']:>10.0f}  {_describe(event)}")
    return "\n".join(sections)


def summarize_file(path: str, max_events_per_job: Optional[int] = 8) -> str:
    """Read a JSONL trace file and render its report."""
    return summarize_trace(read_trace(path), max_events_per_job)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Summarise a JSONL trace produced by --trace-out.",
    )
    parser.add_argument("trace", help="path to the .jsonl trace file")
    parser.add_argument(
        "--max-events-per-job",
        type=int,
        default=8,
        help="truncate each job's timeline to this many events (0 = no limit)",
    )
    args = parser.parse_args(argv)
    limit = args.max_events_per_job if args.max_events_per_job > 0 else None
    print(summarize_file(args.trace, max_events_per_job=limit))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
