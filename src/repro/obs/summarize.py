"""Turn a JSONL trace into a human-readable report.

Several views are produced from the same event stream:

* **Event inventory** -- how many events of each type, with anything this
  build does not recognise collected into an ``unknown`` bucket (traces
  from newer builds still summarise instead of crashing).
* **Per-phase time breakdown** -- aggregated from the ``phases`` field of
  ``interval_tick`` events: where does a scheduling interval's wall-clock
  time go (snapshot, fit, allocate, place, reconcile, progress)? Reported
  with p50/p95/p99 over the per-interval samples, not just the mean.
* **Span flame tree** -- ``span`` events carry ``span_id``/``parent_id``,
  so :func:`span_tree` reconstructs each interval's causal tree and
  :func:`span_flame` aggregates identical paths (``interval > schedule >
  allocate``) across the whole trace.
* **Estimator report** -- per-job and fleet speed / loss-curve MAPE and
  bias recomputed from ``estimator_sample`` events, plus drift events.
* **Decision ledger summary** -- grant / denial / placement-provenance
  tallies from ``decision`` events (the per-job replay lives in
  ``repro explain``).
* **Control-plane summary** -- leader elections, depositions, fenced
  writes, node-lease re-grants and checkpoints from the HA events.
* **Per-job decision timeline** -- every ``job_*`` / ``*_decided`` event
  for each job in order.

File reads are *tolerant*: corrupt or truncated JSONL lines are skipped
and counted, never fatal -- a trace cut short by a crash is precisely the
one an operator needs to read.

Usage::

    python -m repro.obs.summarize trace.jsonl
    optimus-repro trace trace.jsonl

or programmatically through :func:`summarize_trace`.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter as TallyCounter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.explain import describe_decision
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_RECORDED,
    EVENT_DECISION,
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_NODE_LEASE_REGRANT,
    EVENT_PLACEMENT_DECIDED,
    EVENT_SPAN,
    EVENT_STRAGGLER_DETECTED,
    EVENT_TYPES,
    EVENT_WRITE_FENCED,
    read_trace,
    read_trace_tolerant,
)
from repro.report import format_table


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an unsorted sample (q in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def event_type_counts(
    events: Sequence[Dict],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Tally events by type: ``(known, unknown)`` dicts.

    Event types this build does not declare in ``EVENT_TYPES`` (a trace
    written by a newer build, or hand-edited) land in the second dict
    rather than being dropped or crashing the report.
    """
    known: TallyCounter = TallyCounter()
    unknown: TallyCounter = TallyCounter()
    for event in events:
        kind = event.get("event")
        if kind in EVENT_TYPES:
            known[kind] += 1
        else:
            unknown[str(kind)] += 1
    return dict(known), dict(unknown)


def phase_breakdown(events: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Aggregate ``interval_tick.phases`` into per-phase statistics.

    Returns ``{phase: {count, total, mean, share, p50, p95, p99}}`` where
    ``share`` is the phase's fraction of all profiled time across the
    trace and the percentiles are over per-interval samples (seconds).
    """
    samples: Dict[str, List[float]] = {}
    for event in events:
        if event.get("event") != EVENT_INTERVAL_TICK:
            continue
        for phase, seconds in (event.get("phases") or {}).items():
            samples.setdefault(phase, []).append(float(seconds))
    grand_total = sum(sum(values) for values in samples.values())
    breakdown: Dict[str, Dict[str, float]] = {}
    for phase, values in sorted(samples.items()):
        total = sum(values)
        breakdown[phase] = {
            "count": float(len(values)),
            "total": total,
            "mean": total / len(values),
            "share": total / grand_total if grand_total > 0 else 0.0,
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
        }
    return breakdown


# -- span flame trees -----------------------------------------------------------


def span_tree(events: Sequence[Dict]) -> List[Dict]:
    """Reconstruct the causal span forest from ``span`` events.

    Returns the root spans (``parent_id`` is null), each a dict with a
    ``children`` list, in emission order. Because spans are emitted on
    close (children before parents), the whole stream is buffered first;
    a span whose parent never closed (the trace was cut mid-interval) is
    promoted to a root rather than dropped.
    """
    nodes: Dict[int, Dict] = {}
    order: List[int] = []
    for event in events:
        if event.get("event") != EVENT_SPAN:
            continue
        node = dict(event)
        node["children"] = []
        nodes[node["span_id"]] = node
        order.append(node["span_id"])
    roots: List[Dict] = []
    for span_id in order:
        node = nodes[span_id]
        parent = node.get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def _walk_paths(
    node: Dict, prefix: str, acc: Dict[str, List[float]]
) -> None:
    path = f"{prefix} > {node['name']}" if prefix else node["name"]
    acc.setdefault(path, []).append(float(node.get("duration", 0.0)))
    for child in node["children"]:
        _walk_paths(child, path, acc)


def span_flame(events: Sequence[Dict]) -> Dict[str, Dict[str, float]]:
    """Aggregate span durations by tree path across the whole trace.

    ``{"interval > schedule > allocate": {count, total, mean, p95}}`` --
    the flame-graph view, merged over every interval.
    """
    acc: Dict[str, List[float]] = {}
    for root in span_tree(events):
        _walk_paths(root, "", acc)
    return {
        path: {
            "count": float(len(values)),
            "total": sum(values),
            "mean": sum(values) / len(values),
            "p95": _percentile(values, 0.95),
        }
        for path, values in acc.items()
    }


def render_span_flame(events: Sequence[Dict]) -> List[str]:
    """Indented flame-tree lines, deepest paths nested under their parents."""
    flame = span_flame(events)
    lines = []
    for path in sorted(flame, key=lambda p: (p.count(" > "), p)):
        stats = flame[path]
        depth = path.count(" > ")
        name = path.rsplit(" > ", 1)[-1]
        lines.append(
            f"{'  ' * depth}{name:<12} x{int(stats['count']):<5} "
            f"total {stats['total'] * 1e3:8.1f} ms   "
            f"mean {stats['mean'] * 1e3:7.2f} ms   "
            f"p95 {stats['p95'] * 1e3:7.2f} ms"
        )
    return lines


# -- estimator quality ----------------------------------------------------------


def estimator_report(events: Sequence[Dict]) -> Dict:
    """Recompute estimator quality from ``estimator_sample`` events alone.

    Returns ``{"fleet": {signal: {count, mape, bias}}, "jobs": {job_id:
    {signal: {...}}}, "drift": [drift events]}`` -- the same numbers the
    live :class:`~repro.obs.estimators.EstimatorTelemetry` maintains, so
    a trace file is sufficient to audit prediction quality offline.
    """
    per_job: Dict[str, Dict[str, List[float]]] = {}
    fleet: Dict[str, List[float]] = {}
    drift: List[Dict] = []
    for event in events:
        kind = event.get("event")
        if kind == EVENT_ESTIMATOR_SAMPLE:
            signal = event.get("signal", "?")
            error = float(event.get("error", 0.0))
            fleet.setdefault(signal, []).append(error)
            per_job.setdefault(event.get("job_id", "?"), {}).setdefault(
                signal, []
            ).append(error)
        elif kind == EVENT_ESTIMATOR_DRIFT:
            drift.append(event)

    def stats(errors: List[float]) -> Dict[str, float]:
        return {
            "count": float(len(errors)),
            "mape": sum(abs(e) for e in errors) / len(errors),
            "bias": sum(errors) / len(errors),
        }

    return {
        "fleet": {signal: stats(errs) for signal, errs in sorted(fleet.items())},
        "jobs": {
            job_id: {signal: stats(errs) for signal, errs in sorted(signals.items())}
            for job_id, signals in sorted(per_job.items())
        },
        "drift": drift,
    }


def decision_summary(events: Sequence[Dict]) -> Dict[str, Dict[str, int]]:
    """Tally ``decision`` ledger events by kind.

    Returns ``{"grants": {task: n}, "denials": {reason: n}, "placements":
    {provenance: n}, "shrinks": {"shrink": n}, "sampled": {"sampled": n}}``
    with empty inner dicts when the trace carries no ledger. Unknown
    decision kinds are ignored (forward compatibility with newer builds).
    """
    grants: TallyCounter = TallyCounter()
    denials: TallyCounter = TallyCounter()
    placements: TallyCounter = TallyCounter()
    shrinks = 0
    sampled = 0
    for event in events:
        if event.get("event") != EVENT_DECISION:
            continue
        kind = event.get("kind")
        if kind == "grant":
            grants[str(event.get("task", "?"))] += 1
            if event.get("sampled"):
                sampled += 1
        elif kind == "deny":
            denials[str(event.get("reason", "?"))] += 1
        elif kind == "placement":
            placements[str(event.get("provenance", "?"))] += 1
        elif kind == "shrink":
            shrinks += 1
    return {
        "grants": dict(grants),
        "denials": dict(denials),
        "placements": dict(placements),
        "shrinks": {"shrink": shrinks} if shrinks else {},
        "sampled": {"sampled": sampled} if sampled else {},
    }


def control_plane_summary(events: Sequence[Dict]) -> Dict[str, int]:
    """Tally HA control-plane events: elections, fencing, lease re-grants."""
    tally = {
        "leader_elections": 0,
        "leader_depositions": 0,
        "writes_fenced": 0,
        "lease_regrants": 0,
        "checkpoints_recorded": 0,
    }
    for event in events:
        kind = event.get("event")
        if kind == EVENT_LEADER_ELECTED:
            tally["leader_elections"] += 1
        elif kind == EVENT_LEADER_DEPOSED:
            tally["leader_depositions"] += 1
        elif kind == EVENT_WRITE_FENCED:
            tally["writes_fenced"] += 1
        elif kind == EVENT_NODE_LEASE_REGRANT:
            tally["lease_regrants"] += 1
        elif kind == EVENT_CHECKPOINT_RECORDED:
            tally["checkpoints_recorded"] += 1
    return tally


def job_timelines(events: Sequence[Dict]) -> Dict[str, List[Dict]]:
    """Group per-job events (anything carrying ``job_id``) by job, in order.

    ``span``, ``estimator_sample`` and ``decision`` events are excluded:
    they carry ``job_id`` but belong to the flame-tree / estimator /
    ledger views, and at many per interval they would drown the decision
    timeline (``repro explain`` renders the ledger per job instead).
    """
    timelines: Dict[str, List[Dict]] = {}
    for event in events:
        if event.get("event") in (
            EVENT_SPAN,
            EVENT_ESTIMATOR_SAMPLE,
            EVENT_DECISION,
        ):
            continue
        job_id = event.get("job_id")
        if job_id is not None:
            timelines.setdefault(job_id, []).append(event)
    return timelines


def _describe(event: Dict) -> str:
    kind = event["event"]
    if kind == EVENT_JOB_ARRIVED:
        return f"arrived ({event.get('model', '?')}, {event.get('mode', '?')})"
    if kind == EVENT_ALLOCATION_DECIDED:
        return f"allocated w={event.get('workers')} ps={event.get('ps')}"
    if kind == EVENT_PLACEMENT_DECIDED:
        return f"placed on {event.get('servers')} server(s)"
    if kind == EVENT_JOB_RESCALED:
        old = event.get("old", ["?", "?"])
        new = event.get("new", ["?", "?"])
        return (
            f"rescaled ({old[0]}, {old[1]}) -> ({new[0]}, {new[1]}), "
            f"overhead {event.get('overhead', 0):.0f}s"
        )
    if kind == EVENT_STRAGGLER_DETECTED:
        return f"straggler episode(s): {event.get('episodes')}"
    if kind == EVENT_JOB_COMPLETED:
        return f"completed after {event.get('steps', 0):.0f} steps"
    if kind == EVENT_ESTIMATOR_DRIFT:
        return (
            f"estimator drift ({event.get('signal', '?')}): window MAPE "
            f"{100 * event.get('window_mape', 0.0):.0f}%"
        )
    if kind == EVENT_CHECKPOINT_RECORDED:
        return f"checkpoint recorded at {event.get('steps', 0):.0f} steps"
    if kind == EVENT_LEADER_ELECTED:
        return (
            f"leader elected: {event.get('leader', '?')} "
            f"(epoch {event.get('epoch', '?')})"
        )
    if kind == EVENT_LEADER_DEPOSED:
        return (
            f"leader deposed: {event.get('leader', '?')} "
            f"(epoch {event.get('epoch', '?')}, {event.get('reason', '?')})"
        )
    if kind == EVENT_WRITE_FENCED:
        return (
            f"write fenced: {event.get('op', '?')} {event.get('key', '?')} "
            f"by stale {event.get('leader', '?')} "
            f"(epoch {event.get('epoch', '?')})"
        )
    if kind == EVENT_NODE_LEASE_REGRANT:
        return f"node lease re-granted: {event.get('server', '?')}"
    if kind == EVENT_DECISION:
        return describe_decision(event)
    return kind


def decision_timeline(events: Sequence[Dict], job_id: str) -> List[str]:
    """Human-readable one-liners for one job's lifecycle."""
    lines = []
    for event in job_timelines(events).get(job_id, []):
        lines.append(f"t={event['time']:>10.0f}  {_describe(event)}")
    return lines


def summarize_trace(
    events: Sequence[Dict],
    max_events_per_job: Optional[int] = 8,
    skipped_lines: int = 0,
) -> str:
    """Render the full report: inventory, phases, spans, estimators, jobs."""
    sections: List[str] = []

    sections.append(f"trace summary: {len(events)} events")
    if skipped_lines:
        sections.append(
            f"warning: skipped {skipped_lines} corrupt/truncated line(s)"
        )
    known, unknown = event_type_counts(events)
    if known or unknown:
        inventory = ", ".join(
            f"{kind}={count}" for kind, count in sorted(known.items())
        )
        sections.append(f"event types: {inventory}")
        if unknown:
            unknown_text = ", ".join(
                f"{kind}={count}" for kind, count in sorted(unknown.items())
            )
            sections.append(f"unknown event types: {unknown_text}")

    breakdown = phase_breakdown(events)
    if breakdown:
        rows = [
            [
                phase,
                int(stats["count"]),
                stats["total"],
                stats["mean"] * 1e3,
                stats["p50"] * 1e3,
                stats["p95"] * 1e3,
                stats["p99"] * 1e3,
                100.0 * stats["share"],
            ]
            for phase, stats in sorted(
                breakdown.items(), key=lambda kv: -kv[1]["total"]
            )
        ]
        sections.append("")
        sections.append("per-phase time breakdown:")
        sections.append(
            format_table(
                [
                    "phase", "intervals", "total (s)", "mean (ms)",
                    "p50 (ms)", "p95 (ms)", "p99 (ms)", "share (%)",
                ],
                rows,
            )
        )

    flame_lines = render_span_flame(events)
    if flame_lines:
        sections.append("")
        sections.append("span flame tree (aggregated across intervals):")
        sections.extend(flame_lines)

    est = estimator_report(events)
    if est["fleet"]:
        sections.append("")
        sections.append("estimator quality (from estimator_sample events):")
        rows = [
            [
                job_id,
                signal,
                int(stats["count"]),
                100.0 * stats["mape"],
                100.0 * stats["bias"],
            ]
            for job_id, signals in [("fleet", est["fleet"])]
            + list(est["jobs"].items())
            for signal, stats in signals.items()
        ]
        sections.append(
            format_table(
                ["job", "signal", "samples", "MAPE (%)", "bias (%)"], rows
            )
        )
        if est["drift"]:
            sections.append(
                f"drift events: {len(est['drift'])} "
                + ", ".join(
                    f"{d.get('job_id', '?')}/{d.get('signal', '?')}"
                    f"@t={d.get('time', 0):.0f}"
                    for d in est["drift"]
                )
            )

    decisions = decision_summary(events)
    if any(decisions.values()):
        sections.append("")
        sections.append("decision ledger:")
        if decisions["grants"]:
            grants_text = ", ".join(
                f"{task}={count}"
                for task, count in sorted(decisions["grants"].items())
            )
            total = sum(decisions["grants"].values())
            sections.append(f"  grants: {total} ({grants_text})")
        if decisions["sampled"]:
            sections.append(
                f"  sampled grants: {decisions['sampled']['sampled']} "
                "(ledger ran in sampled mode; dropped grants are "
                "counters-only)"
            )
        if decisions["denials"]:
            denials_text = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(decisions["denials"].items())
            )
            sections.append(f"  denials: {denials_text}")
        if decisions["placements"]:
            placements_text = ", ".join(
                f"{prov}={count}"
                for prov, count in sorted(decisions["placements"].items())
            )
            sections.append(f"  placements: {placements_text}")
        if decisions["shrinks"]:
            sections.append(f"  shrinks: {decisions['shrinks']['shrink']}")
        sections.append(
            "  (replay one job with: repro explain TRACE --job JOB)"
        )

    control = control_plane_summary(events)
    if any(control.values()):
        sections.append("")
        sections.append("control plane (HA):")
        sections.append(
            "  "
            + ", ".join(
                f"{name}={count}" for name, count in control.items() if count
            )
        )

    timelines = job_timelines(events)
    if timelines:
        sections.append("")
        sections.append("per-job decision timelines:")
        for job_id in sorted(timelines):
            job_events = timelines[job_id]
            sections.append(f"\n{job_id} ({len(job_events)} events):")
            shown = job_events
            if max_events_per_job is not None and len(shown) > max_events_per_job:
                head = max_events_per_job // 2
                tail = max_events_per_job - head
                omitted = len(shown) - head - tail
                shown = (
                    shown[:head]
                    + [{"time": float("nan"), "event": f"... {omitted} more ..."}]
                    + shown[-tail:]
                )
            for event in shown:
                if event["event"].startswith("..."):
                    sections.append(f"  {event['event']}")
                else:
                    sections.append(f"  t={event['time']:>10.0f}  {_describe(event)}")
    return "\n".join(sections)


def summarize_file(path: str, max_events_per_job: Optional[int] = 8) -> str:
    """Read a JSONL trace file (tolerantly) and render its report."""
    events, skipped = read_trace_tolerant(path)
    return summarize_trace(
        events, max_events_per_job, skipped_lines=skipped
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Summarise a JSONL trace produced by --trace-out.",
    )
    parser.add_argument("trace", help="path to the .jsonl trace file")
    parser.add_argument(
        "--max-events-per-job",
        type=int,
        default=8,
        help="truncate each job's timeline to this many events (0 = no limit)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on corrupt lines instead of skipping them",
    )
    args = parser.parse_args(argv)
    limit = args.max_events_per_job if args.max_events_per_job > 0 else None
    if args.strict:
        print(summarize_trace(read_trace(args.trace), max_events_per_job=limit))
    else:
        print(summarize_file(args.trace, max_events_per_job=limit))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
