"""A tiny dependency-free time-series store for metrics history.

The metrics registry answers *"what is the value now?"*; dashboards and
post-hoc analysis need *"what was it over time?"*. :class:`TimeSeriesDB`
fills that gap with fixed-memory ring buffers: the engine (or control
loop) calls :meth:`TimeSeriesDB.sample_registry` once per interval, which
appends every counter and gauge value -- estimator-error gauges included
-- under its registry name.

Each series holds at most ``capacity`` points. On overflow it *downsamples*
instead of dropping history: adjacent pairs are averaged (time and value),
halving the buffer and doubling the per-point stride, so a series always
spans its full lifetime at progressively coarser resolution -- old data
gets blurry, never truncated. Appends are amortised O(1); memory is
O(capacity) per series, forever.

Queries are by name and closed time range::

    tsdb.query("engine.active_jobs", t0=0.0, t1=86_400.0)
    tsdb.names()                       # sorted series names
    tsdb.snapshot()                    # JSON-ready dump of everything
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

#: Default per-series capacity: ~2.5 days of 10-minute intervals.
DEFAULT_CAPACITY = 360


class TimeSeries:
    """One named series: a ring buffer that downsamples on overflow."""

    __slots__ = ("capacity", "stride", "points", "_acc_time", "_acc_value", "_acc_count")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 2 or capacity % 2:
            raise ConfigurationError("capacity must be an even number >= 2")
        self.capacity = int(capacity)
        #: Raw samples aggregated into each stored point (doubles on overflow).
        self.stride = 1
        self.points: List[Tuple[float, float]] = []
        self._acc_time = 0.0
        self._acc_value = 0.0
        self._acc_count = 0

    def append(self, time: float, value: float) -> None:
        """Record one raw sample (times must be fed in increasing order)."""
        self._acc_time += float(time)
        self._acc_value += float(value)
        self._acc_count += 1
        if self._acc_count < self.stride:
            return
        self.points.append(
            (self._acc_time / self._acc_count, self._acc_value / self._acc_count)
        )
        self._acc_time = self._acc_value = 0.0
        self._acc_count = 0
        if len(self.points) >= self.capacity:
            self._downsample()

    def _downsample(self) -> None:
        """Average adjacent pairs: half the points, twice the stride."""
        merged = [
            (
                (self.points[i][0] + self.points[i + 1][0]) / 2.0,
                (self.points[i][1] + self.points[i + 1][1]) / 2.0,
            )
            for i in range(0, len(self.points) - 1, 2)
        ]
        if len(self.points) % 2:
            merged.append(self.points[-1])
        self.points = merged
        self.stride *= 2

    def __len__(self) -> int:
        return len(self.points)

    def query(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Stored points with ``t0 <= time <= t1`` (both bounds optional)."""
        lo = float("-inf") if t0 is None else float(t0)
        hi = float("inf") if t1 is None else float(t1)
        return [(t, v) for t, v in self.points if lo <= t <= hi]

    @property
    def latest(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None


class TimeSeriesDB:
    """Named ring-buffer series, created lazily on first write."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 2 or capacity % 2:
            raise ConfigurationError("capacity must be an even number >= 2")
        self.capacity = int(capacity)
        self._series: Dict[str, TimeSeries] = {}

    def record(self, name: str, time: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(self.capacity)
        series.append(time, value)

    def sample_registry(self, registry: MetricsRegistry, time: float) -> int:
        """Sample every counter and gauge of *registry* at *time*.

        Returns the number of series written. Histograms are summarised by
        their running count (``<name>.count``) -- buckets belong in the
        Prometheus exporter, not a per-interval series.
        """
        written = 0
        snapshot = registry.snapshot()
        if not snapshot:
            return 0
        for name, value in snapshot.get("counters", {}).items():
            self.record(name, time, value)
            written += 1
        for name, value in snapshot.get("gauges", {}).items():
            self.record(name, time, value)
            written += 1
        for name, hist in snapshot.get("histograms", {}).items():
            self.record(f"{name}.count", time, hist["count"])
            written += 1
        return written

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            raise ConfigurationError(
                f"unknown series {name!r}; known: {self.names()}"
            )
        return self._series[name]

    def query(
        self,
        name: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """Points of series *name* within the closed range ``[t0, t1]``."""
        return self.series(name).query(t0, t1)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def snapshot(self) -> Dict:
        """A JSON-ready dump: per-series stride and ``[time, value]`` points."""
        return {
            name: {
                "stride": series.stride,
                "points": [[t, v] for t, v in series.points],
            }
            for name, series in sorted(self._series.items())
        }
