"""Causal span tracing: the flame-tree half of the observability layer.

The phase profiler (:class:`repro.obs.registry.PhaseProfiler`) answers
*"where does interval time go on average?"*; spans answer *"what happened
inside THIS interval, in what order, nested under what?"*. A
:class:`SpanTracer` maintains a stack of open spans; each ``with
spans.span("fit"):`` block becomes one timed node with a ``span_id``, its
parent's ``parent_id`` and a wall-clock ``duration``. Closed spans are
emitted as ``span`` events on the ordinary JSONL trace stream, so one
trace file carries both the decision events and the causal tree, and
:func:`repro.obs.summarize.span_tree` can reconstruct per-interval and
per-job flame trees offline.

The simulation engine opens an ``interval`` root span per scheduling
interval with ``fit`` / ``snapshot`` / ``schedule`` (→ ``allocate`` /
``place``) / ``progress`` / ``rescale`` children; the deployment control
loop opens a ``step`` root with ``sweep`` / ``snapshot`` / ``schedule`` /
``reconcile`` (→ per-job ``checkpoint`` / ``teardown`` / ``launch``)
children, and recovery wraps ``replay_intents``. Spans are closed in a
``finally`` clause, so a crash-point firing mid-reconcile still emits
every open span before the exception escapes -- the flame tree of a
crashed cycle is exactly what an operator wants to see.

Like every ``repro.obs`` sink, the disabled implementation
(:data:`NULL_SPAN_TRACER`) is falsy and free: ``span()`` returns a shared
no-op context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.tracer import EVENT_SPAN, NULL_TRACER, Tracer


class Span:
    """One open (then closed) node of the causal tree."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "duration")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: dict,
        start: float,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration: Optional[float] = None  # set on close


class SpanTracer:
    """Stack-scoped span creation, emitting ``span`` events on close.

    ``set_time`` pins the logical timestamp (simulation seconds, or the
    deploy loop's step index) stamped on every span event; wall-clock
    durations always come from ``time.perf_counter``. The tracer is truthy
    exactly when its underlying event tracer is, so hot paths can guard
    with ``if spans:``.
    """

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._stack: List[Span] = []
        self._next_id = 1
        self.now = 0.0

    def set_time(self, now: float) -> None:
        """Pin the logical time stamped on subsequently closed spans."""
        self.now = float(now)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` at the root."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the current one for the ``with`` body.

        The span is closed -- and its event emitted -- even when the body
        raises, so crash-point injections and genuine failures never leak
        open spans or corrupt the stack.
        """
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            attrs=attrs,
            start=time.perf_counter(),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.start
            self._stack.pop()
            self._tracer.emit(
                EVENT_SPAN,
                self.now,
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                duration=span.duration,
                **span.attrs,
            )

    def __bool__(self) -> bool:
        return bool(self._tracer)


class _NullSpanContext:
    """Shared no-op ``with`` body for the disabled span tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullSpanTracer(SpanTracer):
    """Span tracing disabled: every call is a shared no-op, truthiness False."""

    def __init__(self) -> None:
        super().__init__(NULL_TRACER)

    def set_time(self, now: float) -> None:
        pass

    def span(self, name: str, **attrs):  # type: ignore[override]
        return _NULL_SPAN_CONTEXT

    def __bool__(self) -> bool:
        return False


#: Shared default instance -- hot paths compare against this cheaply.
NULL_SPAN_TRACER = NullSpanTracer()


def span_tracer_for(tracer: Optional[Tracer]) -> SpanTracer:
    """A live :class:`SpanTracer` over *tracer*, or the shared null one."""
    if tracer is not None and tracer:
        return SpanTracer(tracer)
    return NULL_SPAN_TRACER
