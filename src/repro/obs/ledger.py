"""The scheduler decision ledger: *why* every grant and denial happened.

The §4.1 allocator is a greedy auction -- each worker/PS grant is a
comparison the winning job won against every other job's best marginal
gain -- yet the base trace only records outcomes (``allocation_decided``,
``placement_decided``), never reasons. The :class:`DecisionLedger` closes
that gap: the allocators and the placement pipeline record *decision*
records through it, and it emits them as compact ``decision`` events on
the existing JSONL stream plus ``decision.*`` aggregate counters on the
metrics registry.

Record kinds (the ``kind`` field of every ``decision`` event):

* ``grant`` -- one greedy step: winning job, the task kind granted, its
  marginal gain, the runner-up job and the gap to it, and the grant's
  index within the allocation round.
* ``deny`` -- a job got nothing (or stopped growing) this round, with a
  ``reason``: ``capacity_exhausted`` (not even the anti-starvation
  starter fit, or no further task of either kind fit), ``hopeless_shape``
  (aggregate capacity admitted the job but fragmentation rejected even a
  shrunk-to-(1,1) placement), ``converged_yield`` (the job's marginal
  gain went non-positive -- it yielded the auction voluntarily), or
  ``price_rejected`` (the OASiS primal-dual auction priced the job out:
  bundles fit, but no candidate's utility beat its priced cost).
* ``placement`` -- provenance of a job's layout: ``cache`` (replayed by
  the :class:`~repro.core.placement.PlacementCache`) or ``fresh``, plus
  whether the layout spills across servers.
* ``shrink`` -- the placement shrink-retry loop cut an unplaceable
  allocation down until it fit.

Budget / sampling knob (``mode``):

* ``"full"`` -- every record becomes an event (smoke scale; this is what
  ``repro explain`` replays into a per-job timeline).
* ``"sampled"`` -- only the top-K grants per round (by gain) become
  events, flagged ``sampled: true``; denials and placement provenance
  fold into the ``decision.*`` counters alone. This keeps the ledger's
  overhead flat at 5000-GPU scale, where full fidelity would dominate
  the trace stream.
* ``"off"`` -- the :data:`NULL_LEDGER`: truthiness-false, so hot paths
  pay one bool check (the same contract as :data:`NULL_TRACER`).

Like the metrics registry, a process-wide *active* ledger lets the leaf
allocators (:func:`repro.core.allocation.allocate`, the OASiS auction)
record decisions without threading a ledger through every policy
signature: the engine installs one with :func:`use_ledger` around its
scheduling loop.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracer import EVENT_DECISION, NULL_TRACER, Tracer

#: Ledger fidelity modes (plus ``"auto"`` at the SimConfig level, which
#: resolves to ``full`` when a tracer is attached and ``off`` otherwise).
LEDGER_MODES = ("off", "full", "sampled")

#: The closed set of denial reasons (the ``reason`` field of ``deny``).
DENIAL_REASONS = (
    "capacity_exhausted",
    "hopeless_shape",
    "converged_yield",
    "price_rejected",
)

#: Grants kept per allocation round in ``sampled`` mode.
DEFAULT_TOP_K = 8


class DecisionLedger:
    """Collects scheduler decisions; emits events and counters.

    Parameters
    ----------
    tracer:
        Event sink for ``decision`` events (:data:`NULL_TRACER` keeps the
        ledger counters-only, which is how the scale benchmark runs it).
    metrics:
        Counter sink for the ``decision.*`` aggregates.
    mode:
        ``"full"`` or ``"sampled"`` (use :data:`NULL_LEDGER` for off).
    top_k:
        Grants retained per round in ``sampled`` mode.
    """

    enabled: bool = True

    def __init__(
        self,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        mode: str = "full",
        top_k: int = DEFAULT_TOP_K,
    ) -> None:
        if mode not in ("full", "sampled"):
            raise ConfigurationError(
                f"ledger mode must be 'full' or 'sampled', got {mode!r} "
                "(use NULL_LEDGER for 'off')"
            )
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.mode = mode
        self.top_k = top_k
        self._time = 0.0
        self._index = 0
        self._round_grants: List[Tuple[float, dict]] = []

    def __bool__(self) -> bool:
        return self.enabled

    # -- plumbing ----------------------------------------------------------------
    def set_time(self, now: float) -> None:
        """Stamp subsequent records with simulation time *now*."""
        self._time = float(now)

    def begin_round(self, policy: Optional[str] = None) -> None:
        """Start one allocation round: resets the grant index and buffer.

        Called by the allocators themselves (not the engine), so nested
        or repeated policy invocations within one interval each audit as
        their own round.
        """
        self._flush_sampled()
        self._index = 0
        self._round_policy = policy

    def end_round(self) -> None:
        """Close the round; in ``sampled`` mode flushes the top-K grants."""
        self._flush_sampled()

    def _flush_sampled(self) -> None:
        if not self._round_grants:
            return
        grants = sorted(self._round_grants, key=lambda kv: -kv[0])
        dropped = len(grants) - min(len(grants), self.top_k)
        if dropped:
            self.metrics.counter("decision.grants_sampled_out").inc(dropped)
        if self.tracer:
            for _, payload in grants[: self.top_k]:
                self.tracer.emit(EVENT_DECISION, self._time, **payload)
        self._round_grants = []

    # -- records -----------------------------------------------------------------
    def record_grant(
        self,
        job_id: str,
        task: str,
        gain: float,
        workers: int,
        ps: int,
        runner_up: Optional[str] = None,
        runner_up_gap: Optional[float] = None,
    ) -> None:
        """One greedy grant: *job_id* won one *task* at marginal *gain*."""
        self.metrics.counter("decision.grants").inc()
        index = self._index
        self._index += 1
        payload = {
            "kind": "grant",
            "job_id": job_id,
            "task": task,
            "gain": gain,
            "index": index,
            "workers": workers,
            "ps": ps,
        }
        if runner_up is not None:
            payload["runner_up"] = runner_up
        if runner_up_gap is not None:
            payload["runner_up_gap"] = runner_up_gap
        if self.mode == "sampled":
            payload["sampled"] = True
            self._round_grants.append((float(gain), payload))
        elif self.tracer:
            self.tracer.emit(EVENT_DECISION, self._time, **payload)

    def record_denial(self, job_id: str, reason: str, **fields) -> None:
        """Job *job_id* got nothing (or stopped growing) because *reason*."""
        if reason not in DENIAL_REASONS:
            raise ConfigurationError(
                f"unknown denial reason {reason!r}; known: {DENIAL_REASONS}"
            )
        self.metrics.counter(f"decision.deny.{reason}").inc()
        if self.mode == "full" and self.tracer:
            self.tracer.emit(
                EVENT_DECISION,
                self._time,
                kind="deny",
                job_id=job_id,
                reason=reason,
                **fields,
            )

    def record_placement(
        self, job_id: str, provenance: str, servers: int
    ) -> None:
        """Where a job's layout came from: ``cache`` replay or ``fresh``."""
        self.metrics.counter(f"decision.placement.{provenance}").inc()
        spill = servers > 1
        if spill:
            self.metrics.counter("decision.placement.spill").inc()
        if self.mode == "full" and self.tracer:
            self.tracer.emit(
                EVENT_DECISION,
                self._time,
                kind="placement",
                job_id=job_id,
                provenance=provenance,
                servers=servers,
                spill=spill,
            )

    def record_shrink(
        self,
        job_id: str,
        requested: Tuple[int, int],
        granted: Tuple[int, int],
    ) -> None:
        """The shrink-retry loop cut *job_id* from *requested* to *granted*."""
        self.metrics.counter("decision.shrinks").inc()
        if self.mode == "full" and self.tracer:
            self.tracer.emit(
                EVENT_DECISION,
                self._time,
                kind="shrink",
                job_id=job_id,
                requested=list(requested),
                granted=list(granted),
            )


class NullDecisionLedger(DecisionLedger):
    """The disabled ledger: every call is a no-op, truthiness is False."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - trivially empty
        self.tracer = NULL_TRACER
        self.metrics = NULL_REGISTRY
        self.mode = "off"
        self.top_k = DEFAULT_TOP_K
        self._time = 0.0
        self._index = 0
        self._round_grants = []

    def set_time(self, now: float) -> None:
        pass

    def begin_round(self, policy: Optional[str] = None) -> None:
        pass

    def end_round(self) -> None:
        pass

    def record_grant(self, *args, **kwargs) -> None:
        pass

    def record_denial(self, *args, **kwargs) -> None:
        pass

    def record_placement(self, *args, **kwargs) -> None:
        pass

    def record_shrink(self, *args, **kwargs) -> None:
        pass


#: Shared default instance -- hot paths compare against this cheaply.
NULL_LEDGER = NullDecisionLedger()

_ACTIVE: DecisionLedger = NULL_LEDGER


def active_ledger() -> DecisionLedger:
    """The currently installed ledger (:data:`NULL_LEDGER` by default)."""
    return _ACTIVE


def install_ledger(ledger: Optional[DecisionLedger]) -> DecisionLedger:
    """Install *ledger* as the active one; returns the previous ledger.

    Passing ``None`` restores the null ledger.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ledger if ledger is not None else NULL_LEDGER
    return previous


@contextmanager
def use_ledger(ledger: Optional[DecisionLedger]) -> Iterator[DecisionLedger]:
    """Scope *ledger* as the active one for a ``with`` block."""
    previous = install_ledger(ledger)
    try:
        yield active_ledger()
    finally:
        install_ledger(previous)
