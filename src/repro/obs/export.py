"""Metrics export surfaces: Prometheus text exposition and ``repro top``.

Two operator-facing views of the same registry snapshot:

* :func:`render_prometheus` turns a :class:`MetricsRegistry` (or its
  ``snapshot()`` dict, e.g. a ``--metrics-out`` JSON file) into the
  Prometheus text exposition format -- counters as ``*_total``, gauges
  verbatim, histograms with cumulative ``_bucket{le=...}`` lines plus
  ``_sum``/``_count``, and interpolated p50/p95/p99 estimates as a
  ``*_quantile{quantile=...}`` gauge family. The ``repro metrics-export``
  subcommand wraps it so any scrape-based stack can ingest a run.
* :func:`render_top` reconstructs cluster/job state from a JSONL trace
  (optionally joined with a metrics snapshot) and renders the
  ``repro top`` table: active jobs, allocations, estimator MAPE per job,
  drift flags -- the "what is my cluster doing and can I trust its
  predictions" screen.

Everything here is read-only over artifacts other layers already
produce; rendering never needs the live simulation.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.estimators import SIGNAL_REMAINING, SIGNAL_SPEED
from repro.obs.registry import MetricsRegistry, quantile_from_snapshot
from repro.obs.tracer import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_CHECKPOINT_RECORDED,
    EVENT_DECISION,
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESTARTED,
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_NODE_LEASE_REGRANT,
    EVENT_PLACEMENT_DECIDED,
    EVENT_WRITE_FENCED,
)
from repro.report import format_table

#: Quantiles surfaced for every histogram (label value, estimator input).
EXPORT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("0.5", 0.5),
    ("0.95", 0.95),
    ("0.99", 0.99),
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, namespace: str) -> str:
    """``engine.jobs_admitted`` -> ``repro_engine_jobs_admitted``."""
    sanitized = _NAME_RE.sub("_", name)
    prefix = _NAME_RE.sub("_", namespace)
    full = f"{prefix}_{sanitized}" if prefix else sanitized
    if full and full[0].isdigit():
        full = f"_{full}"
    return full


def _format_value(value: float) -> str:
    """Deterministic Prometheus sample rendering (ints without ``.0``)."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    source: Union[MetricsRegistry, Dict], namespace: str = "repro"
) -> str:
    """Render a registry (or its snapshot dict) as Prometheus text format.

    The output ends with a trailing newline, as the exposition format
    requires. Metric families are emitted in sorted registry-name order,
    so identical inputs produce byte-identical output (golden-testable).
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bucket in hist.get("buckets", []):
            cumulative += bucket["count"]
            edge = bucket["le"]
            le = "+Inf" if edge == "inf" else _format_value(float(edge))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
        quantile_metric = f"{metric}_quantile"
        lines.append(
            f"# HELP {quantile_metric} interpolated quantiles of {name}"
        )
        lines.append(f"# TYPE {quantile_metric} gauge")
        for label, q in EXPORT_QUANTILES:
            estimate = quantile_from_snapshot(hist, q)
            lines.append(
                f'{quantile_metric}{{quantile="{label}"}} '
                f"{_format_value(estimate)}"
            )

    return "\n".join(lines) + "\n"


# -- the ``repro top`` table ----------------------------------------------------


class _JobRow:
    """Mutable per-job state accumulated while scanning a trace."""

    __slots__ = (
        "job_id", "model", "mode", "state", "workers", "ps", "servers",
        "speed_errors", "remaining_errors", "drift_signals", "restarts",
    )

    def __init__(self, job_id: str):
        self.job_id = job_id
        self.model = "?"
        self.mode = "?"
        self.state = "pending"
        self.workers = 0
        self.ps = 0
        self.servers = 0
        self.speed_errors: List[float] = []
        self.remaining_errors: List[float] = []
        self.drift_signals: set = set()
        self.restarts = 0


def top_state(events: Sequence[Dict]) -> Dict:
    """Fold a trace into the cluster/job state ``repro top`` renders.

    Returns ``{"jobs": {job_id: _JobRow}, "ticks": n, "last_tick": dict,
    "last_time": t, "drift_events": n}``; the scan is a single pass, so
    re-rendering on a live file is cheap.
    """
    jobs: Dict[str, _JobRow] = {}
    ticks = 0
    last_tick: Dict = {}
    last_time = 0.0
    drift_events = 0
    control = {
        "elections": 0,
        "depositions": 0,
        "fenced_writes": 0,
        "lease_regrants": 0,
        "checkpoints": 0,
    }
    decisions = {"grants": 0, "denials": 0, "placements": 0, "shrinks": 0}

    def row(job_id: str) -> _JobRow:
        if job_id not in jobs:
            jobs[job_id] = _JobRow(job_id)
        return jobs[job_id]

    for event in events:
        kind = event.get("event")
        last_time = max(last_time, float(event.get("time", 0.0)))
        if kind == EVENT_JOB_ARRIVED:
            entry = row(event["job_id"])
            entry.model = event.get("model", "?")
            entry.mode = event.get("mode", "?")
            entry.state = "active"
        elif kind == EVENT_ALLOCATION_DECIDED:
            entry = row(event["job_id"])
            entry.workers = event.get("workers", 0)
            entry.ps = event.get("ps", 0)
            if entry.state != "done":
                entry.state = "running"
        elif kind == EVENT_PLACEMENT_DECIDED:
            row(event["job_id"]).servers = event.get("servers", 0)
        elif kind == EVENT_JOB_COMPLETED:
            row(event["job_id"]).state = "done"
        elif kind == EVENT_JOB_RESTARTED:
            row(event["job_id"]).restarts += 1
        elif kind == EVENT_ESTIMATOR_SAMPLE:
            entry = row(event["job_id"])
            error = float(event.get("error", 0.0))
            if event.get("signal") == SIGNAL_SPEED:
                entry.speed_errors.append(error)
            elif event.get("signal") == SIGNAL_REMAINING:
                entry.remaining_errors.append(error)
        elif kind == EVENT_ESTIMATOR_DRIFT:
            drift_events += 1
            row(event["job_id"]).drift_signals.add(
                event.get("signal", "?")
            )
        elif kind == EVENT_INTERVAL_TICK:
            ticks += 1
            last_tick = event
        elif kind == EVENT_LEADER_ELECTED:
            control["elections"] += 1
        elif kind == EVENT_LEADER_DEPOSED:
            control["depositions"] += 1
        elif kind == EVENT_WRITE_FENCED:
            control["fenced_writes"] += 1
        elif kind == EVENT_NODE_LEASE_REGRANT:
            control["lease_regrants"] += 1
        elif kind == EVENT_CHECKPOINT_RECORDED:
            control["checkpoints"] += 1
        elif kind == EVENT_DECISION:
            dkind = event.get("kind")
            if dkind == "grant":
                decisions["grants"] += 1
            elif dkind == "deny":
                decisions["denials"] += 1
            elif dkind == "placement":
                decisions["placements"] += 1
            elif dkind == "shrink":
                decisions["shrinks"] += 1
    return {
        "jobs": jobs,
        "ticks": ticks,
        "last_tick": last_tick,
        "last_time": last_time,
        "drift_events": drift_events,
        "control": control,
        "decisions": decisions,
    }


def _mape(errors: Sequence[float]) -> Optional[float]:
    if not errors:
        return None
    return sum(abs(e) for e in errors) / len(errors)


def render_top(
    events: Sequence[Dict],
    metrics_snapshot: Optional[Dict] = None,
    max_jobs: Optional[int] = None,
) -> str:
    """The ``repro top`` screen: cluster header plus the per-job table."""
    state = top_state(events)
    jobs = state["jobs"]
    tick = state["last_tick"]

    lines: List[str] = []
    lines.append(
        f"cluster: {state['ticks']} interval(s), last t={state['last_time']:.0f}, "
        f"jobs {len(jobs)} "
        f"(running {sum(1 for j in jobs.values() if j.state == 'running')}, "
        f"done {sum(1 for j in jobs.values() if j.state == 'done')})"
    )
    if tick:
        lines.append(
            f"last interval: running={tick.get('running_jobs', '?')} "
            f"active={tick.get('active_jobs', '?')} "
            f"pending={tick.get('pending_jobs', tick.get('paused_jobs', '?'))}"
        )
    fleet_speed = _mape(
        [e for j in jobs.values() for e in j.speed_errors]
    )
    fleet_remaining = _mape(
        [e for j in jobs.values() for e in j.remaining_errors]
    )
    if fleet_speed is not None or fleet_remaining is not None:
        speed_text = "n/a" if fleet_speed is None else f"{100 * fleet_speed:.1f}%"
        remaining_text = (
            "n/a" if fleet_remaining is None else f"{100 * fleet_remaining:.1f}%"
        )
        lines.append(
            f"estimators: speed MAPE {speed_text}, loss-curve MAPE "
            f"{remaining_text}, drift events {state['drift_events']}"
        )
    control = state["control"]
    if any(control.values()):
        lines.append(
            "control plane: "
            + ", ".join(
                f"{name}={count}" for name, count in control.items() if count
            )
        )
    decisions = state["decisions"]
    if any(decisions.values()):
        lines.append(
            "decision ledger: "
            + ", ".join(
                f"{name}={count}"
                for name, count in decisions.items()
                if count
            )
        )
    if metrics_snapshot:
        counters = metrics_snapshot.get("counters", {})
        gauges = metrics_snapshot.get("gauges", {})
        lines.append(
            "metrics: intervals="
            f"{int(counters.get('engine.intervals', counters.get('loop.steps', 0)))}"
            f" rescales={int(counters.get('engine.rescales', 0))}"
            f" restarts={int(counters.get('faults.job_restarts', 0))}"
            f" active_jobs={gauges.get('engine.active_jobs', 0):.0f}"
        )

    rows = []
    ordered = sorted(
        jobs.values(), key=lambda j: (j.state == "done", j.job_id)
    )
    if max_jobs is not None:
        ordered = ordered[:max_jobs]
    for entry in ordered:
        speed_mape = _mape(entry.speed_errors)
        remaining_mape = _mape(entry.remaining_errors)
        rows.append(
            [
                entry.job_id,
                entry.model,
                entry.state,
                entry.workers,
                entry.ps,
                entry.servers,
                "-" if speed_mape is None else f"{100 * speed_mape:.1f}",
                "-" if remaining_mape is None else f"{100 * remaining_mape:.1f}",
                ",".join(sorted(entry.drift_signals)) or "-",
                entry.restarts,
            ]
        )
    lines.append("")
    lines.append(
        format_table(
            [
                "job", "model", "state", "w", "ps", "srv",
                "speedMAPE%", "lossMAPE%", "drift", "restarts",
            ],
            rows,
        )
    )
    return "\n".join(lines)
