"""Online resource→speed estimation for one running job (§3.2).

A :class:`SpeedEstimator` owns a job's ``(p, w, speed)`` sample set. Before
the job starts, :meth:`bootstrap` runs the paper's short profiling runs on a
small data sample (a caller-provided ``measure`` callable stands in for the
10-second pre-runs); during training every interval's observed speed is fed
back through :meth:`add_sample`, continuously calibrating the fit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import FittingError
from repro.fitting.speed_model import (
    MIN_SAMPLES,
    SpeedModelFit,
    fit_speed_model,
    sample_configurations,
)
from repro.workloads.speed import MODE_SYNC, validate_mode

#: A profiling callable: (num_ps, num_workers) -> measured steps/second.
MeasureFn = Callable[[int, int], float]


class SpeedEstimator:
    """Fits and serves the Eqn-3/Eqn-4 speed function of one job.

    Parameters
    ----------
    mode:
        ``"sync"`` or ``"async"``.
    global_batch:
        The job's fixed global batch size (required for sync).
    max_samples:
        Sample-set cap; the oldest samples are dropped first, so late
        (more representative) measurements dominate the fit over time.
    """

    def __init__(
        self,
        mode: str,
        global_batch: Optional[float] = None,
        max_samples: int = 200,
    ):
        validate_mode(mode)
        if mode == MODE_SYNC and (global_batch is None or global_batch <= 0):
            raise FittingError("synchronous estimation needs a positive global_batch")
        self.mode = mode
        self.global_batch = float(global_batch) if global_batch else 0.0
        self.max_samples = int(max_samples)
        self._samples: List[Tuple[int, int, float]] = []
        self._fit: Optional[SpeedModelFit] = None
        self._dirty = False

    # -- sample management -----------------------------------------------------
    def add_sample(self, p: int, w: int, speed: float) -> None:
        """Record one measured speed under configuration ``(p, w)``."""
        if p < 1 or w < 1:
            raise FittingError(f"invalid configuration (p={p}, w={w})")
        if speed <= 0:
            raise FittingError("measured speed must be positive")
        self._samples.append((int(p), int(w), float(speed)))
        if len(self._samples) > self.max_samples:
            self._samples.pop(0)
        self._dirty = True

    def bootstrap(
        self,
        measure: MeasureFn,
        max_ps: int = 16,
        max_workers: int = 16,
        num_samples: int = 5,
        seed=None,
    ) -> List[Tuple[int, int]]:
        """Run the initial profiling pass (§3.2 / §6.1: 5 sample runs).

        Returns the configurations that were profiled.
        """
        configs = sample_configurations(max_ps, max_workers, num_samples, seed=seed)
        for p, w in configs:
            self.add_sample(p, w, measure(p, w))
        return configs

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[Tuple[int, int, float]]:
        return tuple(self._samples)

    # -- fitting / prediction -----------------------------------------------------
    @property
    def can_fit(self) -> bool:
        return len(self._samples) >= MIN_SAMPLES[self.mode]

    def fit(self, force: bool = False) -> SpeedModelFit:
        if not self.can_fit:
            raise FittingError(
                f"need {MIN_SAMPLES[self.mode]} samples before fitting, "
                f"have {len(self._samples)}"
            )
        if force or self._dirty or self._fit is None:
            self._fit = fit_speed_model(
                self._samples,
                self.mode,
                global_batch=self.global_batch if self.mode == MODE_SYNC else None,
            )
            self._dirty = False
        return self._fit

    def predict(self, p: int, w: int) -> float:
        """Predicted training speed (steps/second) for ``(p, w)``."""
        return self.fit().predict(p, w)

    def speed_function(self) -> Callable[[int, int], float]:
        """A frozen ``f(p, w)`` closure over the *current* fit.

        The allocator evaluates the speed function many times inside one
        scheduling interval; freezing avoids refit churn mid-decision. The
        returned callable also exposes ``predict_many`` so the allocator's
        batch evaluator can score candidate configurations in one numpy
        call instead of per-config Python calls.
        """
        return _FrozenSpeedFn(self.fit())


class _FrozenSpeedFn:
    """A fitted speed function frozen at one point in time.

    Callable like the plain ``fit.predict`` bound method it replaces, with
    the fit's vectorized ``predict_many`` carried along for batch scoring.
    """

    __slots__ = ("fit", "predict_many")

    def __init__(self, fit) -> None:
        self.fit = fit
        self.predict_many = fit.predict_many

    def __call__(self, p: int, w: int) -> float:
        return self.fit.predict(p, w)
