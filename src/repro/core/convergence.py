"""Online convergence estimation for one running job (§3.1).

A :class:`ConvergenceEstimator` accumulates ``(step, loss)`` observations as
the job trains, refits the Eqn-1 curve on demand (through
:func:`repro.fitting.fit_loss_curve`, which applies the §3.1 preprocessing),
and answers the scheduler's question: *how many more steps does this job
need before the §2.1 stopping rule fires?*

The estimator also keeps its prediction history so the Fig.-6 style
prediction-error-vs-progress analysis can be replayed from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import FittingError
from repro.fitting.loss_curve import MIN_POINTS, LossCurveFit, fit_loss_curve
from repro.fitting.preprocess import subsample


@dataclass(frozen=True)
class ConvergencePrediction:
    """One snapshot of the estimator's output."""

    at_step: float
    total_steps: float
    remaining_steps: float


class ConvergenceEstimator:
    """Tracks one job's loss history and predicts steps to convergence.

    Parameters
    ----------
    threshold:
        The job owner's convergence threshold (normalised per-epoch loss
        decrease, §2.1).
    steps_per_epoch:
        Conversion between steps and epochs for this job.
    patience:
        Consecutive below-threshold epochs required.
    max_fit_points:
        Observation histories longer than this are thinned before fitting
        (§3.1's sampling advice), bounding solver cost.
    refit_every:
        Refit at most once per this many newly added observations; between
        refits the cached fit is reused.
    """

    def __init__(
        self,
        threshold: float,
        steps_per_epoch: float,
        patience: int = 2,
        max_fit_points: int = 400,
        refit_every: int = 10,
        reset_on_drop: bool = False,
        drop_ratio: float = 0.85,
        drop_patience: int = 5,
    ):
        if threshold <= 0:
            raise FittingError("threshold must be positive")
        if steps_per_epoch <= 0:
            raise FittingError("steps_per_epoch must be positive")
        if not 0 < drop_ratio < 1:
            raise FittingError("drop_ratio must be in (0, 1)")
        if drop_patience < 1:
            raise FittingError("drop_patience must be >= 1")
        self.threshold = float(threshold)
        self.steps_per_epoch = float(steps_per_epoch)
        self.patience = int(patience)
        self.max_fit_points = int(max_fit_points)
        self.refit_every = int(refit_every)
        #: §7 "Convergence estimation": when a learning-rate cut makes the
        #: observed losses fall persistently below the fitted curve, treat
        #: the rest of training as a new job and restart the fitting.
        self.reset_on_drop = bool(reset_on_drop)
        self.drop_ratio = float(drop_ratio)
        self.drop_patience = int(drop_patience)

        self._steps: List[float] = []
        self._losses: List[float] = []
        self._fit: Optional[LossCurveFit] = None
        self._points_since_fit = 0
        self._history: List[ConvergencePrediction] = []
        self._below_fit_streak = 0
        self.reset_count = 0
        #: Step number where the current training phase began: after a
        #: learning-rate drop the post-drop phase is fitted as a fresh job
        #: (its own k = 0), exactly as §7 prescribes.
        self._step_offset = 0.0

    # -- data collection ----------------------------------------------------------
    def add_observation(self, step: float, loss: float) -> None:
        """Record one raw loss observation.

        With ``reset_on_drop`` enabled, observations persistently far below
        the fitted curve signal a learning-rate cut; the pre-drop history is
        then discarded and fitting restarts on the new training phase (§7).
        """
        if loss <= 0:
            raise FittingError("loss observations must be positive")
        self._steps.append(float(step))
        self._losses.append(float(loss))
        self._points_since_fit += 1
        if self.reset_on_drop and self._fit is not None:
            try:
                predicted = self._fit.predict_raw(
                    max(float(step) - self._step_offset, 0.0)
                )
            except FittingError:
                return
            if loss < self.drop_ratio * predicted:
                self._below_fit_streak += 1
                if self._below_fit_streak >= self.drop_patience:
                    self._restart_from_drop()
            else:
                self._below_fit_streak = 0

    def _restart_from_drop(self) -> None:
        """Discard pre-drop history; keep only the streak's observations."""
        keep = self.drop_patience
        self._steps = self._steps[-keep:]
        self._losses = self._losses[-keep:]
        self._step_offset = min(self._steps)
        self._fit = None
        self._points_since_fit = len(self._steps)
        self._below_fit_streak = 0
        self.reset_count += 1

    def add_observations(self, pairs) -> None:
        for step, loss in pairs:
            self.add_observation(step, loss)

    @property
    def observation_count(self) -> int:
        return len(self._steps)

    @property
    def latest_step(self) -> float:
        return self._steps[-1] if self._steps else 0.0

    # -- fitting ----------------------------------------------------------------
    @property
    def can_fit(self) -> bool:
        return len(self._steps) >= MIN_POINTS

    def fit(self, force: bool = False) -> LossCurveFit:
        """The current Eqn-1 fit, refreshing it if enough new data arrived."""
        if not self.can_fit:
            raise FittingError(
                f"need {MIN_POINTS} observations before fitting, "
                f"have {len(self._steps)}"
            )
        stale = self._fit is None or self._points_since_fit >= self.refit_every
        if force or stale:
            steps, losses = subsample(
                self._steps, self._losses, max_points=self.max_fit_points
            )
            # The current phase is fitted in its own step frame (k = 0 at
            # the phase start); callers translate back via _step_offset.
            shifted = [s - self._step_offset for s in steps]
            self._fit = fit_loss_curve(shifted, losses)
            self._points_since_fit = 0
        assert self._fit is not None
        return self._fit

    # -- predictions ----------------------------------------------------------------
    def predicted_total_steps(self) -> float:
        """Predicted steps (from step 0) until convergence.

        After a learning-rate reset the fit lives in the post-drop frame;
        the phase offset is added back so callers keep absolute steps.
        """
        fit = self.fit()
        return self._step_offset + fit.steps_to_converge(
            self.threshold, self.steps_per_epoch, self.patience
        )

    def remaining_steps(self, current_step: Optional[float] = None) -> float:
        """Predicted steps left from *current_step* (default: latest seen)."""
        if current_step is None:
            current_step = self.latest_step
        total = self.predicted_total_steps()
        prediction = ConvergencePrediction(
            at_step=float(current_step),
            total_steps=total,
            remaining_steps=max(total - float(current_step), 0.0),
        )
        self._history.append(prediction)
        return prediction.remaining_steps

    def marginal_efficiency(self, current_step: Optional[float] = None) -> float:
        """Predicted worth of the job's *next* step, in (0, 1].

        The Eqn-1 curve ``l(k) = 1/(b0*k + b1) + b2`` has marginal loss
        decrease ``|l'(k)| = b0/(b0*k + b1)^2``; dividing by the phase-start
        value ``|l'(0)|`` gives ``(b1/(b0*k + b1))^2`` -- 1.0 at the start
        of the current training phase, decaying as the job converges. This
        is the loss-curve half of a Pollux-style statistical-efficiency
        term (:meth:`repro.schedulers.base.JobView.statistical_efficiency`
        adds the asynchrony discount). Returns 1.0 when no reliable fit is
        available yet, so young jobs are never penalised by missing data.
        """
        if not self.can_fit:
            return 1.0
        try:
            fit = self.fit()
        except FittingError:
            return 1.0
        if current_step is None:
            current_step = self.latest_step
        k = max(float(current_step) - self._step_offset, 0.0)
        denom = fit.beta0 * k + fit.beta1
        if fit.beta0 <= 0 or fit.beta1 <= 0 or denom <= 0:
            return 1.0
        ratio = fit.beta1 / denom
        return min(max(ratio * ratio, 0.0), 1.0)

    @property
    def prediction_history(self) -> Tuple[ConvergencePrediction, ...]:
        return tuple(self._history)

    def prediction_errors(self, true_total_steps: float) -> List[Tuple[float, float]]:
        """(progress fraction, relative error) pairs, Fig.-6 style.

        The error is ``(predicted_total - true_total) / true_total`` at each
        recorded prediction, with progress measured against the true total.
        """
        if true_total_steps <= 0:
            raise FittingError("true_total_steps must be positive")
        return [
            (
                min(pred.at_step / true_total_steps, 1.0),
                (pred.total_steps - true_total_steps) / true_total_steps,
            )
            for pred in self._history
        ]
