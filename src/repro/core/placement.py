"""Task placement (§4.2).

Theorem 1: for a synchronous job on homogeneous servers, the transfer time
per step is minimised by using the *fewest* servers able to host the job and
deploying the *same* number of its parameter servers (and workers) on each.
The paper turns this into a scheme for heterogeneous, partially loaded
clusters:

* sort servers by current resource availability (available CPU, descending);
* place jobs smallest-demand-first (anti-starvation for small jobs);
* for each job, find the smallest ``k`` such that its tasks fit on the
  ``k`` most-available servers when spread evenly; place them there;
* jobs that fit nowhere are *paused* until the next scheduling interval.

The even split is attempted first; if per-server capacities reject it (the
aggregate fits but fragmentation bites), a capacity-aware spread over the
same ``k`` servers is tried before moving to ``k + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.cluster.server import ROLE_PS, ROLE_WORKER, Server
from repro.common.errors import PlacementError
from repro.obs.registry import active_registry

#: server name -> (num workers, num ps) for one job.
JobLayout = Dict[str, Tuple[int, int]]


@dataclass
class PlacementRequest:
    """One job's placement input: its allocation and task shapes."""

    job_id: str
    workers: int
    ps: int
    worker_demand: ResourceVector
    ps_demand: ResourceVector

    def __post_init__(self) -> None:
        if self.workers < 1 or self.ps < 1:
            raise PlacementError(
                f"job {self.job_id!r} needs >= 1 worker and >= 1 ps, "
                f"got ({self.workers}, {self.ps})"
            )

    @property
    def total_demand(self) -> ResourceVector:
        return self.worker_demand * self.workers + self.ps_demand * self.ps


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of one placement round."""

    layouts: Dict[str, JobLayout]
    #: Jobs that could not be placed and are paused this interval.
    unplaced: Tuple[str, ...]

    def servers_used(self, job_id: str) -> int:
        return len(self.layouts.get(job_id, {}))


#: Cache key: the placement-relevant fingerprint of one request.
_CacheKey = Tuple[int, int, ResourceVector, ResourceVector]


class PlacementCache:
    """Memo of layouts for jobs whose allocation did not change (§4.2).

    Between scheduling points most jobs keep their task counts, so their
    Theorem-1 layouts can be replayed instead of re-derived. A cached
    layout is only trusted after re-validation against the live cluster
    (every server must still exist and fit the job's share), and the whole
    cache is dropped on node cordon/crash/recovery events from the faults
    layer -- a changed server set shifts the most-available-first ranking
    that fresh placement would see.

    The cache changes placement *outcomes* (a replayed layout occupies
    servers that fresh placement might have assigned differently), so it is
    strictly opt-in: schedulers only consult it when explicitly constructed
    with one.
    """

    def __init__(self) -> None:
        self._layouts: Dict[str, Tuple[_CacheKey, JobLayout]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @staticmethod
    def _key(request: "PlacementRequest") -> _CacheKey:
        return (
            request.workers,
            request.ps,
            request.worker_demand,
            request.ps_demand,
        )

    def __len__(self) -> int:
        return len(self._layouts)

    def lookup(self, request: "PlacementRequest") -> Optional[JobLayout]:
        """The cached layout for *request*, or ``None`` on a changed allocation."""
        entry = self._layouts.get(request.job_id)
        if entry is None or entry[0] != self._key(request):
            return None
        return entry[1]

    def store(self, request: "PlacementRequest", layout: JobLayout) -> None:
        self._layouts[request.job_id] = (self._key(request), dict(layout))

    def forget_job(self, job_id: str) -> None:
        self._layouts.pop(job_id, None)

    def invalidate_all(self) -> None:
        """Drop every entry (node failed/recovered: the server set changed)."""
        if self._layouts:
            self.invalidations += len(self._layouts)
            self._layouts.clear()

    def validate(self, cluster: Cluster, request: "PlacementRequest",
                 layout: JobLayout) -> bool:
        """True when *layout* can be replayed onto *cluster* right now."""
        demand_cache: Dict[Tuple[int, int], ResourceVector] = {}
        for server_name, counts in layout.items():
            try:
                server = cluster.server(server_name)
            except Exception:
                return False
            demand = demand_cache.get(counts)
            if demand is None:
                n_workers, n_ps = counts
                demand = (
                    request.worker_demand * n_workers + request.ps_demand * n_ps
                )
                demand_cache[counts] = demand
            if not server.can_fit(demand):
                return False
        return True


def split_evenly(count: int, buckets: int) -> List[int]:
    """Spread *count* items over *buckets* as evenly as possible.

    The first ``count % buckets`` buckets receive one extra item.
    """
    if buckets < 1:
        raise PlacementError("buckets must be >= 1")
    if count < 0:
        raise PlacementError("count must be non-negative")
    base, extra = divmod(count, buckets)
    return [base + (1 if i < extra else 0) for i in range(buckets)]


def _even_layout(
    request: PlacementRequest, servers: Sequence[Server]
) -> Optional[JobLayout]:
    """Try Theorem-1's even split on exactly these servers."""
    k = len(servers)
    worker_counts = split_evenly(request.workers, k)
    ps_counts = split_evenly(request.ps, k)
    # Counter-align the remainders: servers burdened with an extra worker
    # should not also receive an extra parameter server.
    ps_counts = list(reversed(ps_counts))
    layout: JobLayout = {}
    # Only a handful of (n_workers, n_ps) pairs occur (base and base+1 of
    # each), so memoise the combined demand instead of rebuilding it per
    # server -- layout attempts dominate large placement rounds.
    demand_cache: Dict[Tuple[int, int], ResourceVector] = {}
    for server, n_workers, n_ps in zip(servers, worker_counts, ps_counts):
        counts = (n_workers, n_ps)
        demand = demand_cache.get(counts)
        if demand is None:
            demand = request.worker_demand * n_workers + request.ps_demand * n_ps
            demand_cache[counts] = demand
        if not server.can_fit(demand):
            return None
        if n_workers or n_ps:
            layout[server.name] = (n_workers, n_ps)
    return layout


def _greedy_layout(
    request: PlacementRequest, servers: Sequence[Server]
) -> Optional[JobLayout]:
    """Capacity-aware fallback spread over the same server set.

    Tasks are dealt one at a time to the server with the most remaining
    room, worker and parameter server alternately so each server keeps a
    balanced mix (the principle behind Theorem 1's proof).
    """
    remaining: Dict[str, ResourceVector] = {s.name: s.available for s in servers}
    counts: Dict[str, List[int]] = {s.name: [0, 0] for s in servers}

    tasks: List[Tuple[int, ResourceVector]] = []
    for i in range(max(request.workers, request.ps)):
        if i < request.workers:
            tasks.append((0, request.worker_demand))
        if i < request.ps:
            tasks.append((1, request.ps_demand))

    for role_idx, demand in tasks:
        best: Optional[str] = None
        best_room = -1.0
        for server in servers:
            room = remaining[server.name]
            if demand.fits_within(room):
                score = room.get("cpu") + sum(room.values()) * 1e-6
                if score > best_room:
                    best_room = score
                    best = server.name
        if best is None:
            return None
        remaining[best] = remaining[best] - demand
        counts[best][role_idx] += 1

    return {
        name: (c[0], c[1]) for name, c in counts.items() if c[0] or c[1]
    }


def _apply_layout(
    cluster: Cluster, request: PlacementRequest, layout: JobLayout
) -> None:
    worker_idx = 0
    ps_idx = 0
    for server_name, (n_workers, n_ps) in layout.items():
        for _ in range(n_workers):
            cluster.place(
                server_name,
                (request.job_id, ROLE_WORKER, worker_idx),
                request.worker_demand,
            )
            worker_idx += 1
        for _ in range(n_ps):
            cluster.place(
                server_name, (request.job_id, ROLE_PS, ps_idx), request.ps_demand
            )
            ps_idx += 1


def _server_rank(server: Server) -> Tuple[float, float, str]:
    """Heap key: most-available servers first (available CPU, then total)."""
    available = server.available
    return (-available.get("cpu"), -sum(available.values()), server.name)


def place_jobs(
    cluster: Cluster,
    requests: Iterable[PlacementRequest],
    sort_jobs: bool = True,
) -> PlacementResult:
    """Run one §4.2 placement round, mutating *cluster*.

    Parameters
    ----------
    cluster:
        The cluster to place into (tasks are registered on its servers).
    requests:
        Jobs with their granted allocations.
    sort_jobs:
        Place smallest jobs first (the paper's anti-starvation rule); set
        to ``False`` to preserve the caller's order (useful in tests).

    Notes
    -----
    Servers are kept in a lazy max-heap on current availability instead of
    being re-sorted for every job, so a round over ``J`` jobs touching
    ``S`` servers in total costs ``O((J + S) log N)`` heap operations --
    this is what keeps the Fig-12 scalability sweep tractable.
    """
    import heapq

    # Pair each request with its (memoised) total demand -- the property
    # rebuilds the vector on every access, and the round below needs it in
    # the sort key, the aggregate precheck, and the candidate-growth loop.
    pending = [(request, request.total_demand) for request in requests]
    if sort_jobs:
        capacity = cluster.total_capacity
        pending.sort(
            key=lambda pair: (pair[1].dominant_share(capacity), pair[0].job_id)
        )

    layouts: Dict[str, JobLayout] = {}
    unplaced: List[str] = []

    servers_by_name = {server.name: server for server in cluster}
    heap: List[Tuple[Tuple[float, float, str], str]] = [
        (_server_rank(server), server.name) for server in cluster
    ]
    heapq.heapify(heap)
    remaining_total = cluster.total_available
    # Memo of full-drain failures: once a job with slot shape D found only
    # S optimistic slots in the whole cluster, any later job with the same
    # shape needing more than S tasks must fail too (capacity only shrinks
    # within a round), so it can be rejected without touching the heap.
    drain_slots: Dict[ResourceVector, int] = {}

    for request, total_demand in pending:
        # Cheap aggregate precheck: a job whose demand exceeds the whole
        # cluster's free capacity would otherwise drain the entire heap
        # before failing.
        if not total_demand.fits_within(remaining_total):
            unplaced.append(request.job_id)
            continue
        # Per-server slot bound: an optimistic count of how many of this
        # job's tasks one server could host, using the cheaper of the two
        # task shapes per resource. Summed over the candidate set it is a
        # *necessary* condition for placement that is far tighter than the
        # aggregate test, so fragmentation failures are detected without
        # running the O(tasks * k) layout attempts.
        bound_demand = ResourceVector(
            {
                name: min(request.worker_demand[name], request.ps_demand[name])
                for name in set(request.worker_demand)
                & set(request.ps_demand)
            }
        )
        total_tasks = request.workers + request.ps
        known_slots = drain_slots.get(bound_demand)
        if known_slots is not None and total_tasks > known_slots:
            unplaced.append(request.job_id)
            continue

        def slot_bound(server: Server) -> int:
            if bound_demand.is_zero():
                return total_tasks  # no common resource: bound is vacuous
            available = server.available
            return int(
                min(
                    available.get(name) // amount
                    for name, amount in bound_demand.items()
                )
            )

        selected: List[Server] = []
        aggregate: Dict[str, float] = {}
        slots = 0
        layout: Optional[JobLayout] = None
        # Draw servers most-available-first, growing the candidate set k by
        # one server at a time exactly as §4.2 prescribes. Each layout
        # attempt costs O(tasks * k); on a nearly-full cluster fragmentation
        # can reject many consecutive k, so beyond k=8 attempts are made
        # only when k doubles (trading at most a constant factor in server
        # count for an O(K^2) -> O(K) failure path).
        next_attempt = 1
        while heap:
            rank, name = heapq.heappop(heap)
            server = servers_by_name[name]
            if rank != _server_rank(server):
                heapq.heappush(heap, (_server_rank(server), name))
                continue  # stale entry: reinsert with its current rank
            selected.append(server)
            for res_name, value in server.available.items():
                aggregate[res_name] = aggregate.get(res_name, 0.0) + value
            slots += slot_bound(server)
            if slots < total_tasks or not all(
                value <= aggregate.get(res_name, 0.0) + 1e-9
                for res_name, value in total_demand.items()
            ):
                continue  # need more servers even optimistically
            k = len(selected)
            if k < next_attempt and heap:
                continue
            next_attempt = k + 1 if k <= 8 else 2 * k
            layout = _even_layout(request, selected)
            if layout is None:
                layout = _greedy_layout(request, selected)
            if layout is not None:
                break
        if layout is not None:
            _apply_layout(cluster, request, layout)
            layouts[request.job_id] = layout
            remaining_total = remaining_total - total_demand
        else:
            unplaced.append(request.job_id)
            if not heap:  # full drain: remember this shape's slot ceiling
                drain_slots[bound_demand] = slots
        for server in selected:
            heapq.heappush(heap, (_server_rank(server), server.name))

    metrics = active_registry()
    if metrics:
        metrics.counter("placement.rounds").inc()
        metrics.counter("placement.placed").inc(float(len(layouts)))
        metrics.counter("placement.unplaced").inc(float(len(unplaced)))
        for layout in layouts.values():
            metrics.histogram(
                "placement.servers_per_job", bounds=(1, 2, 4, 8, 16, 32, 64)
            ).observe(float(len(layout)))

    return PlacementResult(layouts=layouts, unplaced=tuple(unplaced))


def transfer_units(layout: JobLayout, model_units: float = 1.0) -> float:
    """The Fig.-10 cost of a layout: the max per-task cross-server traffic.

    Every worker exchanges ``model_units`` of data with the parameter
    servers per step (split evenly across them); co-located pairs are free.
    Returns the bottleneck task's cross-server units -- proportional to the
    transfer time when every task has the same bandwidth.
    """
    total_workers = sum(nw for nw, _ in layout.values())
    total_ps = sum(np_ for _, np_ in layout.values())
    if total_workers < 1 or total_ps < 1:
        raise PlacementError("layout must contain at least one worker and one ps")
    per_pair = model_units / total_ps
    worst = 0.0
    for nw, np_ in layout.values():
        if np_ > 0:
            worst = max(worst, per_pair * (total_workers - nw))
        if nw > 0:
            worst = max(worst, per_pair * (total_ps - np_))
    return worst
