"""Marginal-gain resource allocation (§4.1).

The exact problem (5)-(8) -- minimise the summed estimated completion times
``Q_j / f_j(p_j, w_j)`` subject to cluster capacity -- is a non-convex
integer program, so Optimus uses a greedy heuristic:

1. give every active job 1 worker + 1 parameter server (anti-starvation);
2. repeatedly grant one task (worker *or* parameter server, whichever helps
   more) to the job with the largest **marginal gain**: the reduction in its
   estimated completion time per unit of the added task's dominant resource
   (Eqn 9);
3. stop when resources run out or every job's marginal gain is non-positive.

Jobs in their "beginning state" (few observations, large prediction error)
can have their gain multiplied by a priority factor < 1, mildly deferring
them until their estimates firm up (end of §4.1).

The implementation keeps gains in a lazy max-heap with version stamps, so an
allocation round over ``J`` jobs and ``T`` granted tasks costs
``O((J + T) log J)`` speed-function evaluations -- this is what makes the
Fig.-12 scalability result achievable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.common.errors import SchedulingError
from repro.obs.ledger import active_ledger
from repro.obs.registry import active_registry

#: f(p, w) -> steps/second.
SpeedFn = Callable[[int, int], float]


class TaskAllocation(NamedTuple):
    """Numbers of tasks granted to one job."""

    workers: int
    ps: int

    @property
    def total(self) -> int:
        return self.workers + self.ps


@dataclass
class AllocationRequest:
    """Everything the allocator needs to know about one active job.

    ``remaining_work`` is the predicted number of steps left (the ``Q_j`` of
    §4.1); ``speed`` is the job's *fitted* speed function. ``priority``
    scales the marginal gain (1.0 = neutral; §4.1 suggests e.g. 0.95 for
    jobs whose predictions are still unreliable).
    """

    job_id: str
    remaining_work: float
    speed: SpeedFn
    worker_demand: ResourceVector
    ps_demand: ResourceVector
    priority: float = 1.0
    max_workers: int = 100
    max_ps: int = 100

    def __post_init__(self) -> None:
        if self.remaining_work < 0:
            raise SchedulingError("remaining_work must be non-negative")
        if not 0 < self.priority <= 1:
            raise SchedulingError("priority must be in (0, 1]")
        if self.max_workers < 1 or self.max_ps < 1:
            raise SchedulingError("task caps must be >= 1")


@dataclass(frozen=True)
class Grant:
    """One greedy step: which job received which task kind, at what gain."""

    job_id: str
    kind: str  # "worker" or "ps"
    gain: float
    allocation_after: TaskAllocation


@dataclass(frozen=True)
class AllocationResult:
    """The outcome of one allocation round."""

    allocations: Dict[str, TaskAllocation]
    #: Jobs that could not receive even the 1+1 starter allocation.
    starved: Tuple[str, ...]
    #: Why the greedy loop stopped: "capacity" or "gains".
    stop_reason: str
    #: Resources left unallocated.
    leftover: ResourceVector
    #: The greedy grant sequence, populated when ``allocate(trace=True)`` --
    #: gains are non-increasing up to priority effects, which makes
    #: decisions auditable ("why did job X get 12 tasks?").
    grants: Tuple[Grant, ...] = ()


def _safe_speed(fn: SpeedFn, p: int, w: int) -> float:
    """Evaluate a fitted speed function defensively (fits can degenerate)."""
    try:
        value = fn(p, w)
    except Exception:
        return 0.0
    if value is None or value <= 0 or value != value:  # NaN check
        return 0.0
    return float(value)


def _completion_time(request: AllocationRequest, p: int, w: int) -> float:
    speed = _safe_speed(request.speed, p, w)
    if speed <= 0:
        return float("inf")
    return request.remaining_work / speed


class _BatchEvaluator:
    """Vectorized completion-time evaluation for one request's speed function.

    Candidate ``(p, w)`` configurations are evaluated in a single numpy call
    when the speed function supports it -- either through a ``predict_many``
    attribute (fitted models) or by accepting ndarray arguments elementwise.
    The first failure (exception, or a non-elementwise result shape) flips
    the evaluator to per-config scalar calls permanently, so arbitrary
    Python speed functions keep the exact :func:`_safe_speed` semantics.
    """

    __slots__ = ("request", "_vectorized")

    def __init__(self, request: AllocationRequest) -> None:
        self.request = request
        self._vectorized = True

    def completion_times(self, configs: Sequence[Tuple[int, int]]) -> List[float]:
        request = self.request
        if self._vectorized and len(configs) > 1:
            fn = getattr(request.speed, "predict_many", None) or request.speed
            ps = np.array([c[0] for c in configs], dtype=float)
            ws = np.array([c[1] for c in configs], dtype=float)
            try:
                speeds = np.asarray(fn(ps, ws), dtype=float)
                if speeds.shape != ps.shape:
                    raise TypeError("speed function is not elementwise")
            except Exception:
                self._vectorized = False
            else:
                work = request.remaining_work
                return [
                    work / value if value > 0 and value == value else float("inf")
                    for value in speeds.tolist()
                ]
        return [_completion_time(request, p, w) for p, w in configs]


class WeightedSpeed:
    """A speed function scaled by an elementwise ``weight(p, w)`` factor.

    Policies that rank configurations by something other than raw speed
    (e.g. the Pollux-style goodput allocator, which discounts speed by
    statistical efficiency) wrap the fitted speed function in one of these
    and feed it straight to :func:`allocate`. The wrapper preserves the
    vectorized fast path: when the base function (or its ``predict_many``)
    accepts ndarrays, so does this one, so :class:`_BatchEvaluator` still
    scores both +1-task candidates of a grant in a single numpy call.

    ``weight`` must accept scalars *and* ndarrays elementwise and return
    strictly finite values; non-positive products simply make the
    configuration unattractive (``_safe_speed`` maps them to 0).
    """

    __slots__ = ("base", "weight")

    def __init__(self, base: SpeedFn, weight: Callable) -> None:
        self.base = base
        self.weight = weight

    def __call__(self, p: int, w: int) -> float:
        return self.base(p, w) * self.weight(p, w)

    def predict_many(self, ps, ws):
        fn = getattr(self.base, "predict_many", None) or self.base
        speeds = np.asarray(fn(ps, ws), dtype=float)
        if speeds.shape != np.shape(ps):
            # Same contract as _BatchEvaluator: a non-elementwise base flips
            # the evaluator to per-config scalar calls.
            raise TypeError("base speed function is not elementwise")
        return speeds * self.weight(ps, ws)


def estimated_time(request: AllocationRequest, allocation: TaskAllocation) -> float:
    """Estimated completion time of *request* under *allocation* (seconds)."""
    if allocation.workers < 1 or allocation.ps < 1:
        return float("inf")
    return _completion_time(request, allocation.ps, allocation.workers)


def _dominant_amount(demand: ResourceVector, capacity: ResourceVector) -> float:
    """Dominant-resource *share* of one task against the cluster capacity.

    Eqn 9 divides the time reduction "by the amount of dominant resource";
    we use the capacity-normalised share so that gains stay comparable when
    workers and parameter servers dominate in different resource types
    (e.g. GPU workers vs. CPU parameter servers).
    """
    share = demand.dominant_share(capacity)
    return share if share > 0 else float("inf")


def _gain_from_times(
    request: AllocationRequest,
    alloc: TaskAllocation,
    base: float,
    t_worker: float,
    t_ps: float,
    dom_worker: float,
    dom_ps: float,
) -> Tuple[float, str]:
    """Best marginal gain given precomputed completion times (Eqn 9).

    ``base`` is the completion time under *alloc*; ``t_worker``/``t_ps`` are
    the times with one more worker / parameter server; ``dom_*`` the
    capacity-normalised dominant shares of one task of each kind.
    """
    gain_worker = -float("inf")
    gain_ps = -float("inf")
    if alloc.workers < request.max_workers:
        if base != float("inf") or t_worker != float("inf"):
            reduction = (base - t_worker) if base != float("inf") else 0.0
            gain_worker = reduction / dom_worker
    if alloc.ps < request.max_ps:
        if base != float("inf") or t_ps != float("inf"):
            reduction = (base - t_ps) if base != float("inf") else 0.0
            gain_ps = reduction / dom_ps
    if gain_worker >= gain_ps:
        return gain_worker * request.priority, "worker"
    return gain_ps * request.priority, "ps"


def _marginal_gain(
    request: AllocationRequest,
    alloc: TaskAllocation,
    capacity: ResourceVector,
) -> Tuple[float, str]:
    """Best marginal gain for the job and the task kind achieving it (Eqn 9)."""
    base = _completion_time(request, alloc.ps, alloc.workers)
    t_worker = _completion_time(request, alloc.ps, alloc.workers + 1)
    t_ps = _completion_time(request, alloc.ps + 1, alloc.workers)
    return _gain_from_times(
        request,
        alloc,
        base,
        t_worker,
        t_ps,
        _dominant_amount(request.worker_demand, capacity),
        _dominant_amount(request.ps_demand, capacity),
    )


def allocate(
    requests: Iterable[AllocationRequest],
    capacity: ResourceVector,
    max_total_tasks: Optional[int] = None,
    trace: bool = False,
) -> AllocationResult:
    """Run one §4.1 allocation round over the active jobs.

    Parameters
    ----------
    requests:
        Active jobs, in submission order (starter allocations are handed out
        in this order when capacity is scarce).
    capacity:
        Total cluster capacity (constraint (7) is aggregate; fragmentation
        is the placement algorithm's problem, §4.2).
    max_total_tasks:
        Optional safety valve on the number of greedy grants.

    Returns
    -------
    AllocationResult
        Jobs that could not get the 1+1 starter allocation are listed in
        ``starved`` and receive no tasks (they will be retried next
        interval, §4.2's pausing behaviour).
    """
    requests = list(requests)
    seen = set()
    for request in requests:
        if request.job_id in seen:
            raise SchedulingError(f"duplicate job id {request.job_id!r}")
        seen.add(request.job_id)

    ledger = active_ledger()
    if ledger:
        ledger.begin_round()

    # Capacity accounting on plain dicts: ``fits``/``consume`` run once per
    # heap pop and per starter, so avoiding a ResourceVector allocation per
    # check matters at fleet scale.
    used: Dict[str, float] = {}
    cap = dict(capacity.items())
    allocations: Dict[str, TaskAllocation] = {}
    starved: List[str] = []
    active: Dict[str, AllocationRequest] = {}

    def fits(demand: ResourceVector) -> bool:
        for name, value in demand.items():
            if used.get(name, 0.0) + value > cap.get(name, 0.0) + 1e-9:
                return False
        return True

    def consume(demand: ResourceVector) -> None:
        for name, value in demand.items():
            used[name] = used.get(name, 0.0) + value

    # Phase 1: anti-starvation starter allocations.
    for request in requests:
        starter = request.worker_demand + request.ps_demand
        if fits(starter):
            consume(starter)
            allocations[request.job_id] = TaskAllocation(workers=1, ps=1)
            active[request.job_id] = request
        else:
            starved.append(request.job_id)
            if ledger:
                ledger.record_denial(
                    request.job_id, "capacity_exhausted", stage="starter"
                )

    # Phase 2: greedy marginal-gain grants through a lazy max-heap. Heap
    # entries carry the candidate completion times, so a grant reuses the
    # already-evaluated time as the job's new base instead of re-deriving
    # it -- only the two +1-task candidates of the granted job are
    # recomputed (in one vectorized call when the speed function allows).
    counter = itertools.count()
    versions: Dict[str, int] = {job_id: 0 for job_id in active}
    heap: List[Tuple[float, int, str, str, int, float, float]] = []
    evaluators = {job_id: _BatchEvaluator(req) for job_id, req in active.items()}
    dominants = {
        job_id: (
            _dominant_amount(req.worker_demand, capacity),
            _dominant_amount(req.ps_demand, capacity),
        )
        for job_id, req in active.items()
    }
    base_times: Dict[str, float] = {}

    def push(job_id: str) -> None:
        request = active[job_id]
        alloc = allocations[job_id]
        base = base_times[job_id]
        t_worker, t_ps = evaluators[job_id].completion_times(
            [(alloc.ps, alloc.workers + 1), (alloc.ps + 1, alloc.workers)]
        )
        dom_worker, dom_ps = dominants[job_id]
        gain, kind = _gain_from_times(
            request, alloc, base, t_worker, t_ps, dom_worker, dom_ps
        )
        if gain > 0 and gain != float("inf"):
            heapq.heappush(
                heap,
                (-gain, next(counter), job_id, kind, versions[job_id], t_worker, t_ps),
            )
        elif ledger:
            # Non-positive (or degenerate infinite) marginal gain: the job
            # stops bidding voluntarily. Jobs at their task caps land here
            # too (their gain is -inf by construction).
            ledger.record_denial(
                job_id,
                "converged_yield",
                workers=alloc.workers,
                ps=alloc.ps,
                gain=gain if gain == gain and abs(gain) != float("inf") else None,
            )

    for job_id in active:
        alloc = allocations[job_id]
        base_times[job_id] = evaluators[job_id].completion_times(
            [(alloc.ps, alloc.workers)]
        )[0]
        push(job_id)

    granted = 0
    stop_reason = "gains"
    grant_log: List[Grant] = []
    limit = max_total_tasks if max_total_tasks is not None else 10_000_000
    while heap:
        neg_gain, _, job_id, kind, version, t_worker, t_ps = heapq.heappop(heap)
        if versions[job_id] != version:
            continue  # stale entry
        request = active[job_id]
        alloc = allocations[job_id]
        demand = request.worker_demand if kind == "worker" else request.ps_demand
        if not fits(demand):
            # Try the other task kind before giving up on this job.
            other = request.ps_demand if kind == "worker" else request.worker_demand
            if kind == "worker" and alloc.ps < request.max_ps and fits(other):
                kind, demand = "ps", other
            elif kind == "ps" and alloc.workers < request.max_workers and fits(other):
                kind, demand = "worker", other
            else:
                # Fires at most once per job per round: the job is not
                # re-pushed, and its version stamp kills stale entries.
                if ledger:
                    ledger.record_denial(
                        job_id,
                        "capacity_exhausted",
                        stage="grow",
                        workers=alloc.workers,
                        ps=alloc.ps,
                    )
                continue  # job can't grow; others may still fit
        consume(demand)
        if kind == "worker":
            alloc = TaskAllocation(alloc.workers + 1, alloc.ps)
            base_times[job_id] = t_worker
        else:
            alloc = TaskAllocation(alloc.workers, alloc.ps + 1)
            base_times[job_id] = t_ps
        allocations[job_id] = alloc
        versions[job_id] += 1
        granted += 1
        if ledger:
            # Peek the next-best bidder. Discarding stale entries here is
            # amortized-free: the pop loop would skip them anyway.
            while heap and versions[heap[0][2]] != heap[0][4]:
                heapq.heappop(heap)
            gain = -neg_gain
            runner_up = heap[0][2] if heap else None
            runner_gain = -heap[0][0] if heap else None
            ledger.record_grant(
                job_id,
                kind,
                gain,
                alloc.workers,
                alloc.ps,
                runner_up=runner_up,
                runner_up_gap=(
                    gain - runner_gain if runner_gain is not None else None
                ),
            )
        if trace:
            grant_log.append(
                Grant(
                    job_id=job_id,
                    kind=kind,
                    gain=-neg_gain,
                    allocation_after=alloc,
                )
            )
        if granted >= limit:
            stop_reason = "capacity"
            break
        push(job_id)

    if not heap and granted < limit:
        # Heap drained: either gains went non-positive or nothing else fit.
        smallest = min(
            (
                min(
                    r.worker_demand.dominant_share(capacity),
                    r.ps_demand.dominant_share(capacity),
                )
                for r in active.values()
            ),
            default=0.0,
        )
        any_fits = any(
            fits(r.worker_demand) or fits(r.ps_demand) for r in active.values()
        )
        stop_reason = "gains" if any_fits and smallest > 0 else "capacity"

    if ledger:
        ledger.end_round()

    metrics = active_registry()
    if metrics:
        metrics.counter("allocation.rounds").inc()
        metrics.counter("allocation.grants").inc(float(granted))
        metrics.counter("allocation.starved").inc(float(len(starved)))
        metrics.counter(f"allocation.stop.{stop_reason}").inc()
        metrics.gauge("allocation.last_jobs").set(float(len(requests)))

    return AllocationResult(
        allocations=allocations,
        starved=tuple(starved),
        stop_reason=stop_reason,
        leftover=capacity - ResourceVector(used),
        grants=tuple(grant_log),
    )
