"""Optimus core: the paper's primary contribution.

* :mod:`repro.core.convergence` -- online convergence estimation (§3.1)
* :mod:`repro.core.speed` -- online resource→speed estimation (§3.2)
* :mod:`repro.core.allocation` -- marginal-gain resource allocation (§4.1)
* :mod:`repro.core.placement` -- fewest-servers even task placement (§4.2)

The scheduler classes assembling these live in :mod:`repro.schedulers`.
"""

from repro.core.allocation import (
    AllocationRequest,
    AllocationResult,
    Grant,
    TaskAllocation,
    allocate,
    estimated_time,
)
from repro.core.convergence import ConvergenceEstimator, ConvergencePrediction
from repro.core.placement import (
    JobLayout,
    PlacementCache,
    PlacementRequest,
    PlacementResult,
    place_jobs,
    split_evenly,
    transfer_units,
)
from repro.core.speed import SpeedEstimator

__all__ = [
    "ConvergenceEstimator",
    "ConvergencePrediction",
    "SpeedEstimator",
    "AllocationRequest",
    "AllocationResult",
    "Grant",
    "TaskAllocation",
    "allocate",
    "estimated_time",
    "PlacementCache",
    "PlacementRequest",
    "PlacementResult",
    "JobLayout",
    "place_jobs",
    "split_evenly",
    "transfer_units",
]
