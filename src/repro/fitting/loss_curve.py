"""Online fitting of the convergence curve (§3.1, Eqn 1).

The paper models the normalised training loss at step ``k`` as::

    l(k) = 1 / (b0 * k + b1) + b2          b0, b1, b2 >= 0

and fits the coefficients with an NNLS solver. The model is nonlinear in
``b2``, but *for a fixed* ``b2`` the substitution ``y = 1 / (l - b2)`` makes
it linear: ``y = b0 * k + b1``, an NNLS problem in ``(b0, b1)``. We therefore
search over ``b2`` (coarse grid + golden-section refinement, scoring
candidates by the residual in the *original* loss space) and solve NNLS at
each candidate -- NNLS remains the only solver used, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import FittingError
from repro.fitting.nnls import nnls
from repro.fitting.preprocess import preprocess_losses
from repro.obs.registry import active_registry

#: Residual buckets for the fit-quality histograms (normalised loss units).
RESIDUAL_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5)

#: Minimum number of points required before a fit is attempted.
MIN_POINTS = 4

#: Hard cap when scanning for the convergence epoch on a fitted curve.
MAX_PREDICT_EPOCHS = 100_000


@dataclass(frozen=True)
class LossCurveFit:
    """A fitted Eqn-1 convergence curve (normalised loss units).

    ``residual`` is the root-mean-square error between the fitted curve and
    the (preprocessed, normalised) observations.
    """

    beta0: float
    beta1: float
    beta2: float
    residual: float
    num_points: int
    scale: float = 1.0

    def predict(self, step: float) -> float:
        """Predicted normalised loss at *step*."""
        if step < 0:
            raise FittingError("step must be non-negative")
        denom = self.beta0 * step + self.beta1
        if denom <= 0:
            raise FittingError("degenerate fit: b0*k + b1 must be positive")
        return 1.0 / denom + self.beta2

    def predict_raw(self, step: float) -> float:
        """Predicted loss in the job's raw (un-normalised) units."""
        return self.predict(step) * self.scale

    def epoch_decrease(self, epoch: int, steps_per_epoch: float) -> float:
        """Predicted loss decrease over epoch number *epoch*."""
        if epoch < 1:
            raise FittingError("epoch numbers start at 1")
        return self.predict((epoch - 1) * steps_per_epoch) - self.predict(
            epoch * steps_per_epoch
        )

    def epochs_to_converge(
        self, threshold: float, steps_per_epoch: float, patience: int = 2
    ) -> int:
        """Total epochs until the §2.1 stopping rule fires on the fitted curve.

        The fitted curve's per-epoch decrease is strictly decreasing in the
        epoch number, so we binary-search the first epoch whose decrease
        falls below *threshold* and add ``patience - 1`` confirmation epochs.
        """
        if threshold <= 0:
            raise FittingError("threshold must be positive")
        if steps_per_epoch <= 0:
            raise FittingError("steps_per_epoch must be positive")
        if patience < 1:
            raise FittingError("patience must be >= 1")
        if self.beta0 <= 0:
            # A flat fit never crosses the threshold from above: with no
            # decay at all, every epoch's decrease is 0 < threshold.
            return patience
        if self.epoch_decrease(1, steps_per_epoch) < threshold:
            return patience
        lo, hi = 1, 2
        while (
            self.epoch_decrease(hi, steps_per_epoch) >= threshold
            and hi < MAX_PREDICT_EPOCHS
        ):
            lo, hi = hi, hi * 2
        hi = min(hi, MAX_PREDICT_EPOCHS)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.epoch_decrease(mid, steps_per_epoch) < threshold:
                hi = mid
            else:
                lo = mid
        return hi + patience - 1

    def steps_to_converge(
        self, threshold: float, steps_per_epoch: float, patience: int = 2
    ) -> float:
        """Total steps (from step 0) until convergence on the fitted curve."""
        return (
            self.epochs_to_converge(threshold, steps_per_epoch, patience)
            * steps_per_epoch
        )

    def remaining_steps(
        self,
        current_step: float,
        threshold: float,
        steps_per_epoch: float,
        patience: int = 2,
    ) -> float:
        """Steps left from *current_step* until predicted convergence (>= 0)."""
        total = self.steps_to_converge(threshold, steps_per_epoch, patience)
        return max(total - current_step, 0.0)


def _nnls_for_beta2(
    steps: np.ndarray, losses: np.ndarray, beta2: float
) -> Optional[Tuple[float, float, float]]:
    """NNLS solve of ``1/(l - b2) = b0*k + b1``; returns (b0, b1, rmse)."""
    shifted = losses - beta2
    if np.any(shifted <= 1e-9):
        return None
    y = 1.0 / shifted
    design = np.column_stack([steps, np.ones_like(steps)])
    try:
        coeffs, _ = nnls(design, y)
    except FittingError:
        return None
    beta0, beta1 = float(coeffs[0]), float(coeffs[1])
    denom = beta0 * steps + beta1
    if np.any(denom <= 1e-12):
        return None
    predicted = 1.0 / denom + beta2
    rmse = float(np.sqrt(np.mean((predicted - losses) ** 2)))
    return beta0, beta1, rmse


def fit_loss_curve(
    steps: Sequence[float],
    losses: Sequence[float],
    preprocess: bool = True,
    grid_size: int = 24,
    refine_iters: int = 40,
) -> LossCurveFit:
    """Fit Eqn 1 to raw ``(step, loss)`` observations.

    Parameters
    ----------
    steps, losses:
        Observation history (any order; raw loss units).
    preprocess:
        Run the §3.1 outlier-removal + normalisation pipeline first.
    grid_size:
        Coarse-grid resolution of the ``b2`` search.
    refine_iters:
        Golden-section iterations around the best grid cell.

    Raises
    ------
    FittingError
        With fewer than :data:`MIN_POINTS` observations or when no
        admissible ``b2`` yields a solvable NNLS problem.
    """
    if len(steps) != len(losses):
        raise FittingError("steps and losses must have equal length")
    if len(steps) < MIN_POINTS:
        raise FittingError(
            f"need at least {MIN_POINTS} points to fit, got {len(steps)}"
        )
    if preprocess:
        k, vals, scale = preprocess_losses(steps, losses)
    else:
        order = np.argsort(np.asarray(steps, dtype=float))
        k = np.asarray(steps, dtype=float)[order]
        vals = np.asarray(losses, dtype=float)[order]
        scale = 1.0
    if np.any(vals <= 0):
        raise FittingError("losses must be positive")

    min_loss = float(vals.min())
    upper = min_loss * 0.999

    best: Optional[Tuple[float, float, float, float]] = None  # (rmse, b0, b1, b2)

    def consider(beta2: float) -> float:
        nonlocal best
        result = _nnls_for_beta2(k, vals, beta2)
        if result is None:
            return math.inf
        beta0, beta1, rmse = result
        if best is None or rmse < best[0]:
            best = (rmse, beta0, beta1, beta2)
        return rmse

    grid = np.linspace(0.0, upper, grid_size)
    scores = [consider(b2) for b2 in grid]

    # Golden-section refinement around the best coarse cell.
    best_idx = int(np.argmin(scores))
    lo = grid[max(best_idx - 1, 0)]
    hi = grid[min(best_idx + 1, grid_size - 1)]
    if hi > lo:
        inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - inv_phi * (b - a)
        d = a + inv_phi * (b - a)
        fc, fd = consider(c), consider(d)
        for _ in range(refine_iters):
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - inv_phi * (b - a)
                fc = consider(c)
            else:
                a, c, fc = c, d, fd
                d = a + inv_phi * (b - a)
                fd = consider(d)

    if best is None:
        metrics = active_registry()
        metrics.counter("est.loss_fit_failures").inc()
        raise FittingError("could not fit the loss curve to the data")
    rmse, beta0, beta1, beta2 = best
    metrics = active_registry()
    metrics.counter("est.loss_fits").inc()
    metrics.histogram("est.loss_fit_residual", RESIDUAL_BUCKETS).observe(rmse)
    return LossCurveFit(
        beta0=beta0,
        beta1=beta1,
        beta2=beta2,
        residual=rmse,
        num_points=len(k),
        scale=scale,
    )
