"""Non-negative least squares (NNLS).

§3.1 and §3.2 of the paper fit both the loss-curve model and the speed
functions with an NNLS solver. We implement the classic Lawson–Hanson
active-set algorithm ourselves (the library must not silently depend on
``scipy.optimize.nnls`` internals) but verify it against SciPy in the test
suite.

Given ``A`` (m x n) and ``b`` (m,), solve::

    minimize ||A x - b||_2   subject to   x >= 0
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.common.errors import FittingError


def nnls(
    A: np.ndarray,
    b: np.ndarray,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
) -> Tuple[np.ndarray, float]:
    """Lawson–Hanson non-negative least squares.

    Parameters
    ----------
    A:
        Design matrix of shape ``(m, n)``.
    b:
        Target vector of shape ``(m,)``.
    max_iter:
        Iteration cap; defaults to ``3 * n``.
    tol:
        Optimality tolerance on the dual vector; defaults to a scale-aware
        value derived from machine epsilon.

    Returns
    -------
    (x, rnorm):
        The non-negative solution and the residual 2-norm ``||A x - b||``.

    Raises
    ------
    FittingError
        On malformed inputs or failure to converge within ``max_iter``.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float).ravel()
    if A.ndim != 2:
        raise FittingError(f"A must be 2-D, got shape {A.shape}")
    m, n = A.shape
    if b.shape[0] != m:
        raise FittingError(f"A has {m} rows but b has {b.shape[0]} entries")
    if m == 0 or n == 0:
        raise FittingError("empty problem")
    if not (np.isfinite(A).all() and np.isfinite(b).all()):
        raise FittingError("A and b must be finite")

    if max_iter is None:
        max_iter = max(3 * n, 30)
    if tol is None:
        tol = 10 * max(m, n) * np.finfo(float).eps * max(
            float(np.abs(A).max(initial=0.0)), 1.0
        ) * max(float(np.abs(b).max(initial=0.0)), 1.0)

    x = np.zeros(n)
    passive = np.zeros(n, dtype=bool)  # the "P" set
    w = A.T @ (b - A @ x)

    outer = 0
    while (not passive.all()) and np.any(w[~passive] > tol):
        outer += 1
        if outer > max_iter:
            raise FittingError(f"NNLS failed to converge in {max_iter} iterations")
        # Bring the most promising coordinate into the passive set.
        candidates = np.where(~passive)[0]
        j = candidates[int(np.argmax(w[candidates]))]
        passive[j] = True

        # Inner loop: keep the passive solution strictly feasible.
        while True:
            cols = np.where(passive)[0]
            z_passive, *_ = np.linalg.lstsq(A[:, cols], b, rcond=None)
            z = np.zeros(n)
            z[cols] = z_passive
            if np.all(z[cols] > tol):
                x = z
                break
            # Step toward z only as far as feasibility allows.
            blocking = cols[z[cols] <= tol]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = x[blocking] / (x[blocking] - z[blocking])
            ratios = np.where(np.isfinite(ratios), ratios, 0.0)
            alpha = float(ratios.min()) if blocking.size else 0.0
            x = x + alpha * (z - x)
            # Drop coordinates that hit zero back to the active set.
            drop = passive & (np.abs(x) <= tol * max(1.0, float(np.abs(x).max())))
            drop &= ~(z > tol)
            if not drop.any():
                # Numerical safety: force the worst offender out.
                worst = cols[int(np.argmin(z[cols]))]
                drop = np.zeros(n, dtype=bool)
                drop[worst] = True
            passive &= ~drop
            x[~passive] = 0.0
            if not passive.any():
                break
        w = A.T @ (b - A @ x)

    residual = float(np.linalg.norm(A @ x - b))
    return np.maximum(x, 0.0), residual


def nnls_fit(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Convenience wrapper returning only the coefficient vector."""
    x, _ = nnls(A, b)
    return x
