"""Fitting the resource→speed functions (§3.2, Eqn 3 and Eqn 4).

Both speed functions are linear in their θ coefficients once the target is
transformed, so plain NNLS applies -- no nonlinear optimiser needed:

* **Asynchronous** (Eqn 3)::

      f(p, w) = w * (θ0 + θ1 * w/p + θ2 * w + θ3 * p)^-1

  With ``g = w / f`` (seconds per step) this is ``g = θ0 + θ1*(w/p) +
  θ2*w + θ3*p``, a 4-term NNLS problem.

* **Synchronous** (Eqn 4)::

      f(p, w) = (θ0 * M/w + θ1 + θ2 * w/p + θ3 * w + θ4 * p)^-1

  With ``g = 1 / f`` this is a 5-term NNLS problem (``M`` is the fixed
  global batch size).

The θ coefficients correspond term-by-term to Eqn 2: θ0 ≈ forward
propagation, θ1 (sync) ≈ backward propagation, the ``w/p`` coefficient ≈
data transfer, and the ``w``/``p`` coefficients ≈ connection overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import FittingError
from repro.fitting.nnls import nnls
from repro.obs.registry import active_registry
from repro.workloads.speed import MODE_ASYNC, MODE_SYNC, validate_mode

#: Buckets for the per-fit RSS histogram (speed-space squared error).
RSS_BUCKETS = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

#: One profiling measurement: (num_ps, num_workers, measured speed).
SpeedSample = Tuple[int, int, float]

#: Minimum sample count per mode (must be >= number of coefficients).
MIN_SAMPLES = {MODE_ASYNC: 4, MODE_SYNC: 5}


def _design_row(mode: str, p: float, w: float, global_batch: float) -> List[float]:
    if mode == MODE_ASYNC:
        return [1.0, w / p, w, p]
    return [global_batch / w, 1.0, w / p, w, p]


@dataclass(frozen=True)
class SpeedModelFit:
    """A fitted Eqn-3/Eqn-4 speed function.

    ``thetas`` holds (θ0..θ3) for async or (θ0..θ4) for sync. ``residual``
    is the residual sum of squares in speed space over the fitting samples
    (the quantity Table 2 reports).
    """

    mode: str
    thetas: Tuple[float, ...]
    residual: float
    num_samples: int
    global_batch: float = 0.0

    def step_seconds(self, p: int, w: int) -> float:
        """Predicted seconds per step (the bracketed term of Eqn 3/4)."""
        if p < 1 or w < 1:
            raise FittingError("p and w must be >= 1")
        row = _design_row(self.mode, float(p), float(w), self.global_batch)
        value = float(np.dot(self.thetas, row))
        if value <= 0:
            raise FittingError("degenerate speed fit (non-positive step time)")
        return value

    def predict(self, p: int, w: int) -> float:
        """Predicted training speed in steps/second."""
        seconds = self.step_seconds(p, w)
        if self.mode == MODE_ASYNC:
            return w / seconds
        return 1.0 / seconds

    def predict_many(self, ps: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict` over parallel arrays of configurations.

        Where :meth:`predict` raises (``p``/``w`` < 1, or a degenerate
        non-positive step time) this returns 0.0 instead, which downstream
        defensive consumers (:func:`repro.core.allocation._safe_speed`) map
        to the same "unusable configuration" outcome. The arithmetic is
        kept term-by-term identical to :func:`_design_row` + ``np.dot`` so
        batch and scalar predictions agree bitwise.
        """
        ps = np.asarray(ps, dtype=float)
        ws = np.asarray(ws, dtype=float)
        th = self.thetas
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if self.mode == MODE_ASYNC:
                seconds = th[0] + th[1] * (ws / ps) + th[2] * ws + th[3] * ps
                speed = ws / seconds
            else:
                seconds = (
                    th[0] * (self.global_batch / ws)
                    + th[1]
                    + th[2] * (ws / ps)
                    + th[3] * ws
                    + th[4] * ps
                )
                speed = 1.0 / seconds
            usable = (ps >= 1) & (ws >= 1) & (seconds > 0)
            return np.where(usable, speed, 0.0)


def fit_speed_model(
    samples: Sequence[SpeedSample],
    mode: str,
    global_batch: Optional[float] = None,
) -> SpeedModelFit:
    """Fit a speed function from ``(p, w, speed)`` profiling samples.

    Parameters
    ----------
    samples:
        Measurements collected from short sample runs (§3.2) and online
        observation during training.
    mode:
        ``"sync"`` or ``"async"``.
    global_batch:
        Required for synchronous fits (the ``M`` of Eqn 4).
    """
    validate_mode(mode)
    if mode == MODE_SYNC:
        if global_batch is None or global_batch <= 0:
            raise FittingError("synchronous fits need a positive global_batch")
    else:
        global_batch = 0.0
    required = MIN_SAMPLES[mode]
    if len(samples) < required:
        raise FittingError(
            f"{mode} speed fit needs >= {required} samples, got {len(samples)}"
        )
    rows, targets = [], []
    for p, w, speed in samples:
        if p < 1 or w < 1:
            raise FittingError(f"invalid sample configuration (p={p}, w={w})")
        if speed <= 0 or not np.isfinite(speed):
            raise FittingError(f"invalid measured speed {speed!r}")
        rows.append(_design_row(mode, float(p), float(w), float(global_batch)))
        # Transform speed to the linear target: seconds per step.
        targets.append(w / speed if mode == MODE_ASYNC else 1.0 / speed)

    coeffs, _ = nnls(np.asarray(rows), np.asarray(targets))
    fit = SpeedModelFit(
        mode=mode,
        thetas=tuple(float(c) for c in coeffs),
        residual=0.0,
        num_samples=len(samples),
        global_batch=float(global_batch),
    )
    # Residual sum of squares in speed space, as Table 2 reports.
    rss = 0.0
    for p, w, speed in samples:
        rss += (fit.predict(p, w) - speed) ** 2
    metrics = active_registry()
    metrics.counter("est.speed_fits").inc()
    metrics.histogram("est.speed_fit_rss", RSS_BUCKETS).observe(rss)
    return SpeedModelFit(
        mode=mode,
        thetas=fit.thetas,
        residual=float(rss),
        num_samples=len(samples),
        global_batch=float(global_batch),
    )


def sample_configurations(
    max_ps: int,
    max_workers: int,
    num_samples: int,
    seed=None,
) -> List[Tuple[int, int]]:
    """Pick ``(p, w)`` pairs for the initial profiling runs (§3.2).

    The paper pre-runs each job under a handful of configurations (5 by
    default in §6.1) out of the full grid. We spread the picks across the
    grid deterministically-under-seed: always include the corners
    ``(1, 1)`` and ``(max_ps, max_workers)``, then fill with random distinct
    grid points.
    """
    from repro.common.rand import spawn_rng

    if max_ps < 1 or max_workers < 1:
        raise FittingError("grid bounds must be >= 1")
    total = max_ps * max_workers
    if num_samples < 2:
        raise FittingError("need at least 2 sample configurations")
    num_samples = min(num_samples, total)
    rng = spawn_rng(seed, "speed-samples")
    picked = {(1, 1), (max_ps, max_workers)}
    while len(picked) < num_samples:
        p = int(rng.integers(1, max_ps + 1))
        w = int(rng.integers(1, max_workers + 1))
        picked.add((p, w))
    return sorted(picked)
