"""Loss-data preprocessing exactly as described in §3.1.

Two passes before any model fitting:

1. **Outlier removal** -- a data point is an outlier when it does not fall
   within the range spanned by its neighbourhood: between the minimum loss of
   the subsequent ``window`` points and the maximum loss of the previous
   ``window`` points (the paper uses a 5-epoch window). Outliers are replaced
   by the average of their neighbours.
2. **Normalisation** -- divide every raw value by the maximum loss collected
   so far (typically the first value), mapping all jobs' losses into
   ``(0, 1]`` so one fitting configuration works across jobs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import FittingError


def remove_outliers(
    values: Sequence[float], window: int = 5, margin: float = 0.05
) -> List[float]:
    """Replace neighbourhood-range violations by the neighbourhood mean.

    Parameters
    ----------
    values:
        Raw loss values in collection order.
    window:
        Neighbourhood half-width (the paper's "5 epochs").
    margin:
        Relative slack on the admissible range, so ordinary mini-batch noise
        at the range boundary is not flagged.
    """
    if window < 1:
        raise FittingError("window must be >= 1")
    if margin < 0:
        raise FittingError("margin must be non-negative")
    data = [float(v) for v in values]
    n = len(data)
    if n <= 2:
        return data

    cleaned = list(data)
    for i in range(n):
        prev_window = data[max(0, i - window) : i]
        next_window = data[i + 1 : i + 1 + window]
        if not prev_window or not next_window:
            continue  # boundary points keep their value
        upper = max(prev_window) * (1.0 + margin)
        lower = min(next_window) * (1.0 - margin)
        if data[i] > upper or data[i] < lower:
            cleaned[i] = float(np.mean(prev_window + next_window))
    return cleaned


def normalize(values: Sequence[float]) -> Tuple[List[float], float]:
    """Divide by the maximum loss collected so far.

    Returns the normalised values and the scale used, so predictions can be
    mapped back to raw units.
    """
    data = [float(v) for v in values]
    if not data:
        raise FittingError("cannot normalise an empty sequence")
    scale = max(data)
    if scale <= 0:
        raise FittingError("losses must contain a positive value")
    return [v / scale for v in data], scale


def preprocess_losses(
    steps: Sequence[float],
    losses: Sequence[float],
    window: int = 5,
    margin: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Full §3.1 pipeline: outlier removal then normalisation.

    Returns ``(steps, normalised_losses, scale)`` as arrays sorted by step.
    """
    if len(steps) != len(losses):
        raise FittingError("steps and losses must have equal length")
    if len(steps) == 0:
        raise FittingError("no data points")
    order = np.argsort(np.asarray(steps, dtype=float))
    sorted_steps = np.asarray(steps, dtype=float)[order]
    sorted_losses = [float(np.asarray(losses, dtype=float)[i]) for i in order]
    cleaned = remove_outliers(sorted_losses, window=window, margin=margin)
    normalised, scale = normalize(cleaned)
    return sorted_steps, np.asarray(normalised), scale


def subsample(
    steps: Sequence[float], losses: Sequence[float], max_points: int = 500
) -> Tuple[List[float], List[float]]:
    """Thin a long observation history to at most *max_points* points.

    §3.1: "in such a case we can sample loss data every few steps ... to
    reduce the number of data points fed into the solver". Keeps the first
    and last points and a uniform stride in between.
    """
    if max_points < 2:
        raise FittingError("max_points must be >= 2")
    n = len(steps)
    if n != len(losses):
        raise FittingError("steps and losses must have equal length")
    if n <= max_points:
        return list(steps), list(losses)
    idx = np.unique(np.linspace(0, n - 1, max_points).round().astype(int))
    return [steps[i] for i in idx], [losses[i] for i in idx]
