"""Model fitting: NNLS solver, §3.1 preprocessing, Eqn-1/3/4 fitters."""

from repro.fitting.loss_curve import (
    MIN_POINTS,
    LossCurveFit,
    fit_loss_curve,
)
from repro.fitting.nnls import nnls, nnls_fit
from repro.fitting.preprocess import (
    normalize,
    preprocess_losses,
    remove_outliers,
    subsample,
)
from repro.fitting.speed_model import (
    MIN_SAMPLES,
    SpeedModelFit,
    SpeedSample,
    fit_speed_model,
    sample_configurations,
)

__all__ = [
    "nnls",
    "nnls_fit",
    "remove_outliers",
    "normalize",
    "preprocess_losses",
    "subsample",
    "LossCurveFit",
    "fit_loss_curve",
    "MIN_POINTS",
    "SpeedModelFit",
    "SpeedSample",
    "fit_speed_model",
    "sample_configurations",
    "MIN_SAMPLES",
]
