"""Command-line interface: ``optimus-repro`` / ``python -m repro``.

Subcommands:

* ``arena`` -- race registered policies head-to-head on one seeded trace.
* ``compare`` -- run the Fig-11 style scheduler comparison (arena alias).
* ``simulate`` -- run one full simulation and dump metrics (optionally JSON).
* ``scalability`` -- time a scheduling round at cluster scale (Fig 12).
* ``trace`` -- summarise a JSONL event trace written by ``--trace-out``.
* ``metrics-export`` -- render a metrics dump in Prometheus text format.
* ``top`` -- live (or ``--once``) cluster/job table from a trace file.
* ``models`` -- print the Table-1 model zoo with ground-truth dynamics.
* ``partition`` -- print the Table-3 style PAA-vs-MXNet comparison.
* ``speed`` -- print a model's speed surface over (p, w).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.cluster import Cluster, cpu_mem
from repro.common.units import format_duration
from repro.ps import blocks_from_sizes, mxnet_partition, paa_partition
from repro.report import bar_chart, format_table, result_to_json, sparkline
from repro.sim import (
    SimConfig,
    StragglerConfig,
    constant_load,
    diurnal_load,
    format_arena,
    run_arena,
    simulate,
)
from repro.workloads import (
    MODEL_ZOO,
    StepTimeModel,
    get_profile,
    google_trace_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)


def _cmd_models(args: argparse.Namespace) -> int:
    print(
        f"{'model':14s} {'params(M)':>9s} {'type':>4s} {'dataset':>22s} "
        f"{'examples':>10s} {'epochs@ref':>10s} {'1-GPU time':>11s}"
    )
    for name, profile in MODEL_ZOO.items():
        epochs = profile.loss.epochs_to_converge(0.002)
        gpu_time = profile.single_gpu_training_time()
        print(
            f"{name:14s} {profile.params_million:9.1f} "
            f"{profile.network_type:>4s} {profile.dataset:>22s} "
            f"{profile.dataset_examples:10d} {epochs:10d} "
            f"{format_duration(gpu_time):>11s}"
        )
    return 0


def _cmd_speed(args: argparse.Namespace) -> int:
    profile = get_profile(args.model)
    model = StepTimeModel(profile, args.mode)
    print(f"{args.model} ({args.mode}) training speed in steps/s:")
    header = "     " + "".join(f"w={w:<7d}" for w in range(1, args.max_tasks + 1, 2))
    print(header)
    for p in range(1, args.max_tasks + 1, 2):
        row = f"p={p:<3d}" + "".join(
            f"{model.speed(p, w):<9.3f}" for w in range(1, args.max_tasks + 1, 2)
        )
        print(row)
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    profile = get_profile(args.model)
    blocks = blocks_from_sizes(profile.parameter_blocks())
    mx = mxnet_partition(blocks, args.num_ps, seed=args.seed)
    pa = paa_partition(blocks, args.num_ps)
    print(
        f"{args.model}: {len(blocks)} blocks, "
        f"{profile.params_million:.1f}M parameters, {args.num_ps} parameter servers"
    )
    print(f"{'algorithm':>10s} {'size diff':>12s} {'req diff':>9s} {'total reqs':>11s}")
    for assignment in (mx, pa):
        print(
            f"{assignment.algorithm:>10s} "
            f"{assignment.size_difference / 1e6:10.2f} M "
            f"{assignment.request_difference:9d} "
            f"{assignment.total_requests:11d}"
        )
    return 0


def _build_workload(args: argparse.Namespace):
    if getattr(args, "trace", None):
        from repro.workloads import load_trace

        return load_trace(args.trace)
    if args.arrivals == "uniform":
        return uniform_arrivals(
            num_jobs=args.jobs, window=args.window, seed=args.seed
        )
    if args.arrivals == "poisson":
        return poisson_arrivals(duration=args.window, seed=args.seed)
    return google_trace_arrivals(
        num_jobs=args.jobs, duration=args.window, seed=args.seed
    )


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import jobs_to_json

    jobs = _build_workload(args)
    payload = jobs_to_json(jobs)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload)
        print(f"wrote {len(jobs)} jobs to {args.output}")
    else:
        print(payload)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.obs import JsonlTracer, MetricsRegistry
    from repro.schedulers import make_scheduler

    jobs = _build_workload(args)
    background = None
    if args.background == "constant":
        background = constant_load(args.background_fraction)
    elif args.background == "diurnal":
        background = diurnal_load(peak=args.background_fraction)
    from repro.faults import FaultConfig

    faults = FaultConfig(
        node_mtbf=args.faults_node_mtbf,
        node_downtime=(args.faults_node_downtime, args.faults_node_downtime)
        if args.faults_node_downtime > 0
        else FaultConfig().node_downtime,
        task_crash_rate=args.faults_task_crash_rate,
        checkpoint_loss_rate=args.faults_ckpt_loss_rate,
    )
    config = SimConfig(
        seed=args.seed,
        estimator_mode=args.estimator,
        partition_algorithm=args.partition,
        stragglers=StragglerConfig(rate=args.straggler_rate),
        background_load=background,
        faults=faults,
        checkpoint_interval=args.checkpoint_interval
        if args.checkpoint_interval > 0
        else None,
        ledger_mode=args.ledger,
        ledger_top_k=args.ledger_top_k,
    )
    cluster = Cluster.homogeneous(args.servers, cpu_mem(16, 80))

    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    needs_registry = bool(args.metrics_out or args.timeseries_out)
    registry = MetricsRegistry() if needs_registry else None
    timeseries = None
    if args.timeseries_out:
        from repro.obs import TimeSeriesDB

        timeseries = TimeSeriesDB()
    try:
        result = simulate(
            cluster,
            make_scheduler(args.scheduler),
            jobs,
            config,
            tracer=tracer,
            metrics=registry,
            timeseries=timeseries,
            engine=args.engine,
        )
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace_out:
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
        # Reproducibility manifest: everything a replay needs, pinned
        # next to the trace it belongs to.
        from repro.sim import default_engine, manifest_path_for, run_manifest, write_manifest

        manifest = run_manifest(
            config=config,
            engine=args.engine if args.engine else default_engine(),
            policy=result.scheduler_name,
            jobs=jobs,
        )
        manifest_path = write_manifest(manifest_path_for(args.trace_out), manifest)
        print(f"wrote manifest to {manifest_path}", file=sys.stderr)
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if timeseries is not None:
        with open(args.timeseries_out, "w") as handle:
            json.dump(timeseries.snapshot(), handle, indent=2, sort_keys=True)
        print(f"wrote timeseries to {args.timeseries_out}", file=sys.stderr)

    if args.json:
        print(result_to_json(result))
        return 0

    summary = result.summary()
    rows = [
        ["scheduler", result.scheduler_name],
        ["jobs finished", f"{int(summary['finished'])}/{int(summary['jobs'])}"],
        ["average JCT (h)", summary["average_jct"] / 3600],
        ["makespan (h)", summary["makespan"] / 3600],
        ["mean running tasks", summary["mean_running_tasks"]],
        ["worker utilisation", summary["worker_utilization"]],
        ["ps utilisation", summary["ps_utilization"]],
        ["scaling overhead", summary["scaling_overhead_fraction"]],
    ]
    if faults.engine_enabled:
        restarts = sum(r.num_restarts for r in result.jobs.values())
        steps_lost = sum(r.steps_lost for r in result.jobs.values())
        rows.append(["job restarts (faults)", restarts])
        rows.append(["steps lost to crashes", steps_lost])
    print(format_table(["metric", "value"], rows))
    if result.phase_timings:
        print("\nper-phase wall-clock profile:")
        print(
            format_table(
                ["phase", "calls", "total (s)", "mean (ms)", "max (ms)"],
                [
                    [
                        phase,
                        int(stats["count"]),
                        stats["total"],
                        stats["mean"] * 1e3,
                        stats["max"] * 1e3,
                    ]
                    for phase, stats in result.phase_timings.items()
                ],
            )
        )
    tasks = [slot.running_tasks for slot in result.timeline]
    if tasks:
        print(f"\nrunning tasks over time: {sparkline(tasks)}")
    print("\nper-job completion times:")
    rows = [
        (record.job_id, record.jct / 3600)
        for record in sorted(result.jobs.values(), key=lambda r: r.arrival_time)
        if record.finished
    ]
    print(bar_chart(rows, width=30, unit="h"))
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    """Run a crash-consistency drill against the deployment control plane.

    Deploys a few jobs through the real ControlLoop/APIServer/KVStore
    stack, then injects the requested disaster -- a controller death at a
    named crash point, and/or a node whose heartbeats stop -- recovers
    from the store alone, and checks the §5.5 invariants: convergence to
    the desired layouts, no orphaned pods, node capacity consistent with
    bound pods, and per-job progress loss bounded by one interval.
    """
    from repro.common.errors import ControllerCrashed
    from repro.deploy import ControlLoop
    from repro.faults import ControllerCrash, CrashPointInjector
    from repro.k8s import APIServer
    from repro.obs import MetricsRegistry, RecordingTracer
    from repro.schedulers import JobView, make_scheduler
    from repro.workloads import StepTimeModel, make_job

    models = sorted(MODEL_ZOO)
    specs = [
        make_job(
            models[(i + args.seed) % len(models)], mode="sync", job_id=f"job-{i}"
        )
        for i in range(args.jobs)
    ]
    truths = {s.job_id: StepTimeModel(s.profile, "sync") for s in specs}
    progress = {s.job_id: 0.0 for s in specs}

    def views():
        return [
            JobView(
                spec=spec,
                remaining_steps=max(50_000.0 - progress[spec.job_id], 1_000.0),
                speed=lambda p, w, t=truths[spec.job_id]: t.speed(p, w),
                observation_count=100,
            )
            for spec in specs
        ]

    api = APIServer()
    ttl = args.lease_ttl if args.lease_ttl > 0 else None
    node_names = [f"n{i}" for i in range(args.servers)]
    for name in node_names:
        api.register_node(name, cpu_mem(16, 64), lease_ttl=ttl, now=0.0)

    injector = None
    if args.crash_point:
        injector = CrashPointInjector([ControllerCrash(args.crash_point)])
    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    loop = ControlLoop(
        api,
        make_scheduler(args.scheduler),
        tracer=tracer,
        metrics=metrics,
        crash_points=injector,
    )
    dead_node = (
        node_names[args.expire_node]
        if 0 <= args.expire_node < len(node_names)
        else None
    )

    crashes = 0
    recoveries = 0
    checkpoint_at_crash: dict = {}
    for _ in range(args.steps):
        now = float(loop.step_index)
        if ttl is not None:
            for name in node_names:
                if name == dead_node and now >= 1:
                    continue  # the "dead" kubelet goes silent after step 0
                if not api.node(name).cordoned:
                    loop.heartbeat(name, now)
        try:
            loop.step(views(), progress=dict(progress))
        except ControllerCrashed as exc:
            crashes += 1
            checkpoint_at_crash = dict(progress)
            print(f"[drill] {exc}", file=sys.stderr)
            loop = ControlLoop(
                api,
                make_scheduler(args.scheduler),
                tracer=tracer,
                metrics=metrics,
                start_step=loop.step_index,
            )
            recovered = loop.recover()
            recoveries += 1
            for job_id, steps in recovered.items():
                progress[job_id] = max(progress.get(job_id, 0.0), steps)
            loop.step(views(), progress=dict(progress))
        for spec in specs:
            progress[spec.job_id] += 250.0

    # -- invariants --------------------------------------------------------------
    failures = []
    pods = api.list_pods()
    known_jobs = {s.job_id for s in specs}
    orphans = [p.name for p in pods if p.job_id not in known_jobs]
    if orphans:
        failures.append(f"orphaned pods: {orphans}")
    for node in api.list_nodes():
        bound = sum(
            (p.demand for p in pods if p.node == node.name),
            start=cpu_mem(0, 0),
        )
        if dict(node.allocated.items()) != dict(bound.items()):
            failures.append(
                f"node {node.name}: allocated {node.allocated} != bound {bound}"
            )
    if dead_node is not None and ttl is not None:
        if not api.node(dead_node).cordoned:
            failures.append(f"dead node {dead_node} was never cordoned")
        on_dead = [p.name for p in pods if p.node == dead_node]
        if on_dead:
            failures.append(f"pods still on dead node: {on_dead}")
    if crashes:
        for job_id, at_crash in checkpoint_at_crash.items():
            saved = loop.controller.load_checkpoint(job_id)
            if saved is not None and at_crash - saved > 250.0:
                failures.append(
                    f"{job_id}: lost {at_crash - saved:.0f} steps (> 1 interval)"
                )

    counters = metrics.snapshot()["counters"]
    rows = [
        ["steps run", args.steps],
        ["controller crashes injected", crashes],
        ["recoveries", recoveries],
        ["intents replayed", int(counters.get("loop.intents_replayed", 0))],
        ["nodes cordoned", int(counters.get("loop.nodes_cordoned", 0))],
        ["lease renewals", int(counters.get("lease.renewals", 0))],
        ["pods running", len(pods)],
        ["invariants", "FAIL" if failures else "ok"],
    ]
    if args.json:
        print(
            json.dumps(
                {
                    "summary": {str(k): v for k, v in rows},
                    "failures": failures,
                    "checkpoints": {
                        s.job_id: loop.controller.load_checkpoint(s.job_id)
                        for s in specs
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_table(["metric", "value"], rows))
        for failure in failures:
            print(f"INVARIANT VIOLATED: {failure}")
    return 1 if failures else 0


def _cmd_failover(args: argparse.Namespace) -> int:
    """Run a controller-failover drill: kill the leader, audit the takeover.

    Runs a hot/standby controller pair over one KV store, kills the leader
    the scripted way (silently, deposed mid-step behind the write fence, or
    at a reconcile/election crash point), and audits the resulting trace
    with the election invariants: no dual leadership, monotone fencing
    epochs, takeover within 2x the lease TTL, no leaked pods / leases /
    intents. Exit 0 means every invariant held.
    """
    from repro.deploy.failover import FailoverConfig, run_failover_drill

    config = FailoverConfig(
        seed=args.seed,
        jobs=args.jobs,
        servers=args.servers,
        lease_ttl=args.lease_ttl,
        policy=args.scheduler,
        crash_point=args.crash_point,
        kills=args.kills,
    )
    outcome = run_failover_drill(config, trace_out=args.trace_out)
    report = outcome.report or {}
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.report_out}", file=sys.stderr)
    if args.trace_out:
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
        # Reproducibility manifest, same contract as simulate/soak: the
        # drill has no SimConfig, so the seed is pinned directly.
        from repro.sim import manifest_path_for, run_manifest, write_manifest

        manifest = run_manifest(
            engine="controlloop",
            policy=config.policy,
            seed=config.seed,
            extra={
                "drill": {
                    "jobs": config.jobs,
                    "servers": config.servers,
                    "lease_ttl": config.lease_ttl,
                    "crash_point": config.crash_point,
                    "kills": config.kills,
                }
            },
        )
        manifest_path = write_manifest(
            manifest_path_for(args.trace_out), manifest
        )
        print(f"wrote manifest to {manifest_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        latencies = outcome.takeover_latencies
        worst = max(latencies) if latencies else 0.0
        print(
            f"[failover] kills={len(latencies)} "
            f"takeover latency (steps): worst={worst:g} "
            f"all={[f'{lat:g}' for lat in latencies]}"
        )
        print(
            f"[failover] fenced writes={outcome.fenced_writes} "
            f"final epoch={outcome.final_epoch}"
        )
        for kind, leaked in (
            ("pods", outcome.leaked_pods),
            ("leases", outcome.leaked_leases),
            ("intents", outcome.leaked_intents),
        ):
            if leaked:
                print(f"[failover] LEAKED {kind}: {leaked}")
        violations = outcome.checker.violations if outcome.checker else []
        for violation in violations:
            print(f"[failover] VIOLATION {violation}")
        print(f"failover: {'ok' if outcome.ok else 'FAILED'}")
    return 0 if outcome.ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    """Long-horizon soak runs and trace-stream invariant checking.

    Three modes: ``--scenario FILE`` runs a chaos scenario end to end and
    audits its stream; ``--check TRACE`` audits an existing JSONL trace;
    ``--self-test`` seeds violations into a known-good stream and asserts
    the checker catches them. Exit 0 means every invariant held.
    """
    from repro.common.errors import ConfigurationError
    from repro.soak import CheckerConfig, check_trace_file, run_selftest

    modes = sum(1 for m in (args.scenario, args.check, args.self_test) if m)
    if modes != 1:
        print(
            "soak: exactly one of --scenario, --check or --self-test is required",
            file=sys.stderr,
        )
        return 2

    if args.self_test:
        verdict = run_selftest(
            seed=args.seed_override if args.seed_override is not None else 0
        )
        if args.report_out:
            with open(args.report_out, "w") as handle:
                json.dump(verdict, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.json:
            print(json.dumps(verdict, indent=2, sort_keys=True))
        else:
            for case in verdict["cases"]:
                status = "ok" if case["detected"] else "MISSED"
                print(f"[self-test] {case['name']}: {status}")
            print(f"self-test: {'ok' if verdict['ok'] else 'FAILED'}")
        return 0 if verdict["ok"] else 1

    if args.check:
        config = CheckerConfig(
            recovery_slack=args.recovery_slack,
            require_accounting=args.require_accounting,
            strict_end=args.strict_end,
            failover_bound=args.failover_bound,
        )
        checker = check_trace_file(args.check, config)
        report = checker.report(extra={"trace": args.check})
        if args.report_out:
            with open(args.report_out, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote report to {args.report_out}", file=sys.stderr)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            stats = report["stats"]
            print(
                f"checked {stats['events']} events: "
                f"{stats['jobs_arrived']} jobs arrived, "
                f"{stats['jobs_completed']} completed, "
                f"{stats['node_failures']} node failures"
            )
            for violation in report["violations"]:
                print(f"INVARIANT VIOLATED [{violation['invariant']}]: {violation['message']}")
            print("invariants: " + ("ok" if report["ok"] else "FAIL"))
        return 0 if report["ok"] else 1

    from repro.sim import load_scenario, run_soak

    try:
        scenario = load_scenario(args.scenario)
        if args.seed_override is not None:
            import dataclasses as _dc

            scenario = _dc.replace(scenario, seed=args.seed_override)
        if args.engine:
            import dataclasses as _dc

            scenario = _dc.replace(scenario, engine=args.engine)
        outcome = run_soak(
            scenario,
            trace_out=args.trace_out,
            report_out=args.report_out,
        )
    except ConfigurationError as exc:
        print(f"soak: {exc}", file=sys.stderr)
        return 2
    if args.trace_out:
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
        print(f"wrote manifest to {outcome.manifest_path}", file=sys.stderr)
    if outcome.report_path:
        print(f"wrote report to {outcome.report_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(outcome.report, indent=2, sort_keys=True))
    else:
        sim = outcome.report["sim"]
        stats = outcome.report["stats"]
        rows = [
            ["scenario", scenario.name],
            ["seed", scenario.seed],
            ["engine", outcome.report["engine"]],
            ["policy", scenario.policy],
            ["jobs finished", f"{sim['finished']}/{sim['jobs']}"],
            ["makespan (h)", sim["makespan"] / 3600],
            ["events checked", stats["events"]],
            ["restarts", stats["restarts"]],
            ["node failures", stats["node_failures"]],
            ["invariants", "ok" if outcome.ok else "FAIL"],
        ]
        print(format_table(["metric", "value"], rows))
        for violation in outcome.violations:
            print(
                f"INVARIANT VIOLATED [{violation.invariant}]: {violation.message}"
            )
    return 0 if outcome.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    files = args.files
    if files and files[0] == "diff":
        # ``repro trace diff A B``: align two manifested runs of the same
        # workload and report the first divergent decision per job.
        if len(files) != 3:
            print("trace diff: expected exactly two trace files", file=sys.stderr)
            return 2
        return _trace_diff_files(files[1], files[2], max_jobs=args.diff_jobs)
    if len(files) != 1:
        print(
            "trace: expected one trace file (or: trace diff A B)",
            file=sys.stderr,
        )
        return 2
    from repro.obs import summarize_file

    limit = args.max_events_per_job if args.max_events_per_job > 0 else None
    print(summarize_file(files[0], max_events_per_job=limit))
    return 0


def _trace_diff_files(path_a: str, path_b: str, max_jobs: int = 0) -> int:
    import os

    from repro.obs import read_trace_tolerant
    from repro.obs.explain import format_trace_diff, trace_diff

    events_a, skipped_a = read_trace_tolerant(path_a)
    events_b, skipped_b = read_trace_tolerant(path_b)
    diff = trace_diff(
        events_a,
        events_b,
        label_a=os.path.basename(path_a),
        label_b=os.path.basename(path_b),
    )
    print(format_trace_diff(diff, max_jobs=max_jobs if max_jobs > 0 else None))
    skipped = skipped_a + skipped_b
    if skipped:
        print(f"(skipped {skipped} corrupt line(s))", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Replay the decision ledger into one job's grant/denial timeline."""
    from repro.obs import read_trace_tolerant
    from repro.obs.explain import explain_trace

    events, skipped = read_trace_tolerant(args.file)
    print(explain_trace(events, args.job, at=args.at))
    if skipped:
        print(f"(skipped {skipped} corrupt line(s))", file=sys.stderr)
    return 0


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    """Render a ``--metrics-out`` JSON dump in Prometheus text format."""
    from repro.obs import render_prometheus

    with open(args.file) as handle:
        snapshot = json.load(handle)
    text = render_prometheus(snapshot, namespace=args.namespace)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Cluster/job table from a trace: once, or refreshing while it grows."""
    from repro.obs import read_trace_tolerant, render_top

    metrics_snapshot = None
    if args.metrics:
        with open(args.metrics) as handle:
            metrics_snapshot = json.load(handle)

    def render() -> str:
        events, skipped = read_trace_tolerant(args.file)
        screen = render_top(
            events,
            metrics_snapshot=metrics_snapshot,
            max_jobs=args.jobs if args.jobs > 0 else None,
        )
        if skipped:
            screen += f"\n(skipped {skipped} corrupt line(s))"
        return screen

    if args.once:
        print(render())
        return 0
    try:
        while True:
            # ANSI clear + home, like watch(1); the trace file is re-read
            # every cycle so a still-running simulation streams in live.
            sys.stdout.write("\x1b[2J\x1b[H" + render() + "\n")
            sys.stdout.flush()
            time.sleep(max(args.refresh, 0.1))
    except KeyboardInterrupt:
        return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    from repro.cluster.resources import ResourceVector
    from repro.core.allocation import AllocationRequest, allocate
    from repro.core.placement import PlacementRequest, place_jobs

    demand = cpu_mem(5, 10)

    def speed(p, w):
        return w / (2.0 + 3.0 * w / p + 0.02 * w + 0.01 * p)

    rows = []
    for nodes, jobs in zip(args.nodes, args.job_counts):
        capacity = ResourceVector({"cpu": 16 * nodes, "memory": 80 * nodes})
        requests = [
            AllocationRequest(
                f"j{i}", 1e5 * (1 + i % 7), speed, demand, demand,
                max_workers=14, max_ps=14,
            )
            for i in range(jobs)
        ]
        start = time.perf_counter()
        allocation = allocate(requests, capacity)
        cluster = Cluster.homogeneous(nodes, cpu_mem(16, 80))
        placement_requests = [
            PlacementRequest(j, a.workers, a.ps, demand, demand)
            for j, a in allocation.allocations.items()
        ]
        placement = place_jobs(cluster, placement_requests)
        elapsed = time.perf_counter() - start
        tasks = sum(a.total for a in allocation.allocations.values())
        rows.append([nodes, jobs, tasks, len(placement.layouts), elapsed])
    print(format_table(["nodes", "jobs", "tasks", "placed", "seconds"], rows))
    return 0


def _cmd_arena(args: argparse.Namespace) -> int:
    from repro.common.errors import ReproError

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    jobs = _build_workload(args)

    def cluster_factory() -> Cluster:
        return Cluster.homogeneous(args.servers, cpu_mem(16, 80))

    config = SimConfig(seed=args.seed, estimator_mode=args.estimator)
    try:
        report = run_arena(
            policies,
            cluster_factory,
            jobs,
            config=config,
            engine=args.engine,
            baseline=args.baseline,
            trace_prefix=args.trace_out,
        )
    except ReproError as exc:
        # Unknown policy names / bad baselines are usage errors, not
        # tracebacks: the registry's message already lists alternatives.
        print(f"arena: {exc}", file=sys.stderr)
        return 2
    if args.trace_out:
        print(
            f"wrote per-policy traces + manifests to {args.trace_out}.<policy>"
            ".jsonl",
            file=sys.stderr,
        )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote report to {args.output}", file=sys.stderr)
    if args.gate_output:
        with open(args.gate_output, "w") as handle:
            json.dump(report.gate_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote gate metrics to {args.gate_output}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_arena(report))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Fig.-11 style comparison: a thin alias of the arena runner.

    Each repeat races all schedulers on its own seeded workload (the
    paper's methodology of averaging reruns is preserved by printing one
    head-to-head table per repeat).
    """

    def cluster_factory() -> Cluster:
        return Cluster.homogeneous(args.servers, cpu_mem(16, 80))

    for repeat in range(args.repeats):
        seed = args.seed + repeat
        jobs = uniform_arrivals(
            num_jobs=args.jobs, window=args.window, seed=seed
        )
        report = run_arena(
            args.schedulers,
            cluster_factory,
            jobs,
            config=SimConfig(seed=seed, estimator_mode=args.estimator),
            baseline=args.schedulers[0],
        )
        if args.repeats > 1:
            print(f"# repeat {repeat} (seed {seed})")
        print(format_arena(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="optimus-repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="print the Table-1 model zoo")
    models.set_defaults(func=_cmd_models)

    speed = sub.add_parser("speed", help="print a model's speed surface")
    speed.add_argument("model", choices=sorted(MODEL_ZOO))
    speed.add_argument("--mode", choices=("sync", "async"), default="sync")
    speed.add_argument("--max-tasks", type=int, default=15)
    speed.set_defaults(func=_cmd_speed)

    partition = sub.add_parser(
        "partition", help="compare PAA vs MXNet parameter assignment"
    )
    partition.add_argument("model", choices=sorted(MODEL_ZOO))
    partition.add_argument("--num-ps", type=int, default=10)
    partition.add_argument("--seed", type=int, default=0)
    partition.set_defaults(func=_cmd_partition)

    workload = sub.add_parser(
        "workload", help="generate a workload trace (JSON) for later replay"
    )
    workload.add_argument("--jobs", type=int, default=9)
    workload.add_argument("--window", type=float, default=12_000.0)
    workload.add_argument(
        "--arrivals", choices=("uniform", "poisson", "google"), default="uniform"
    )
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--output", help="file to write (stdout if omitted)")
    workload.set_defaults(func=_cmd_workload, trace=None)

    simulate_cmd = sub.add_parser("simulate", help="run one full simulation")
    simulate_cmd.add_argument(
        "--trace", help="replay a workload trace file instead of generating one"
    )
    simulate_cmd.add_argument(
        "--scheduler",
        "--policy",
        dest="scheduler",
        default=None,
        help="registered policy name or '<alloc>+<place>' hybrid "
        "(default honours REPRO_POLICY, else optimus)",
    )
    simulate_cmd.add_argument("--jobs", type=int, default=9)
    simulate_cmd.add_argument("--servers", type=int, default=13)
    simulate_cmd.add_argument("--window", type=float, default=12_000.0)
    simulate_cmd.add_argument(
        "--arrivals", choices=("uniform", "poisson", "google"), default="uniform"
    )
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.add_argument(
        "--engine",
        choices=("tick", "event"),
        default=None,
        help="loop core: fixed-tick or event-heap (identical results; "
        "default honours REPRO_SIM_ENGINE, else tick)",
    )
    simulate_cmd.add_argument(
        "--estimator", choices=("online", "oracle", "noisy"), default="online"
    )
    simulate_cmd.add_argument(
        "--partition", choices=("paa", "mxnet"), default="paa"
    )
    simulate_cmd.add_argument("--straggler-rate", type=float, default=0.0)
    simulate_cmd.add_argument(
        "--faults-node-mtbf",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="mean time between node failures (0 = no node crashes)",
    )
    simulate_cmd.add_argument(
        "--faults-node-downtime",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="fixed downtime per node crash (0 = the default 600-1800s range)",
    )
    simulate_cmd.add_argument(
        "--faults-task-crash-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="per-task per-interval crash probability",
    )
    simulate_cmd.add_argument(
        "--faults-ckpt-loss-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a restart finds its latest checkpoint corrupted",
    )
    simulate_cmd.add_argument(
        "--checkpoint-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="seconds between progress checkpoints, bounding progress lost "
        "to a crash (0 = checkpoint every scheduling interval)",
    )
    simulate_cmd.add_argument(
        "--background", choices=("none", "constant", "diurnal"), default="none"
    )
    simulate_cmd.add_argument("--background-fraction", type=float, default=0.5)
    simulate_cmd.add_argument(
        "--json", action="store_true", help="dump the full result as JSON"
    )
    simulate_cmd.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a JSONL event trace (repro.obs) to FILE",
    )
    simulate_cmd.add_argument(
        "--ledger",
        choices=("auto", "off", "full", "sampled"),
        default="auto",
        help="decision-ledger fidelity (repro.obs.ledger): auto follows "
        "--trace-out, full records every grant/denial, sampled keeps the "
        "top-K grants per round plus aggregate counters",
    )
    simulate_cmd.add_argument(
        "--ledger-top-k",
        type=int,
        default=8,
        help="grants kept per allocation round in sampled mode (default: 8)",
    )
    simulate_cmd.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write a JSON metrics-registry dump (repro.obs) to FILE",
    )
    simulate_cmd.add_argument(
        "--timeseries-out",
        metavar="FILE",
        help="write a per-interval metrics-history dump (repro.obs "
        "ring-buffer TSDB) to FILE",
    )
    simulate_cmd.set_defaults(func=_cmd_simulate)

    soak = sub.add_parser(
        "soak",
        help="long-horizon chaos scenarios + trace-stream invariant checking",
    )
    soak.add_argument(
        "--scenario", metavar="FILE", help="run a JSON soak scenario end to end"
    )
    soak.add_argument(
        "--check",
        metavar="TRACE",
        help="audit an existing JSONL trace instead of running a scenario",
    )
    soak.add_argument(
        "--self-test",
        action="store_true",
        help="seed violations into a known-good stream and assert detection",
    )
    soak.add_argument(
        "--trace-out",
        metavar="FILE",
        help="stream the scenario's JSONL trace to FILE (manifest lands "
        "next to it)",
    )
    soak.add_argument(
        "--report-out",
        metavar="FILE",
        help="write the machine-readable violation report to FILE",
    )
    soak.add_argument(
        "--seed",
        dest="seed_override",
        type=int,
        default=None,
        help="override the scenario's seed (--scenario mode)",
    )
    soak.add_argument(
        "--engine",
        choices=("tick", "event"),
        default=None,
        help="override the scenario's engine core",
    )
    soak.add_argument(
        "--recovery-slack",
        type=float,
        default=1800.0,
        help="--check mode: seconds past a node's announced up_at before "
        "its outage counts as overdue (default: 1800)",
    )
    soak.add_argument(
        "--require-accounting",
        action="store_true",
        help="--check mode: fail traces missing the run_completed event",
    )
    soak.add_argument(
        "--strict-end",
        action="store_true",
        help="--check mode: treat unexplained unfinished jobs and overdue "
        "outages at end of stream as violations",
    )
    soak.add_argument(
        "--failover-bound",
        type=float,
        default=None,
        help="--check mode: flag leadership vacancies lasting longer than "
        "this many clock units (sensible value: 2x the election lease TTL)",
    )
    soak.add_argument("--json", action="store_true")
    soak.set_defaults(func=_cmd_soak)

    trace_cmd = sub.add_parser(
        "trace",
        help="summarise a JSONL trace, or 'trace diff A B' to align two runs",
    )
    trace_cmd.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="one .jsonl trace to summarise, or: diff TRACE_A TRACE_B",
    )
    trace_cmd.add_argument(
        "--max-events-per-job",
        type=int,
        default=8,
        help="truncate each job's timeline (0 = no limit)",
    )
    trace_cmd.add_argument(
        "--diff-jobs",
        type=int,
        default=0,
        help="diff mode: show at most this many divergent jobs (0 = all)",
    )
    trace_cmd.set_defaults(func=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="replay the decision ledger: why one job got its allocation",
    )
    explain.add_argument("file", help="path to the .jsonl trace")
    explain.add_argument(
        "--job", required=True, help="job id to explain (e.g. job-0003-vgg-16)"
    )
    explain.add_argument(
        "--at",
        type=float,
        default=None,
        metavar="T",
        help="truncate the replay to events at or before sim time T",
    )
    explain.set_defaults(func=_cmd_explain)

    metrics_export = sub.add_parser(
        "metrics-export",
        help="render a --metrics-out JSON dump in Prometheus text format",
    )
    metrics_export.add_argument("file", help="path to the metrics JSON dump")
    metrics_export.add_argument(
        "--namespace",
        default="repro",
        help="metric-name prefix (default: repro)",
    )
    metrics_export.add_argument(
        "--out", metavar="FILE", help="write to FILE instead of stdout"
    )
    metrics_export.set_defaults(func=_cmd_metrics_export)

    top_cmd = sub.add_parser(
        "top", help="cluster/job table from a trace (live-refreshing)"
    )
    top_cmd.add_argument("file", help="path to the .jsonl trace")
    top_cmd.add_argument(
        "--metrics", metavar="FILE", help="join a metrics JSON dump into the header"
    )
    top_cmd.add_argument(
        "--once", action="store_true", help="render once and exit"
    )
    top_cmd.add_argument(
        "--refresh",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    top_cmd.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="show at most this many jobs (0 = all)",
    )
    top_cmd.set_defaults(func=_cmd_top)

    scalability = sub.add_parser(
        "scalability", help="time scheduling rounds at cluster scale (Fig 12)"
    )
    scalability.add_argument(
        "--nodes", type=int, nargs="+", default=[1000, 4000, 16000]
    )
    scalability.add_argument(
        "--job-counts", type=int, nargs="+", default=[250, 1000, 4000]
    )
    scalability.set_defaults(func=_cmd_scalability)

    arena = sub.add_parser(
        "arena",
        help="race registered policies head-to-head on one seeded trace",
    )
    arena.add_argument(
        "--policies",
        default="optimus,goodput,oasis,drf",
        help="comma-separated registered policy names (or alloc+place hybrids)",
    )
    arena.add_argument(
        "--baseline",
        default=None,
        help="policy the ratios are normalised to (default: first policy)",
    )
    arena.add_argument("--jobs", type=int, default=9)
    arena.add_argument("--servers", type=int, default=13)
    arena.add_argument("--window", type=float, default=12_000.0)
    arena.add_argument(
        "--arrivals", choices=("uniform", "poisson", "google"), default="uniform"
    )
    arena.add_argument("--seed", type=int, default=42)
    arena.add_argument(
        "--trace", help="replay a workload trace file instead of generating one"
    )
    arena.add_argument(
        "--engine",
        choices=("tick", "event"),
        default=None,
        help="loop core (default honours REPRO_SIM_ENGINE, else tick)",
    )
    arena.add_argument(
        "--estimator", choices=("online", "oracle", "noisy"), default="online"
    )
    arena.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    arena.add_argument(
        "--output", metavar="FILE", help="write the full JSON report to FILE"
    )
    arena.add_argument(
        "--gate-output",
        metavar="FILE",
        help="write flat gate metrics (benchmarks/check_regression.py format)",
    )
    arena.add_argument(
        "--trace-out",
        metavar="PREFIX",
        help="trace every policy's run (decision ledger included) to "
        "PREFIX.<policy>.jsonl with manifests, and attribute JCT gaps to "
        "the first divergent decision per job",
    )
    arena.set_defaults(func=_cmd_arena)

    compare = sub.add_parser(
        "compare", help="run a scheduler comparison (arena alias)"
    )
    compare.add_argument(
        "--schedulers",
        nargs="+",
        default=["optimus", "drf", "tetris"],
    )
    compare.add_argument("--jobs", type=int, default=9)
    compare.add_argument("--servers", type=int, default=13)
    compare.add_argument("--window", type=float, default=12_000.0)
    compare.add_argument("--repeats", type=int, default=1)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--estimator", choices=("online", "oracle", "noisy"), default="online"
    )
    compare.set_defaults(func=_cmd_compare)

    drill = sub.add_parser(
        "drill",
        help="crash-consistency drill: kill the controller, expire a node, recover",
    )
    drill.add_argument("--scheduler", default="optimus")
    drill.add_argument("--jobs", type=int, default=3)
    drill.add_argument("--servers", type=int, default=4)
    drill.add_argument("--steps", type=int, default=6)
    drill.add_argument("--seed", type=int, default=0)
    drill.add_argument(
        "--crash-point",
        choices=("after_checkpoint", "after_teardown", "mid_launch", "after_launch"),
        default=None,
        help="kill the controller once at this reconcile crash point",
    )
    drill.add_argument(
        "--expire-node",
        type=int,
        default=-1,
        help="index of a node whose heartbeats stop after the first step",
    )
    drill.add_argument(
        "--lease-ttl",
        type=float,
        default=2.0,
        help="node health lease TTL in steps (<= 0 disables leases)",
    )
    drill.add_argument("--json", action="store_true")
    drill.set_defaults(func=_cmd_drill)

    failover = sub.add_parser(
        "failover",
        help="controller-failover drill: kill the leader, audit the takeover",
    )
    failover.add_argument("--scheduler", default="optimus")
    failover.add_argument("--jobs", type=int, default=3)
    failover.add_argument("--servers", type=int, default=4)
    failover.add_argument("--seed", type=int, default=0)
    failover.add_argument(
        "--kills", type=int, default=1, help="number of leader-kill waves"
    )
    failover.add_argument(
        "--crash-point",
        choices=(
            "mid_step_deposed",
            "before_campaign",
            "after_elected",
            "after_checkpoint",
            "after_teardown",
            "mid_launch",
            "after_launch",
        ),
        default=None,
        help="how the leader dies (default: silent death; the election "
        "points script the successor instead)",
    )
    failover.add_argument(
        "--lease-ttl",
        type=float,
        default=2.0,
        help="election lease TTL in steps (takeover bound is 2x this)",
    )
    failover.add_argument(
        "--trace-out", metavar="FILE", help="stream the drill's JSONL trace"
    )
    failover.add_argument(
        "--report-out", metavar="FILE", help="write the violation report"
    )
    failover.add_argument("--json", action="store_true")
    failover.set_defaults(func=_cmd_failover)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
