"""Reproduction of *Optimus: An Efficient Dynamic Resource Scheduler for
Deep Learning Clusters* (Peng et al., EuroSys 2018).

Quickstart
----------
>>> from repro import Cluster, cpu_mem, make_scheduler, simulate, SimConfig
>>> from repro import uniform_arrivals
>>> cluster = Cluster.homogeneous(13, cpu_mem(16, 80))
>>> jobs = uniform_arrivals(num_jobs=9, seed=1)
>>> result = simulate(cluster, make_scheduler("optimus"), jobs, SimConfig(seed=1))
>>> result.all_finished
True

Package map
-----------
* :mod:`repro.core` -- the paper's contribution: convergence/speed
  estimators, marginal-gain allocation, task placement.
* :mod:`repro.schedulers` -- Optimus, DRF, Tetris, FIFO and ablation hybrids.
* :mod:`repro.sim` -- the discrete-time cluster simulator and experiment
  harness.
* :mod:`repro.workloads` -- Table-1 model zoo, loss/speed ground truth, job
  specs and arrival processes.
* :mod:`repro.fitting` -- NNLS and the Eqn-1/3/4 fitters.
* :mod:`repro.ps` -- parameter-block partitioning (PAA vs. MXNet default).
* :mod:`repro.cluster`, :mod:`repro.datastore`, :mod:`repro.k8s` -- the
  cluster, HDFS-like and Kubernetes-like substrates.
* :mod:`repro.obs` -- structured observability: event tracing, metrics
  registry and per-phase profiling hooks.
* :mod:`repro.faults` -- seeded fault injection (node/task crashes, flaky
  KV substrate, checkpoint loss) and the matching recovery machinery.
"""

from repro.cluster import Cluster, ResourceVector, Server, cpu_mem
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultPlan,
    FlakyKVStore,
    NodeCrash,
    RetryingKVStore,
    TaskCrash,
)
from repro.core import (
    AllocationRequest,
    ConvergenceEstimator,
    PlacementRequest,
    SpeedEstimator,
    TaskAllocation,
    allocate,
    place_jobs,
)
from repro.fitting import fit_loss_curve, fit_speed_model, nnls
from repro.obs import JsonlTracer, MetricsRegistry, RecordingTracer
from repro.ps import mxnet_partition, paa_partition
from repro.schedulers import (
    DRFScheduler,
    FIFOScheduler,
    JobView,
    OptimusScheduler,
    Scheduler,
    SchedulingDecision,
    TetrisScheduler,
    make_scheduler,
)
from repro.sim import (
    SimConfig,
    Simulation,
    SimulationResult,
    StragglerConfig,
    compare_schedulers,
    normalized,
    simulate,
)
from repro.workloads import (
    MODEL_ZOO,
    JobSpec,
    LossEmitter,
    ModelProfile,
    StepTimeModel,
    get_profile,
    google_trace_arrivals,
    make_job,
    poisson_arrivals,
    uniform_arrivals,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cluster
    "Cluster",
    "Server",
    "ResourceVector",
    "cpu_mem",
    # core
    "ConvergenceEstimator",
    "SpeedEstimator",
    "AllocationRequest",
    "TaskAllocation",
    "allocate",
    "PlacementRequest",
    "place_jobs",
    # fitting
    "nnls",
    "fit_loss_curve",
    "fit_speed_model",
    # ps
    "paa_partition",
    "mxnet_partition",
    # obs
    "RecordingTracer",
    "JsonlTracer",
    "MetricsRegistry",
    # faults
    "FaultConfig",
    "FaultPlan",
    "NodeCrash",
    "TaskCrash",
    "FaultInjector",
    "FlakyKVStore",
    "RetryingKVStore",
    # schedulers
    "Scheduler",
    "JobView",
    "SchedulingDecision",
    "OptimusScheduler",
    "DRFScheduler",
    "TetrisScheduler",
    "FIFOScheduler",
    "make_scheduler",
    # sim
    "SimConfig",
    "Simulation",
    "simulate",
    "SimulationResult",
    "StragglerConfig",
    "compare_schedulers",
    "normalized",
    # workloads
    "MODEL_ZOO",
    "ModelProfile",
    "get_profile",
    "JobSpec",
    "make_job",
    "LossEmitter",
    "StepTimeModel",
    "uniform_arrivals",
    "poisson_arrivals",
    "google_trace_arrivals",
]
