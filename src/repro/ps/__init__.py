"""Parameter-server substrate: blocks, partitioning and load metrics (§5.3)."""

from repro.ps.blocks import (
    Assignment,
    ParameterBlock,
    ServerLoad,
    blocks_from_sizes,
)
from repro.ps.microsim import (
    MicroStepConfig,
    MicroStepResult,
    closed_form_step_time,
    simulate_step,
)
from repro.ps.partition import (
    MXNET_DEFAULT_THRESHOLD,
    PAA_TINY_FRACTION,
    mxnet_partition,
    paa_partition,
    partition,
)

__all__ = [
    "ParameterBlock",
    "ServerLoad",
    "Assignment",
    "blocks_from_sizes",
    "mxnet_partition",
    "paa_partition",
    "partition",
    "MXNET_DEFAULT_THRESHOLD",
    "PAA_TINY_FRACTION",
    "MicroStepConfig",
    "MicroStepResult",
    "simulate_step",
    "closed_form_step_time",
]
