"""Parameter blocks and per-server assignments.

A DL model's parameters come in *blocks* (one per layer: weights, biases,
batch-norm statistics, embeddings...). The parameter servers jointly hold all
blocks; how blocks are divided among them determines the per-server load --
both the bytes moved per step and the number of parameter-update requests
(§5.3). This module defines the data model; the two competing assignment
algorithms live in :mod:`repro.ps.partition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ParameterBlock:
    """One named block of model parameters (size in parameter count)."""

    name: str
    size: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"block {self.name!r} must have positive size")


def blocks_from_sizes(sizes: Sequence[float], prefix: str = "block") -> List[ParameterBlock]:
    """Wrap raw sizes into named blocks (``block-000``, ``block-001``, ...)."""
    return [
        ParameterBlock(f"{prefix}-{i:03d}", float(size)) for i, size in enumerate(sizes)
    ]


@dataclass
class ServerLoad:
    """What one parameter server ends up holding."""

    index: int
    #: (block name, assigned parameter count) -- a sliced block appears once
    #: per slice, on the servers holding its slices.
    pieces: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def assigned_size(self) -> float:
        return sum(size for _, size in self.pieces)

    @property
    def num_requests(self) -> int:
        """Per-step parameter-update requests served by this PS.

        Each piece is fetched/updated with one request per worker per step;
        the per-worker request count is what §5.3 counts, so it equals the
        number of pieces here.
        """
        return len(self.pieces)

    def add(self, block_name: str, size: float) -> None:
        if size <= 0:
            raise ConfigurationError("piece size must be positive")
        self.pieces.append((block_name, float(size)))


@dataclass
class Assignment:
    """A complete blocks→servers assignment plus §5.3's load metrics."""

    servers: List[ServerLoad]
    algorithm: str

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError("assignment needs at least one server")

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def total_size(self) -> float:
        return sum(s.assigned_size for s in self.servers)

    @property
    def total_requests(self) -> int:
        """Total per-worker parameter-update requests per step (§5.3 (b))."""
        return sum(s.num_requests for s in self.servers)

    @property
    def size_difference(self) -> float:
        """Max difference of parameter sizes between two servers (§5.3 (a))."""
        sizes = [s.assigned_size for s in self.servers]
        return max(sizes) - min(sizes)

    @property
    def request_difference(self) -> int:
        """Max difference of request counts between two servers (§5.3 (c))."""
        counts = [s.num_requests for s in self.servers]
        return max(counts) - min(counts)

    @property
    def max_share(self) -> float:
        """``rho_max``: the busiest server's fraction of all parameters."""
        total = self.total_size
        if total <= 0:
            return 0.0
        return max(s.assigned_size for s in self.servers) / total

    @property
    def imbalance_factor(self) -> float:
        """``rho_max * p`` >= 1; multiplies the per-PS shard in Eqn 2.

        A perfectly balanced assignment has factor 1.0; the factor directly
        scales the busiest server's transfer and update time, which is what
        slows the whole synchronous step down (Fig. 20).
        """
        return self.max_share * self.num_servers

    def summary(self) -> Dict[str, float]:
        """The Table-3 row for this assignment."""
        return {
            "size_difference": self.size_difference,
            "request_difference": float(self.request_difference),
            "total_requests": float(self.total_requests),
            "imbalance_factor": self.imbalance_factor,
        }
