"""A first-principles micro-simulation of one parameter-server step.

The whole reproduction rests on the paper's Eqn-2 step-time model. This
module *derives* the step time from first principles instead of assuming
it: an event-driven fluid simulation of a single synchronous training step
on the PS architecture --

1. every worker computes its gradients (``m*T_forward + T_back``, possibly
   slowed by a straggler factor);
2. it pushes one gradient shard to every parameter server, as network
   flows sharing NIC capacity under max-min fairness (each worker NIC and
   each PS NIC is a link);
3. each parameter server applies the updates it received
   (``T_update * rho_j`` per worker push for its shard fraction ``rho_j``);
4. updated parameters flow back to the workers (the pull phase, symmetric
   to the push);
5. the step ends when the slowest worker holds all updated parameters.

With balanced shards and no stragglers, the result collapses to Eqn 2's
``compute + 2*(S/p)/(B/w) + T_update*w/p`` -- the test suite and the
validation bench check exactly that, and also that shard *imbalance*
produces the §5.3 slowdown the closed-form models with ``rho_max * p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

_EPS = 1e-9


@dataclass
class _Flow:
    """One directional transfer between a worker and a parameter server."""

    worker: int
    ps: int
    remaining: float
    start_time: float
    finish_time: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.finish_time is None


def _max_min_rates(
    flows: Sequence[_Flow],
    worker_capacity: float,
    ps_capacity: float,
) -> Dict[int, float]:
    """Max-min fair rates for the active flows.

    Links: each worker's NIC (capacity ``worker_capacity``) and each PS's
    NIC (``ps_capacity``). Progressive filling: repeatedly saturate the
    tightest link and freeze its flows' rates.
    """
    active = [i for i, flow in enumerate(flows) if flow.active]
    rates: Dict[int, float] = {}
    link_capacity: Dict[Tuple[str, int], float] = {}
    link_flows: Dict[Tuple[str, int], List[int]] = {}
    for i in active:
        flow = flows[i]
        for link in (("w", flow.worker), ("p", flow.ps)):
            link_flows.setdefault(link, []).append(i)
            link_capacity.setdefault(
                link, worker_capacity if link[0] == "w" else ps_capacity
            )

    unfrozen = set(active)
    while unfrozen:
        # The tightest link determines the next fair-share level.
        best_level = None
        best_link = None
        for link, members in link_flows.items():
            remaining_members = [i for i in members if i in unfrozen]
            if not remaining_members:
                continue
            level = link_capacity[link] / len(remaining_members)
            if best_level is None or level < best_level:
                best_level = level
                best_link = link
        if best_link is None:
            break
        for i in [m for m in link_flows[best_link] if m in unfrozen]:
            rates[i] = best_level
            unfrozen.discard(i)
            # Remove this flow's share from its other link.
            flow = flows[i]
            for link in (("w", flow.worker), ("p", flow.ps)):
                if link != best_link:
                    link_capacity[link] = max(
                        link_capacity[link] - best_level, 0.0
                    )
    return rates


def _run_transfers(
    flows: List[_Flow], worker_capacity: float, ps_capacity: float
) -> None:
    """Advance the fluid simulation until every flow completes."""
    started: List[_Flow] = []
    pending = sorted(flows, key=lambda f: f.start_time)
    now = pending[0].start_time if pending else 0.0
    idx = 0
    guard = 0
    while idx < len(pending) or any(f.active for f in started):
        guard += 1
        if guard > 100_000:
            raise ConfigurationError("transfer simulation failed to converge")
        while idx < len(pending) and pending[idx].start_time <= now + _EPS:
            started.append(pending[idx])
            idx += 1
        active = [f for f in started if f.active]
        if not active:
            if idx < len(pending):
                now = pending[idx].start_time
                continue
            break
        rates = _max_min_rates(started, worker_capacity, ps_capacity)
        # Next event: a flow finishing or a new flow starting.
        horizon = pending[idx].start_time - now if idx < len(pending) else None
        finish_candidates = []
        for i, flow in enumerate(started):
            if not flow.active:
                continue
            rate = rates.get(i, 0.0)
            if rate > _EPS:
                finish_candidates.append(flow.remaining / rate)
        finish_in = min(finish_candidates) if finish_candidates else None
        if finish_in is None and horizon is None:
            raise ConfigurationError("transfer simulation stalled")
        step = min(x for x in (finish_in, horizon) if x is not None)
        step = max(step, 0.0)
        for i, flow in enumerate(started):
            if not flow.active:
                continue
            rate = rates.get(i, 0.0)
            flow.remaining -= rate * step
            if flow.remaining <= _EPS * max(1.0, rate):
                flow.remaining = 0.0
                flow.finish_time = now + step
        now += step


@dataclass(frozen=True)
class MicroStepConfig:
    """Inputs of one micro-simulated synchronous step."""

    num_workers: int
    shard_bytes: Tuple[float, ...]  # per-PS shard sizes (sum = model size)
    bandwidth: float  # NIC capacity, bytes/s, same for every node
    compute_time: float  # per-worker forward+backward seconds
    update_time_full: float  # T_update for the whole model on one PS
    straggler_factors: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError("need at least one worker")
        if not self.shard_bytes or any(s < 0 for s in self.shard_bytes):
            raise ConfigurationError("shard sizes must be non-negative")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.compute_time < 0 or self.update_time_full < 0:
            raise ConfigurationError("times must be non-negative")
        if self.straggler_factors is not None:
            if len(self.straggler_factors) != self.num_workers:
                raise ConfigurationError(
                    "straggler_factors must have one entry per worker"
                )
            if any(f < 1 for f in self.straggler_factors):
                raise ConfigurationError("straggler factors must be >= 1")

    @property
    def num_ps(self) -> int:
        return len(self.shard_bytes)

    @property
    def model_bytes(self) -> float:
        return float(sum(self.shard_bytes))


@dataclass(frozen=True)
class MicroStepResult:
    """Outputs of one micro-simulated step."""

    step_time: float
    compute_done: Tuple[float, ...]  # per worker
    push_done: Tuple[float, ...]  # per PS: all gradients received
    update_done: Tuple[float, ...]  # per PS
    pull_done: Tuple[float, ...]  # per worker: all parameters received


def simulate_step(config: MicroStepConfig) -> MicroStepResult:
    """Simulate one synchronous PS training step from first principles."""
    w = config.num_workers
    p = config.num_ps
    factors = config.straggler_factors or tuple(1.0 for _ in range(w))

    compute_done = tuple(config.compute_time * factors[i] for i in range(w))

    # Push phase: every worker sends shard_j to PS j once its compute ends.
    push_flows = [
        _Flow(
            worker=i,
            ps=j,
            remaining=config.shard_bytes[j],
            start_time=compute_done[i],
        )
        for i in range(w)
        for j in range(p)
        if config.shard_bytes[j] > 0
    ]
    _run_transfers(push_flows, config.bandwidth, config.bandwidth)
    push_done_list = []
    for j in range(p):
        finishes = [f.finish_time for f in push_flows if f.ps == j]
        push_done_list.append(max(finishes) if finishes else max(compute_done))
    push_done = tuple(push_done_list)

    # Update phase: PS j applies w gradient sets over its shard fraction.
    update_done = tuple(
        push_done[j]
        + config.update_time_full
        * (config.shard_bytes[j] / max(config.model_bytes, _EPS))
        * w
        for j in range(p)
    )

    # Pull phase: updated shards flow back to every worker.
    pull_flows = [
        _Flow(
            worker=i,
            ps=j,
            remaining=config.shard_bytes[j],
            start_time=update_done[j],
        )
        for i in range(w)
        for j in range(p)
        if config.shard_bytes[j] > 0
    ]
    _run_transfers(pull_flows, config.bandwidth, config.bandwidth)
    pull_done_list = []
    for i in range(w):
        finishes = [f.finish_time for f in pull_flows if f.worker == i]
        pull_done_list.append(max(finishes) if finishes else compute_done[i])
    pull_done = tuple(pull_done_list)

    return MicroStepResult(
        step_time=max(pull_done),
        compute_done=compute_done,
        push_done=push_done,
        update_done=update_done,
        pull_done=pull_done,
    )


def closed_form_step_time(config: MicroStepConfig) -> float:
    """The Eqn-2 prediction for the same configuration (no overhead terms).

    Uses the §5.3 imbalance form: the busiest parameter server's shard
    ``rho_max * S`` dominates the transfer and update phases.
    """
    w = config.num_workers
    p = config.num_ps
    model = config.model_bytes
    rho_max = max(config.shard_bytes) / max(model, _EPS)
    transfer = 2.0 * (rho_max * model) * w / config.bandwidth
    update = config.update_time_full * rho_max * w
    return config.compute_time + transfer + update
