"""Parameter-block assignment algorithms (§5.3).

Two competitors:

* :func:`mxnet_partition` -- MXNet's default policy: a block smaller than a
  fixed threshold (10^6 parameters by default) goes to one *random*
  parameter server; a block at or above the threshold is sliced evenly among
  *all* parameter servers. Random small-block placement plus
  all-server slicing is what produces both size imbalance and inflated
  request counts.

* :func:`paa_partition` -- the paper's Parameter Assignment Algorithm:
  process blocks in decreasing size order against the average per-server
  size ``avg = total / p``;

  - *tiny* blocks (< ``tiny_fraction * avg``) go to the server with the
    fewest update requests,
  - *medium* blocks (tiny..avg] go to the server with the smallest remaining
    capacity that can still accommodate them (best fit),
  - *large* blocks (> avg) are sliced into ``avg``-sized partitions, each
    assigned to the server with the smallest assigned size.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rand import SeedLike, spawn_rng
from repro.ps.blocks import Assignment, ParameterBlock, ServerLoad

#: MXNet's default slicing threshold, in parameters (§5.3).
MXNET_DEFAULT_THRESHOLD = 1_000_000

#: PAA's "very small" block cut-off, as a fraction of the average size (§6.1).
PAA_TINY_FRACTION = 0.01


def _validate(blocks: Sequence[ParameterBlock], num_servers: int) -> None:
    if num_servers < 1:
        raise ConfigurationError("need at least one parameter server")
    if not blocks:
        raise ConfigurationError("need at least one parameter block")


def mxnet_partition(
    blocks: Sequence[ParameterBlock],
    num_servers: int,
    threshold: float = MXNET_DEFAULT_THRESHOLD,
    seed: SeedLike = None,
) -> Assignment:
    """MXNet's default threshold-based partitioner."""
    _validate(blocks, num_servers)
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    rng = spawn_rng(seed, "mxnet-partition")
    servers = [ServerLoad(i) for i in range(num_servers)]
    for block in blocks:
        if block.size < threshold:
            target = int(rng.integers(0, num_servers))
            servers[target].add(block.name, block.size)
        else:
            slice_size = block.size / num_servers
            for server in servers:
                server.add(block.name, slice_size)
    return Assignment(servers=servers, algorithm="mxnet")


def paa_partition(
    blocks: Sequence[ParameterBlock],
    num_servers: int,
    tiny_fraction: float = PAA_TINY_FRACTION,
) -> Assignment:
    """The paper's Parameter Assignment Algorithm (deterministic)."""
    _validate(blocks, num_servers)
    if not 0 < tiny_fraction < 1:
        raise ConfigurationError("tiny_fraction must be in (0, 1)")
    servers = [ServerLoad(i) for i in range(num_servers)]
    total = sum(b.size for b in blocks)
    avg_size = total / num_servers
    tiny_cutoff = tiny_fraction * avg_size

    ordered = sorted(blocks, key=lambda b: (-b.size, b.name))
    for block in ordered:
        if block.size < tiny_cutoff:
            target = min(servers, key=lambda s: (s.num_requests, s.assigned_size, s.index))
            target.add(block.name, block.size)
        elif block.size <= avg_size:
            target = _best_fit(servers, block.size, avg_size)
            target.add(block.name, block.size)
        else:
            _slice_large(servers, block, avg_size)
    return Assignment(servers=servers, algorithm="paa")


def _best_fit(
    servers: List[ServerLoad], size: float, avg_size: float
) -> ServerLoad:
    """Server with the smallest remaining capacity that still fits *size*.

    Remaining capacity is ``avg_size - assigned``. When no server can
    accommodate the block within the average (possible late in the packing),
    fall back to the least-loaded server so the overflow is spread evenly.
    """
    fitting: Optional[ServerLoad] = None
    for server in servers:
        remaining = avg_size - server.assigned_size
        if remaining + 1e-9 >= size:
            if fitting is None or remaining < (avg_size - fitting.assigned_size):
                fitting = server
    if fitting is not None:
        return fitting
    return min(servers, key=lambda s: (s.assigned_size, s.index))


def _slice_large(
    servers: List[ServerLoad], block: ParameterBlock, avg_size: float
) -> None:
    """Slice a block larger than ``avg_size`` into avg-sized partitions."""
    # Guard the ceil against float error: size/avg can land epsilon above an
    # integer (e.g. one block over 7 servers), which would mint an extra,
    # zero-sized slice -- and ServerLoad rejects non-positive pieces.
    num_slices = max(int(math.ceil(block.size / avg_size - 1e-9)), 1)
    remaining = block.size
    for i in range(num_slices):
        piece = remaining if i == num_slices - 1 else min(avg_size, remaining)
        if piece <= 0:
            break
        remaining -= piece
        target = min(servers, key=lambda s: (s.assigned_size, s.index))
        target.add(f"{block.name}/slice-{i}", piece)


def partition(
    blocks: Sequence[ParameterBlock],
    num_servers: int,
    algorithm: str = "paa",
    **kwargs,
) -> Assignment:
    """Dispatch to a partitioner by name (``"paa"`` or ``"mxnet"``)."""
    if algorithm == "paa":
        return paa_partition(blocks, num_servers, **kwargs)
    if algorithm == "mxnet":
        return mxnet_partition(blocks, num_servers, **kwargs)
    raise ConfigurationError(f"unknown partition algorithm {algorithm!r}")
