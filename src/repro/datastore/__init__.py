"""HDFS-like data serving substrate (§5.1)."""

from repro.datastore.hdfs import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_REPLICATION,
    Chunk,
    ChunkAssignment,
    ChunkStore,
    DataFile,
)

__all__ = [
    "Chunk",
    "DataFile",
    "ChunkStore",
    "ChunkAssignment",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_REPLICATION",
]
