"""HDFS-like chunked data serving (§5.1).

The paper stores training data in HDFS (128 MB chunks, replication factor 2)
and assigns a roughly equal number of chunks to each worker round-robin;
when Optimus rescales a job, chunks are reassigned to keep workers balanced.

This module reproduces that substrate: a :class:`ChunkStore` holding files
as replicated chunks across data nodes, and a :class:`ChunkAssignment` that
balances chunks over a job's workers and *rebalances with minimal movement*
when the worker count changes -- the moved-chunk count is the (re)shuffling
cost the simulator can charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import DataStoreError
from repro.common.units import MB

DEFAULT_CHUNK_SIZE = 128 * MB
DEFAULT_REPLICATION = 2


@dataclass(frozen=True)
class Chunk:
    """One chunk of a stored file."""

    file_name: str
    index: int
    size: int
    replicas: Tuple[str, ...]

    @property
    def chunk_id(self) -> str:
        return f"{self.file_name}#{self.index}"


@dataclass
class DataFile:
    """A file stored as replicated chunks."""

    name: str
    size: int
    chunks: List[Chunk]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)


class ChunkStore:
    """A miniature HDFS namenode: files, chunks and replica placement.

    Replicas are placed round-robin over the data nodes, offset per chunk so
    consecutive chunks land on different primaries (the usual HDFS pattern
    of spreading load).
    """

    def __init__(
        self,
        data_nodes: Sequence[str],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ):
        nodes = list(dict.fromkeys(data_nodes))
        if not nodes:
            raise DataStoreError("need at least one data node")
        if chunk_size <= 0:
            raise DataStoreError("chunk_size must be positive")
        if not 1 <= replication <= len(nodes):
            raise DataStoreError(
                f"replication {replication} must be in [1, {len(nodes)}]"
            )
        self.data_nodes = nodes
        self.chunk_size = int(chunk_size)
        self.replication = int(replication)
        self._files: Dict[str, DataFile] = {}

    def add_file(self, name: str, size: int) -> DataFile:
        """Store a file, splitting it into replicated chunks."""
        if name in self._files:
            raise DataStoreError(f"file {name!r} already exists")
        if size <= 0:
            raise DataStoreError("file size must be positive")
        num_chunks = max(1, math.ceil(size / self.chunk_size))
        chunks = []
        n = len(self.data_nodes)
        remaining = size
        for i in range(num_chunks):
            replicas = tuple(
                self.data_nodes[(i + r) % n] for r in range(self.replication)
            )
            chunk_bytes = min(self.chunk_size, remaining)
            remaining -= chunk_bytes
            chunks.append(
                Chunk(file_name=name, index=i, size=chunk_bytes, replicas=replicas)
            )
        data_file = DataFile(name=name, size=int(size), chunks=chunks)
        self._files[name] = data_file
        return data_file

    def file(self, name: str) -> DataFile:
        try:
            return self._files[name]
        except KeyError:
            raise DataStoreError(f"unknown file {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._files

    @property
    def file_names(self) -> Tuple[str, ...]:
        return tuple(self._files)

    def node_chunk_counts(self) -> Dict[str, int]:
        """Replica count per data node (for balance checks)."""
        counts = {node: 0 for node in self.data_nodes}
        for data_file in self._files.values():
            for chunk in data_file.chunks:
                for node in chunk.replicas:
                    counts[node] += 1
        return counts


class ChunkAssignment:
    """Balanced assignment of one file's chunks to a job's workers (§5.1)."""

    def __init__(self, data_file: DataFile, num_workers: int):
        if num_workers < 1:
            raise DataStoreError("need at least one worker")
        self.data_file = data_file
        self.num_workers = 0
        self._assignment: Dict[int, List[Chunk]] = {}
        self.total_moved = 0
        self._initial_assign(num_workers)

    def _initial_assign(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self._assignment = {w: [] for w in range(num_workers)}
        for i, chunk in enumerate(self.data_file.chunks):
            self._assignment[i % num_workers].append(chunk)

    # -- queries -------------------------------------------------------------
    def chunks_of(self, worker: int) -> Tuple[Chunk, ...]:
        try:
            return tuple(self._assignment[worker])
        except KeyError:
            raise DataStoreError(
                f"worker {worker} not in [0, {self.num_workers})"
            ) from None

    def counts(self) -> List[int]:
        return [len(self._assignment[w]) for w in range(self.num_workers)]

    @property
    def is_balanced(self) -> bool:
        """True when worker loads differ by at most one chunk."""
        counts = self.counts()
        return (max(counts) - min(counts)) <= 1 if counts else True

    # -- rebalancing ----------------------------------------------------------
    def rebalance(self, new_num_workers: int) -> int:
        """Re-target the assignment to *new_num_workers*, moving few chunks.

        Keeps each surviving worker's chunks in place where possible: only
        the overflow above the new balanced quota, plus chunks of removed
        workers, are moved. Returns the number of chunks that changed
        workers (the reshuffling cost).
        """
        if new_num_workers < 1:
            raise DataStoreError("need at least one worker")
        if new_num_workers == self.num_workers:
            return 0
        total = self.data_file.num_chunks
        base, extra = divmod(total, new_num_workers)
        quotas = [base + (1 if w < extra else 0) for w in range(new_num_workers)]

        surviving = min(self.num_workers, new_num_workers)
        new_assignment: Dict[int, List[Chunk]] = {
            w: [] for w in range(new_num_workers)
        }
        pool: List[Chunk] = []
        for w in range(self.num_workers):
            chunks = self._assignment[w]
            if w < surviving:
                keep = chunks[: quotas[w]]
                new_assignment[w] = list(keep)
                pool.extend(chunks[quotas[w] :])
            else:
                pool.extend(chunks)

        moved = len(pool)
        for w in range(new_num_workers):
            while len(new_assignment[w]) < quotas[w]:
                new_assignment[w].append(pool.pop())
        if pool:
            raise DataStoreError("rebalance accounting error: chunks left over")

        self._assignment = new_assignment
        self.num_workers = new_num_workers
        self.total_moved += moved
        return moved
