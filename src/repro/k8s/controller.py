"""The training-job controller: checkpoint-based elastic scaling (§5.4).

Optimus adjusts a job's parameter-server/worker counts by checkpointing the
model to HDFS, tearing the job's pods down and relaunching them under the
new configuration. The controller below reconciles a *desired* state (one
scheduling decision: per-job task counts plus a per-server layout) against
the *actual* pods in the API server, producing exactly that
checkpoint → delete → recreate → restore sequence, and records checkpoints
in the kv store so a restarted scheduler can recover job states (§5.5's
fault-tolerance story).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.common.errors import KVStoreError
from repro.k8s.api import APIServer
from repro.k8s.objects import PodSpec, pod_name

CHECKPOINT_PREFIX = "/checkpoints/"


@dataclass(frozen=True)
class JobTarget:
    """Desired deployment of one job for the coming interval."""

    job_id: str
    worker_demand: ResourceVector
    ps_demand: ResourceVector
    #: server -> (num workers, num ps); totals define the task counts.
    layout: Dict[str, Tuple[int, int]]

    @property
    def workers(self) -> int:
        return sum(nw for nw, _ in self.layout.values())

    @property
    def ps(self) -> int:
        return sum(np_ for _, np_ in self.layout.values())


@dataclass
class ReconcileReport:
    """What one reconciliation pass did."""

    pods_created: int = 0
    pods_deleted: int = 0
    checkpoints_saved: int = 0
    checkpoints_restored: int = 0
    jobs_scaled: Tuple[str, ...] = ()
    #: Progress checkpoints refreshed without a rescale (fault tolerance:
    #: a crashed scheduler recovers at most one interval of progress, §5.5).
    progress_updates: int = 0
    #: Jobs whose rescale failed mid-flight and were restored to their
    #: previous pods (graceful degradation; see :meth:`JobController.reconcile`).
    jobs_rolled_back: Tuple[str, ...] = ()


class JobController:
    """Reconciles scheduling decisions into pod operations."""

    def __init__(self, api: APIServer):
        self.api = api

    # -- checkpoints --------------------------------------------------------------
    def save_checkpoint(self, job_id: str, steps_done: float) -> None:
        """Persist the job's training state (stand-in for the HDFS write)."""
        self.api.store.put(
            CHECKPOINT_PREFIX + job_id,
            json.dumps({"job_id": job_id, "steps_done": steps_done}),
        )

    def load_checkpoint(self, job_id: str) -> Optional[float]:
        payload = self.api.store.get(CHECKPOINT_PREFIX + job_id)
        if payload is None:
            return None
        return float(json.loads(payload)["steps_done"])

    def delete_checkpoint(self, job_id: str) -> bool:
        return self.api.store.delete(CHECKPOINT_PREFIX + job_id)

    # -- reconciliation ---------------------------------------------------------
    def _current_layout(self, job_id: str) -> Dict[str, Tuple[int, int]]:
        layout: Dict[str, List[int]] = {}
        for pod in self.api.list_pods(job_id=job_id):
            if pod.node is None:
                continue
            counts = layout.setdefault(pod.node, [0, 0])
            counts[0 if pod.role == "worker" else 1] += 1
        return {node: (c[0], c[1]) for node, c in layout.items()}

    def _teardown_job(self, job_id: str) -> int:
        deleted = 0
        for pod in self.api.list_pods(job_id=job_id):
            if self.api.delete_pod(pod.name):
                deleted += 1
        return deleted

    def _launch_job(self, target: JobTarget) -> int:
        created = 0
        worker_idx = ps_idx = 0
        for server, (n_workers, n_ps) in target.layout.items():
            for _ in range(n_workers):
                name = pod_name(target.job_id, "worker", worker_idx)
                self.api.create_pod(
                    PodSpec(
                        name=name,
                        job_id=target.job_id,
                        role="worker",
                        index=worker_idx,
                        demand=target.worker_demand,
                    )
                )
                self.api.bind_pod(name, server)
                worker_idx += 1
                created += 1
            for _ in range(n_ps):
                name = pod_name(target.job_id, "ps", ps_idx)
                self.api.create_pod(
                    PodSpec(
                        name=name,
                        job_id=target.job_id,
                        role="ps",
                        index=ps_idx,
                        demand=target.ps_demand,
                    )
                )
                self.api.bind_pod(name, server)
                ps_idx += 1
                created += 1
        return created

    def _rollback_job(
        self, job_id: str, previous_pods: List[PodSpec]
    ) -> bool:
        """Undo a failed mid-flight rescale: restore the previous pods.

        Tears down whatever the partial launch created, then re-creates and
        re-binds the pods the job ran with before (their restart counters
        bumped -- the containers really did restart). Returns ``False`` when
        even the restore fails; the job is then left fully torn down, which
        is safe: its checkpoint was saved before the teardown, so a later
        reconcile relaunches it from there.
        """
        self._teardown_job(job_id)
        try:
            for pod in previous_pods:
                self.api.create_pod(
                    PodSpec(
                        name=pod.name,
                        job_id=pod.job_id,
                        role=pod.role,
                        index=pod.index,
                        demand=pod.demand,
                        restarts=pod.restarts + 1,
                    )
                )
                self.api.bind_pod(pod.name, pod.node)
        except KVStoreError:
            self._teardown_job(job_id)
            return False
        return True

    def reconcile(
        self,
        targets: List[JobTarget],
        job_progress: Optional[Dict[str, float]] = None,
        scope: Optional[set] = None,
        raise_on_failure: bool = True,
    ) -> ReconcileReport:
        """Drive the cluster to the desired state.

        Jobs whose layout is unchanged are left untouched; changed jobs go
        through the §5.4 checkpoint/teardown/relaunch/restore cycle; jobs
        absent from *targets* (paused or finished) are checkpointed and torn
        down.

        A relaunch that fails mid-flight (a pod that no longer fits, an
        unknown node) never leaves a job half-torn-down: the job is rolled
        back to the pods it ran with before and recorded in
        ``report.jobs_rolled_back``. With ``raise_on_failure=True`` (the
        default) the original :class:`KVStoreError` is then re-raised --
        loud by default; the deploy loop passes ``False`` to keep the other
        jobs reconciling and degrade gracefully.

        ``scope`` limits which jobs this controller is allowed to tear
        down: pods of jobs outside the scope (other tenants' workloads, §7
        "Various workloads") are never touched. ``None`` means the
        controller owns every pod.
        """
        job_progress = job_progress or {}
        report = ReconcileReport()
        scaled: List[str] = []
        rolled_back: List[str] = []

        desired = {t.job_id: t for t in targets}
        existing_jobs = {pod.job_id for pod in self.api.list_pods()}
        if scope is not None:
            existing_jobs &= set(scope) | set(desired)

        # Tear down jobs that should no longer run.
        for job_id in sorted(existing_jobs - set(desired)):
            self.save_checkpoint(job_id, job_progress.get(job_id, 0.0))
            report.checkpoints_saved += 1
            report.pods_deleted += self._teardown_job(job_id)

        for job_id, target in desired.items():
            current = self._current_layout(job_id)
            if current == dict(target.layout):
                # Unchanged: keep running (no scaling cost), but refresh the
                # progress checkpoint so a scheduler crash loses at most one
                # interval of training (§5.5).
                if job_id in job_progress:
                    self.save_checkpoint(job_id, job_progress[job_id])
                    report.progress_updates += 1
                continue
            previous_pods: List[PodSpec] = []
            if job_id in existing_jobs:
                previous_pods = [
                    p for p in self.api.list_pods(job_id=job_id) if p.bound
                ]
                self.save_checkpoint(job_id, job_progress.get(job_id, 0.0))
                report.checkpoints_saved += 1
                report.pods_deleted += self._teardown_job(job_id)
            restored = self.load_checkpoint(job_id) is not None
            try:
                created = self._launch_job(target)
            except KVStoreError:
                self._rollback_job(job_id, previous_pods)
                rolled_back.append(job_id)
                if raise_on_failure:
                    report.jobs_scaled = tuple(scaled)
                    report.jobs_rolled_back = tuple(rolled_back)
                    raise
                continue
            if restored:
                report.checkpoints_restored += 1
            report.pods_created += created
            scaled.append(job_id)

        report.jobs_scaled = tuple(scaled)
        report.jobs_rolled_back = tuple(rolled_back)
        return report
