"""The training-job controller: checkpoint-based elastic scaling (§5.4).

Optimus adjusts a job's parameter-server/worker counts by checkpointing the
model to HDFS, tearing the job's pods down and relaunching them under the
new configuration. The controller below reconciles a *desired* state (one
scheduling decision: per-job task counts plus a per-server layout) against
the *actual* pods in the API server, producing exactly that
checkpoint → delete → recreate → restore sequence, and records checkpoints
in the kv store so a restarted scheduler can recover job states (§5.5's
fault-tolerance story).

Crash consistency (§5.5, taken seriously): the cycle above has windows
where a dying scheduler pod would strand a job -- killed between teardown
and relaunch, the job has zero pods and, with only checkpoints persisted,
no record that it was mid-rescale. The controller therefore write-ahead
logs a per-job *intent* (``/intents/<job>``: the target layout plus the
phase the cycle reached) around every step, and persists the managed-job
set under ``/managed/<job>``. A restarted controller replays unfinished
intents from the store alone (:meth:`JobController.replay_intents`),
completing or abandoning whatever was in flight, with progress loss
bounded by the pre-cycle checkpoint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.resources import ResourceVector
from repro.common.errors import KVStoreError
from repro.faults.crashpoints import (
    CRASH_AFTER_CHECKPOINT,
    CRASH_AFTER_LAUNCH,
    CRASH_AFTER_TEARDOWN,
    CRASH_MID_LAUNCH,
    CrashPointInjector,
)
from repro.k8s.api import APIServer
from repro.k8s.objects import PodSpec, pod_name
from repro.obs.spans import NULL_SPAN_TRACER, SpanTracer

CHECKPOINT_PREFIX = "/checkpoints/"
#: Write-ahead intent records, one per job with a cycle in flight.
INTENT_PREFIX = "/intents/"
#: The durable managed-job set: which jobs this control plane owns.
MANAGED_PREFIX = "/managed/"

#: Intent phases, in cycle order. ``done`` marks a sealed cycle: nothing
#: to replay. The others name the last step known to have *completed*.
INTENT_CHECKPOINTED = "checkpointed"
INTENT_TORN_DOWN = "torn_down"
INTENT_LAUNCHING = "launching"
INTENT_DONE = "done"
INTENT_PHASES = (
    INTENT_CHECKPOINTED,
    INTENT_TORN_DOWN,
    INTENT_LAUNCHING,
    INTENT_DONE,
)

#: Outcomes of replaying one intent after a controller restart.
REPLAY_COMPLETED = "completed"
REPLAY_TORN_DOWN = "torn_down"
REPLAY_ABANDONED = "abandoned"


def _live_layout(layout: Dict[str, Tuple[int, int]]) -> Dict[str, Tuple[int, int]]:
    """A layout with empty server entries dropped.

    Placements may carry ``(0, 0)`` entries for servers a job vacated;
    the observed layout (from pods) never does, so convergence checks
    must compare the live parts only -- otherwise an all-but-empty
    target rescales the job on every single pass.
    """
    return {
        server: (nw, np_)
        for server, (nw, np_) in layout.items()
        if nw or np_
    }


@dataclass(frozen=True)
class JobTarget:
    """Desired deployment of one job for the coming interval."""

    job_id: str
    worker_demand: ResourceVector
    ps_demand: ResourceVector
    #: server -> (num workers, num ps); totals define the task counts.
    layout: Dict[str, Tuple[int, int]]

    @property
    def workers(self) -> int:
        return sum(nw for nw, _ in self.layout.values())

    @property
    def ps(self) -> int:
        return sum(np_ for _, np_ in self.layout.values())


@dataclass(frozen=True)
class JobIntent:
    """One write-ahead intent record: where a job's rescale cycle stands.

    An empty ``layout`` intends the job *gone* (pause/finish teardown);
    anything else intends exactly those pods. Replay is idempotent: the
    record carries everything needed to finish the cycle without the
    scheduler that wrote it.
    """

    job_id: str
    phase: str
    layout: Dict[str, Tuple[int, int]]
    worker_demand: ResourceVector
    ps_demand: ResourceVector

    def with_phase(self, phase: str) -> "JobIntent":
        return replace(self, phase=phase)

    def as_target(self) -> Optional[JobTarget]:
        """The intended deployment, or ``None`` when the intent is teardown."""
        if not self.layout:
            return None
        return JobTarget(
            job_id=self.job_id,
            worker_demand=self.worker_demand,
            ps_demand=self.ps_demand,
            layout=dict(self.layout),
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "job_id": self.job_id,
                "phase": self.phase,
                "layout": {
                    server: [nw, np_]
                    for server, (nw, np_) in sorted(self.layout.items())
                },
                "worker_demand": dict(self.worker_demand.items()),
                "ps_demand": dict(self.ps_demand.items()),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "JobIntent":
        data = json.loads(payload)
        return cls(
            job_id=data["job_id"],
            phase=data["phase"],
            layout={
                server: (int(nw), int(np_))
                for server, (nw, np_) in data["layout"].items()
            },
            worker_demand=ResourceVector(data["worker_demand"]),
            ps_demand=ResourceVector(data["ps_demand"]),
        )

    @classmethod
    def for_target(cls, target: JobTarget, phase: str) -> "JobIntent":
        return cls(
            job_id=target.job_id,
            phase=phase,
            layout=dict(target.layout),
            worker_demand=target.worker_demand,
            ps_demand=target.ps_demand,
        )

    @classmethod
    def for_teardown(cls, job_id: str, phase: str) -> "JobIntent":
        return cls(
            job_id=job_id,
            phase=phase,
            layout={},
            worker_demand=ResourceVector(),
            ps_demand=ResourceVector(),
        )


@dataclass
class ReconcileReport:
    """What one reconciliation pass did."""

    pods_created: int = 0
    pods_deleted: int = 0
    checkpoints_saved: int = 0
    checkpoints_restored: int = 0
    jobs_scaled: Tuple[str, ...] = ()
    #: Progress checkpoints refreshed without a rescale (fault tolerance:
    #: a crashed scheduler recovers at most one interval of progress, §5.5).
    progress_updates: int = 0
    #: Jobs whose rescale failed mid-flight and were restored to their
    #: previous pods (graceful degradation; see :meth:`JobController.reconcile`).
    jobs_rolled_back: Tuple[str, ...] = ()
    #: Jobs whose checkpoint/teardown step hit a KV failure and whose cycle
    #: was skipped this pass (retried next pass; only populated with
    #: ``raise_on_failure=False``).
    jobs_failed: Tuple[str, ...] = ()


class JobController:
    """Reconciles scheduling decisions into pod operations.

    *crash_points* is an optional
    :class:`~repro.faults.CrashPointInjector`: chaos tests use it to kill
    the controller at named points inside :meth:`reconcile` and assert the
    store-driven recovery converges.
    """

    def __init__(
        self,
        api: APIServer,
        crash_points: Optional[CrashPointInjector] = None,
        spans: Optional[SpanTracer] = None,
    ):
        self.api = api
        self.crash_points = crash_points
        #: Causal span tracer; the owning control loop shares its own so
        #: per-job checkpoint/teardown/launch spans nest under "reconcile".
        #: Spans close in ``finally``, so a crash-point firing mid-cycle
        #: still emits every open span before the exception escapes.
        self.spans = spans if spans is not None else NULL_SPAN_TRACER

    def _crash(self, point: str, job_id: str) -> None:
        if self.crash_points:
            self.crash_points.fire(point, job_id)

    # -- checkpoints --------------------------------------------------------------
    def save_checkpoint(
        self, job_id: str, steps_done: float, force: bool = False
    ) -> bool:
        """Persist the job's training state (stand-in for the HDFS write).

        Checkpoints only move forward: a save with fewer ``steps_done``
        than the stored checkpoint is dropped (returns ``False``), so a
        reconcile pass that lacks a progress reading cannot clobber a
        newer checkpoint with ``0.0``. ``force=True`` is the explicit
        reset escape hatch.
        """
        if not force:
            existing = self.load_checkpoint(job_id)
            if existing is not None and steps_done < existing:
                return False
        self.api.store.put(
            CHECKPOINT_PREFIX + job_id,
            json.dumps({"job_id": job_id, "steps_done": steps_done}),
        )
        return True

    def load_checkpoint(self, job_id: str) -> Optional[float]:
        payload = self.api.store.get(CHECKPOINT_PREFIX + job_id)
        if payload is None:
            return None
        return float(json.loads(payload)["steps_done"])

    def delete_checkpoint(self, job_id: str) -> bool:
        return self.api.store.delete(CHECKPOINT_PREFIX + job_id)

    # -- durable managed-job set --------------------------------------------------
    def adopt_job(self, job_id: str) -> None:
        """Durably record that this control plane owns *job_id*."""
        key = MANAGED_PREFIX + job_id
        if key not in self.api.store:
            self.api.store.put(key, "1")

    def release_job(self, job_id: str) -> None:
        """Drop *job_id* from the durable managed set."""
        self.api.store.delete(MANAGED_PREFIX + job_id)

    def managed_jobs(self) -> Set[str]:
        """The managed-job set as persisted in the store."""
        prefix_len = len(MANAGED_PREFIX)
        return {
            key[prefix_len:]
            for key in self.api.store.list_prefix(MANAGED_PREFIX)
        }

    # -- intent log ---------------------------------------------------------------
    def _put_intent(self, intent: JobIntent) -> None:
        self.api.store.put(INTENT_PREFIX + intent.job_id, intent.to_json())

    def load_intent(self, job_id: str) -> Optional[JobIntent]:
        payload = self.api.store.get(INTENT_PREFIX + job_id)
        if payload is None:
            return None
        return JobIntent.from_json(payload)

    def list_intents(self) -> Dict[str, JobIntent]:
        """Every persisted intent record, keyed by job id."""
        prefix_len = len(INTENT_PREFIX)
        return {
            key[prefix_len:]: JobIntent.from_json(payload)
            for key, payload in self.api.store.list_prefix(INTENT_PREFIX).items()
        }

    def clear_intent(self, job_id: str) -> bool:
        return self.api.store.delete(INTENT_PREFIX + job_id)

    def _seal_intent(self, intent: JobIntent) -> None:
        """Best-effort intent bookkeeping on an already-failing path.

        Used inside ``except KVStoreError`` branches: the update makes the
        stored intent *more* accurate, but the stale record is already
        safe to replay, so a second store failure must not mask the first.
        """
        try:
            self._put_intent(intent)
        except KVStoreError:
            pass

    # -- reconciliation ---------------------------------------------------------
    def _current_layout(self, job_id: str) -> Dict[str, Tuple[int, int]]:
        layout: Dict[str, List[int]] = {}
        for pod in self.api.list_pods(job_id=job_id):
            if pod.node is None:
                continue
            counts = layout.setdefault(pod.node, [0, 0])
            counts[0 if pod.role == "worker" else 1] += 1
        return {node: (c[0], c[1]) for node, c in layout.items()}

    def _teardown_job(self, job_id: str) -> int:
        deleted = 0
        for pod in self.api.list_pods(job_id=job_id):
            if self.api.delete_pod(pod.name):
                deleted += 1
        return deleted

    def _launch_job(self, target: JobTarget) -> int:
        created = 0
        worker_idx = ps_idx = 0
        for server, (n_workers, n_ps) in target.layout.items():
            for _ in range(n_workers):
                name = pod_name(target.job_id, "worker", worker_idx)
                self.api.create_pod(
                    PodSpec(
                        name=name,
                        job_id=target.job_id,
                        role="worker",
                        index=worker_idx,
                        demand=target.worker_demand,
                    )
                )
                self.api.bind_pod(name, server)
                worker_idx += 1
                created += 1
                if created == 1:
                    self._crash(CRASH_MID_LAUNCH, target.job_id)
            for _ in range(n_ps):
                name = pod_name(target.job_id, "ps", ps_idx)
                self.api.create_pod(
                    PodSpec(
                        name=name,
                        job_id=target.job_id,
                        role="ps",
                        index=ps_idx,
                        demand=target.ps_demand,
                    )
                )
                self.api.bind_pod(name, server)
                ps_idx += 1
                created += 1
                if created == 1:
                    self._crash(CRASH_MID_LAUNCH, target.job_id)
        return created

    def _rollback_job(
        self, job_id: str, previous_pods: List[PodSpec]
    ) -> bool:
        """Undo a failed mid-flight rescale: restore the previous pods.

        Tears down whatever the partial launch created, then re-creates and
        re-binds the pods the job ran with before (their restart counters
        bumped -- the containers really did restart). Returns ``False`` when
        even the restore fails; the job is then left fully torn down, which
        is safe: its checkpoint was saved before the teardown, so a later
        reconcile relaunches it from there.
        """
        self._teardown_job(job_id)
        try:
            for pod in previous_pods:
                self.api.create_pod(
                    PodSpec(
                        name=pod.name,
                        job_id=pod.job_id,
                        role=pod.role,
                        index=pod.index,
                        demand=pod.demand,
                        restarts=pod.restarts + 1,
                    )
                )
                self.api.bind_pod(pod.name, pod.node)
        except KVStoreError:
            self._teardown_job(job_id)
            return False
        return True

    def reconcile(
        self,
        targets: List[JobTarget],
        job_progress: Optional[Dict[str, float]] = None,
        scope: Optional[set] = None,
        raise_on_failure: bool = True,
    ) -> ReconcileReport:
        """Drive the cluster to the desired state.

        Jobs whose layout is unchanged are left untouched; changed jobs go
        through the §5.4 checkpoint/teardown/relaunch/restore cycle; jobs
        absent from *targets* (paused or finished) are checkpointed and torn
        down. Every cycle is write-ahead logged under ``/intents/<job>`` so
        a controller that dies mid-cycle can be replayed from the store
        (:meth:`replay_intents`).

        A relaunch that fails mid-flight (a pod that no longer fits, an
        unknown node) never leaves a job half-torn-down: the job is rolled
        back to the pods it ran with before and recorded in
        ``report.jobs_rolled_back``. A KV failure during the checkpoint or
        teardown step skips that job's cycle (``report.jobs_failed``; the
        next pass retries). With ``raise_on_failure=True`` (the default)
        the original :class:`KVStoreError` is then re-raised -- loud by
        default; the deploy loop passes ``False`` to keep the other jobs
        reconciling and degrade gracefully.

        ``scope`` limits which jobs this controller is allowed to tear
        down: pods of jobs outside the scope (other tenants' workloads, §7
        "Various workloads") are never touched. ``None`` means the
        controller owns every pod.
        """
        job_progress = job_progress or {}
        report = ReconcileReport()
        scaled: List[str] = []
        rolled_back: List[str] = []
        failed: List[str] = []

        def finalize() -> ReconcileReport:
            report.jobs_scaled = tuple(scaled)
            report.jobs_rolled_back = tuple(rolled_back)
            report.jobs_failed = tuple(failed)
            return report

        desired = {t.job_id: t for t in targets}
        existing_jobs = {pod.job_id for pod in self.api.list_pods()}
        if scope is not None:
            existing_jobs &= set(scope) | set(desired)

        # Tear down jobs that should no longer run.
        for job_id in sorted(existing_jobs - set(desired)):
            try:
                with self.spans.span("checkpoint", job_id=job_id):
                    if self.save_checkpoint(
                        job_id, job_progress.get(job_id, 0.0)
                    ):
                        report.checkpoints_saved += 1
                    self._put_intent(
                        JobIntent.for_teardown(job_id, INTENT_CHECKPOINTED)
                    )
                    self._crash(CRASH_AFTER_CHECKPOINT, job_id)
                with self.spans.span("teardown", job_id=job_id):
                    report.pods_deleted += self._teardown_job(job_id)
                    self._crash(CRASH_AFTER_TEARDOWN, job_id)
                self.clear_intent(job_id)
                self.release_job(job_id)
            except KVStoreError:
                failed.append(job_id)
                if raise_on_failure:
                    finalize()
                    raise

        for job_id, target in desired.items():
            current = self._current_layout(job_id)
            if current == _live_layout(target.layout):
                # Unchanged: keep running (no scaling cost), but refresh the
                # progress checkpoint so a scheduler crash loses at most one
                # interval of training (§5.5).
                if job_id in job_progress:
                    try:
                        if self.save_checkpoint(job_id, job_progress[job_id]):
                            report.progress_updates += 1
                    except KVStoreError:
                        failed.append(job_id)
                        if raise_on_failure:
                            finalize()
                            raise
                continue
            previous_pods: List[PodSpec] = []
            if job_id in existing_jobs:
                try:
                    previous_pods = [
                        p for p in self.api.list_pods(job_id=job_id) if p.bound
                    ]
                    with self.spans.span("checkpoint", job_id=job_id):
                        if self.save_checkpoint(
                            job_id, job_progress.get(job_id, 0.0)
                        ):
                            report.checkpoints_saved += 1
                        self._put_intent(
                            JobIntent.for_target(target, INTENT_CHECKPOINTED)
                        )
                        self._crash(CRASH_AFTER_CHECKPOINT, job_id)
                    with self.spans.span("teardown", job_id=job_id):
                        report.pods_deleted += self._teardown_job(job_id)
                        self._put_intent(
                            JobIntent.for_target(target, INTENT_TORN_DOWN)
                        )
                        self._crash(CRASH_AFTER_TEARDOWN, job_id)
                except KVStoreError:
                    failed.append(job_id)
                    if raise_on_failure:
                        finalize()
                        raise
                    continue
            try:
                restored = self.load_checkpoint(job_id) is not None
                with self.spans.span("launch", job_id=job_id):
                    self._put_intent(
                        JobIntent.for_target(target, INTENT_LAUNCHING)
                    )
                    created = self._launch_job(target)
                    self._crash(CRASH_AFTER_LAUNCH, job_id)
                    self._put_intent(JobIntent.for_target(target, INTENT_DONE))
            except KVStoreError:
                if self._rollback_job(job_id, previous_pods):
                    # Rescale abandoned; the job runs its previous pods, so
                    # there is nothing left for a recovery to replay.
                    try:
                        self.clear_intent(job_id)
                    except KVStoreError:
                        pass
                else:
                    # Fully torn down: leave a torn_down intent so a
                    # crashed-then-recovered controller relaunches it.
                    self._seal_intent(
                        JobIntent.for_target(target, INTENT_TORN_DOWN)
                    )
                rolled_back.append(job_id)
                if raise_on_failure:
                    finalize()
                    raise
                continue
            if restored:
                report.checkpoints_restored += 1
            report.pods_created += created
            scaled.append(job_id)

        return finalize()

    # -- crash recovery -----------------------------------------------------------
    def replay_intents(self) -> List[Tuple[str, str, str]]:
        """Finish (or abandon) every cycle a dead controller left in flight.

        Returns ``(job_id, phase_found, outcome)`` triples, sorted by job:

        * ``completed`` -- the intended pods now run (relaunched, or found
          already complete when the crash hit after the launch finished);
        * ``torn_down`` -- a teardown intent was completed; the job is gone
          (its checkpoint remains);
        * ``abandoned`` -- the relaunch failed (e.g. the target node died
          with the controller); the job is left down with its checkpoint
          intact for the next scheduling pass to replace.

        Sealed (``done``) intents are garbage-collected silently. The
        replay is idempotent: running it twice leaves the same state.
        """
        outcomes: List[Tuple[str, str, str]] = []
        for job_id, intent in sorted(self.list_intents().items()):
            if intent.phase == INTENT_DONE:
                continue
            target = intent.as_target()
            if target is None:
                # A pause/finish teardown died mid-flight: finish it.
                self._teardown_job(job_id)
                self.clear_intent(job_id)
                self.release_job(job_id)
                outcomes.append((job_id, intent.phase, REPLAY_TORN_DOWN))
                continue
            if self._current_layout(job_id) == _live_layout(intent.layout):
                # Crashed after the launch completed; just seal the cycle.
                self._put_intent(intent.with_phase(INTENT_DONE))
                outcomes.append((job_id, intent.phase, REPLAY_COMPLETED))
                continue
            self._teardown_job(job_id)
            try:
                self._put_intent(intent.with_phase(INTENT_LAUNCHING))
                self._launch_job(target)
                self._put_intent(intent.with_phase(INTENT_DONE))
                outcomes.append((job_id, intent.phase, REPLAY_COMPLETED))
            except KVStoreError:
                self._teardown_job(job_id)
                try:
                    self.clear_intent(job_id)
                except KVStoreError:
                    pass
                outcomes.append((job_id, intent.phase, REPLAY_ABANDONED))
        return outcomes
