"""An etcd-like key/value store (§5.5).

Optimus stores job states in etcd for fault tolerance and polls the
Kubernetes master for cluster state. This module provides the storage half
of that substrate: a revisioned key/value store with prefix queries,
compare-and-swap, and prefix watches delivering change events -- the etcd
features the scheduler stack actually relies on.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import KVStoreError


@dataclass(frozen=True)
class KVEvent:
    """One change notification delivered to watchers."""

    type: str  # "put" or "delete"
    key: str
    value: Optional[str]
    revision: int


WatchCallback = Callable[[KVEvent], None]


class KVStore:
    """A miniature etcd: revisioned puts, CAS, prefix listing and watches.

    Single-threaded by design (the simulator is single-threaded); watches
    fire synchronously during the mutating call, in registration order.
    """

    def __init__(self):
        self._data: Dict[str, Tuple[str, int]] = {}  # key -> (value, mod_rev)
        self._revision = 0
        self._watchers: List[Tuple[int, str, WatchCallback]] = []
        self._watch_id = 0

    @property
    def revision(self) -> int:
        """The store's current (latest) revision."""
        return self._revision

    # -- basic operations ---------------------------------------------------------
    def put(self, key: str, value: str) -> int:
        """Set *key* to *value*; returns the new revision."""
        self._validate_key(key)
        self._revision += 1
        self._data[key] = (str(value), self._revision)
        self._notify(KVEvent("put", key, str(value), self._revision))
        return self._revision

    def get(self, key: str) -> Optional[str]:
        """The current value of *key*, or ``None``."""
        entry = self._data.get(key)
        return entry[0] if entry else None

    def get_with_revision(self, key: str) -> Tuple[Optional[str], int]:
        """Value and last-modified revision of *key* (``(None, 0)`` if absent)."""
        entry = self._data.get(key)
        return (entry[0], entry[1]) if entry else (None, 0)

    def delete(self, key: str) -> bool:
        """Remove *key*; True when it existed."""
        if key not in self._data:
            return False
        self._revision += 1
        del self._data[key]
        self._notify(KVEvent("delete", key, None, self._revision))
        return True

    def compare_and_swap(
        self, key: str, expected: Optional[str], value: str
    ) -> bool:
        """Atomically set *key* to *value* iff its current value is *expected*.

        ``expected=None`` means "key must not exist" (create-only).
        """
        current = self.get(key)
        if current != expected:
            return False
        self.put(key, value)
        return True

    # -- queries ------------------------------------------------------------------
    def list_prefix(self, prefix: str) -> Dict[str, str]:
        """All key/value pairs whose key starts with *prefix*."""
        return {
            key: value
            for key, (value, _) in sorted(self._data.items())
            if key.startswith(prefix)
        }

    def keys(self, pattern: str = "*") -> List[str]:
        """Keys matching a glob *pattern*, sorted."""
        return sorted(k for k in self._data if fnmatch.fnmatch(k, pattern))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- watches ------------------------------------------------------------------
    def watch(self, prefix: str, callback: WatchCallback) -> int:
        """Register *callback* for changes under *prefix*; returns a watch id."""
        self._watch_id += 1
        self._watchers.append((self._watch_id, prefix, callback))
        return self._watch_id

    def cancel_watch(self, watch_id: int) -> bool:
        before = len(self._watchers)
        self._watchers = [w for w in self._watchers if w[0] != watch_id]
        return len(self._watchers) != before

    def _notify(self, event: KVEvent) -> None:
        # Watcher isolation: the mutation is already applied, so one raising
        # callback must not starve the rest of their notification. Every
        # matching watcher runs; failures are re-raised (aggregated) after
        # dispatch so they stay loud without corrupting delivery.
        failures: List[Tuple[int, BaseException]] = []
        for watch_id, prefix, callback in list(self._watchers):
            if event.key.startswith(prefix):
                try:
                    callback(event)
                except Exception as exc:  # noqa: BLE001 -- isolate any watcher bug
                    failures.append((watch_id, exc))
        if failures:
            detail = "; ".join(
                f"watch {watch_id}: {exc!r}" for watch_id, exc in failures
            )
            raise KVStoreError(
                f"{len(failures)} watcher callback(s) failed on "
                f"{event.type} {event.key!r}: {detail}"
            ) from failures[0][1]

    @staticmethod
    def _validate_key(key: str) -> None:
        if not key or not isinstance(key, str):
            raise KVStoreError("keys must be non-empty strings")
