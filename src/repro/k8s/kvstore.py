"""An etcd-like key/value store (§5.5).

Optimus stores job states in etcd for fault tolerance and polls the
Kubernetes master for cluster state. This module provides the storage half
of that substrate: a revisioned key/value store with prefix queries,
compare-and-swap, prefix watches delivering change events, and TTL leases
with attached keys -- the etcd features the scheduler stack actually
relies on. Leases carry an explicit clock (the store has none of its own):
callers pass ``now`` when granting, renewing and expiring, which keeps
lease behaviour deterministic under both the simulator's clock and the
deploy loop's step index.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import KVStoreError


@dataclass(frozen=True)
class KVEvent:
    """One change notification delivered to watchers."""

    type: str  # "put" or "delete"
    key: str
    value: Optional[str]
    revision: int


WatchCallback = Callable[[KVEvent], None]


@dataclass
class Lease:
    """One TTL lease: alive until ``expires_at``, keys die with it."""

    lease_id: int
    ttl: float
    expires_at: float
    keys: Set[str] = field(default_factory=set)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class KVStore:
    """A miniature etcd: revisioned puts, CAS, prefix listing and watches.

    Single-threaded by design (the simulator is single-threaded); watches
    fire synchronously during the mutating call, in registration order.
    """

    def __init__(self):
        self._data: Dict[str, Tuple[str, int]] = {}  # key -> (value, mod_rev)
        self._revision = 0
        self._watchers: List[Tuple[int, str, WatchCallback]] = []
        self._watch_id = 0
        self._leases: Dict[int, Lease] = {}
        self._lease_id = 0

    @property
    def revision(self) -> int:
        """The store's current (latest) revision."""
        return self._revision

    # -- basic operations ---------------------------------------------------------
    def put(self, key: str, value: str, lease: Optional[int] = None) -> int:
        """Set *key* to *value*; returns the new revision.

        With *lease*, the key is attached to that lease and deleted when
        the lease expires or is revoked (the etcd leased-put).
        """
        self._validate_key(key)
        # A put re-states the key's lease attachment (etcd semantics): the
        # key moves to the named lease, or detaches when *lease* is None.
        target = self._lease(lease) if lease is not None else None
        self._detach_key(key)
        if target is not None:
            target.keys.add(key)
        self._revision += 1
        self._data[key] = (str(value), self._revision)
        self._notify(KVEvent("put", key, str(value), self._revision))
        return self._revision

    def get(self, key: str) -> Optional[str]:
        """The current value of *key*, or ``None``."""
        entry = self._data.get(key)
        return entry[0] if entry else None

    def get_with_revision(self, key: str) -> Tuple[Optional[str], int]:
        """Value and last-modified revision of *key* (``(None, 0)`` if absent)."""
        entry = self._data.get(key)
        return (entry[0], entry[1]) if entry else (None, 0)

    def delete(self, key: str) -> bool:
        """Remove *key*; True when it existed."""
        if key not in self._data:
            return False
        self._detach_key(key)
        self._revision += 1
        del self._data[key]
        self._notify(KVEvent("delete", key, None, self._revision))
        return True

    def compare_and_swap(
        self,
        key: str,
        expected: Optional[str],
        value: str,
        lease: Optional[int] = None,
    ) -> bool:
        """Atomically set *key* to *value* iff its current value is *expected*.

        ``expected=None`` means "key must not exist" (create-only). With
        *lease*, a winning swap attaches the key to that lease in the same
        atomic step (the etcd election idiom: claim the leader key under
        your own TTL lease, so the claim dies with you).
        """
        current = self.get(key)
        if current != expected:
            return False
        self.put(key, value, lease=lease)
        return True

    # -- queries ------------------------------------------------------------------
    def list_prefix(self, prefix: str) -> Dict[str, str]:
        """All key/value pairs whose key starts with *prefix*."""
        return {
            key: value
            for key, (value, _) in sorted(self._data.items())
            if key.startswith(prefix)
        }

    def keys(self, pattern: str = "*") -> List[str]:
        """Keys matching a glob *pattern*, sorted."""
        return sorted(k for k in self._data if fnmatch.fnmatch(k, pattern))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- leases -------------------------------------------------------------------
    def grant_lease(self, ttl: float, now: float = 0.0) -> int:
        """Create a lease that lives until ``now + ttl``; returns its id."""
        if ttl <= 0:
            raise KVStoreError("lease ttl must be positive")
        self._lease_id += 1
        self._leases[self._lease_id] = Lease(
            lease_id=self._lease_id, ttl=float(ttl), expires_at=now + ttl
        )
        return self._lease_id

    def renew_lease(self, lease_id: int, now: float) -> float:
        """Push the lease's expiry to ``now + ttl`` (the etcd keep-alive).

        Renewing a lease that was never granted -- or that has already
        expired -- raises: the holder must re-acquire, exactly as an etcd
        client whose keep-alive stream lapsed must re-grant.
        """
        lease = self._lease(lease_id)
        if lease.expired(now):
            raise KVStoreError(f"lease {lease_id} already expired")
        lease.expires_at = now + lease.ttl
        return lease.expires_at

    def revoke_lease(self, lease_id: int) -> List[str]:
        """Drop the lease immediately; returns the attached keys it deleted.

        Revoking a lease that no longer exists (already expired or revoked)
        is a no-op: callers tearing state down must not race the expiry
        sweep.
        """
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return []
        return self._drop_lease_keys(lease)

    def expire_leases(self, now: float) -> List[int]:
        """Expire every lease whose TTL lapsed by *now*, deleting their keys.

        Returns the expired lease ids, sorted. The store has no background
        clock, so callers (the control loop's sweep) drive this explicitly.
        """
        # Snapshot the due ids up front: dropping a lease's keys fires
        # watcher callbacks, and a callback may itself revoke or expire
        # leases (an election noticing its record vanished). The pop must
        # therefore tolerate ids a nested call already removed.
        due = sorted(
            lease_id
            for lease_id, lease in self._leases.items()
            if lease.expired(now)
        )
        for lease_id in due:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                continue  # a watcher callback beat us to it
            self._drop_lease_keys(lease)
        return due

    def lease_remaining(self, lease_id: int, now: float) -> float:
        """Seconds until the lease expires (negative when already lapsed)."""
        return self._lease(lease_id).expires_at - now

    def lease_ttl(self, lease_id: int) -> float:
        """The TTL the lease was granted with (not its remaining time)."""
        return self._lease(lease_id).ttl

    def lease_keys(self, lease_id: int) -> List[str]:
        """The keys currently attached to a lease, sorted."""
        return sorted(self._lease(lease_id).keys)

    def has_lease(self, lease_id: int) -> bool:
        return lease_id in self._leases

    def _lease(self, lease_id: int) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise KVStoreError(f"unknown lease {lease_id}")
        return lease

    def _detach_key(self, key: str) -> None:
        for lease in self._leases.values():
            lease.keys.discard(key)

    def _drop_lease_keys(self, lease: Lease) -> List[str]:
        dropped = []
        for key in sorted(lease.keys):
            if self.delete(key):
                dropped.append(key)
        return dropped

    # -- watches ------------------------------------------------------------------
    def watch(self, prefix: str, callback: WatchCallback) -> int:
        """Register *callback* for changes under *prefix*; returns a watch id."""
        self._watch_id += 1
        self._watchers.append((self._watch_id, prefix, callback))
        return self._watch_id

    def cancel_watch(self, watch_id: int) -> bool:
        before = len(self._watchers)
        self._watchers = [w for w in self._watchers if w[0] != watch_id]
        return len(self._watchers) != before

    def _notify(self, event: KVEvent) -> None:
        # Watcher isolation: the mutation is already applied, so one raising
        # callback must not starve the rest of their notification. Every
        # matching watcher runs; failures are re-raised (aggregated) after
        # dispatch so they stay loud without corrupting delivery.
        failures: List[Tuple[int, BaseException]] = []
        for watch_id, prefix, callback in list(self._watchers):
            if event.key.startswith(prefix):
                try:
                    callback(event)
                except Exception as exc:  # noqa: BLE001 -- isolate any watcher bug
                    failures.append((watch_id, exc))
        if failures:
            detail = "; ".join(
                f"watch {watch_id}: {exc!r}" for watch_id, exc in failures
            )
            raise KVStoreError(
                f"{len(failures)} watcher callback(s) failed on "
                f"{event.type} {event.key!r}: {detail}"
            ) from failures[0][1]

    @staticmethod
    def _validate_key(key: str) -> None:
        if not key or not isinstance(key, str):
            raise KVStoreError("keys must be non-empty strings")
