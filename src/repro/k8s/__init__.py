"""Miniature container-orchestration substrate (§5.4-5.5).

An etcd-like kv store, a validating API server over nodes/pods, and a job
controller implementing checkpoint-based elastic scaling -- the plumbing the
real Optimus gets from Kubernetes + etcd.
"""

from repro.k8s.api import HEARTBEAT_PREFIX, NODE_PREFIX, POD_PREFIX, APIServer
from repro.k8s.controller import (
    CHECKPOINT_PREFIX,
    INTENT_CHECKPOINTED,
    INTENT_DONE,
    INTENT_LAUNCHING,
    INTENT_PHASES,
    INTENT_PREFIX,
    INTENT_TORN_DOWN,
    MANAGED_PREFIX,
    JobController,
    JobIntent,
    JobTarget,
    ReconcileReport,
)
from repro.k8s.election import (
    ELECTION_PREFIX,
    EPOCH_KEY,
    LEADER_KEY,
    FencedKVStore,
    LeaderElection,
    LeaderRecord,
)
from repro.k8s.kvstore import KVEvent, KVStore, Lease
from repro.k8s.objects import (
    PHASE_FAILED,
    PHASE_PENDING,
    PHASE_RUNNING,
    PHASE_SUCCEEDED,
    NodeInfo,
    PodSpec,
    pod_name,
)

__all__ = [
    "KVStore",
    "KVEvent",
    "Lease",
    "APIServer",
    "NodeInfo",
    "PodSpec",
    "pod_name",
    "JobController",
    "JobIntent",
    "JobTarget",
    "ReconcileReport",
    "LeaderElection",
    "LeaderRecord",
    "FencedKVStore",
    "NODE_PREFIX",
    "POD_PREFIX",
    "HEARTBEAT_PREFIX",
    "ELECTION_PREFIX",
    "LEADER_KEY",
    "EPOCH_KEY",
    "CHECKPOINT_PREFIX",
    "INTENT_PREFIX",
    "MANAGED_PREFIX",
    "INTENT_PHASES",
    "INTENT_CHECKPOINTED",
    "INTENT_TORN_DOWN",
    "INTENT_LAUNCHING",
    "INTENT_DONE",
    "PHASE_PENDING",
    "PHASE_RUNNING",
    "PHASE_SUCCEEDED",
    "PHASE_FAILED",
]
