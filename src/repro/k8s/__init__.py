"""Miniature container-orchestration substrate (§5.4-5.5).

An etcd-like kv store, a validating API server over nodes/pods, and a job
controller implementing checkpoint-based elastic scaling -- the plumbing the
real Optimus gets from Kubernetes + etcd.
"""

from repro.k8s.api import NODE_PREFIX, POD_PREFIX, APIServer
from repro.k8s.controller import (
    CHECKPOINT_PREFIX,
    JobController,
    JobTarget,
    ReconcileReport,
)
from repro.k8s.kvstore import KVEvent, KVStore
from repro.k8s.objects import (
    PHASE_FAILED,
    PHASE_PENDING,
    PHASE_RUNNING,
    PHASE_SUCCEEDED,
    NodeInfo,
    PodSpec,
    pod_name,
)

__all__ = [
    "KVStore",
    "KVEvent",
    "APIServer",
    "NodeInfo",
    "PodSpec",
    "pod_name",
    "JobController",
    "JobTarget",
    "ReconcileReport",
    "NODE_PREFIX",
    "POD_PREFIX",
    "CHECKPOINT_PREFIX",
    "PHASE_PENDING",
    "PHASE_RUNNING",
    "PHASE_SUCCEEDED",
    "PHASE_FAILED",
]
