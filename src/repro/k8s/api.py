"""The miniature API server (§5.5).

State lives in the etcd-like :class:`~repro.k8s.kvstore.KVStore` under
``/nodes/...`` and ``/pods/...``, exactly as Kubernetes persists its objects
in etcd; the API server is a thin validating layer on top, with the node
capacity accounting a real apiserver+scheduler would enforce at binding
time. The Optimus deployment polls this API for cluster information and job
states, as described in §5.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.common.errors import KVStoreError
from repro.k8s.kvstore import KVStore
from repro.k8s.objects import (
    PHASE_PENDING,
    PHASE_RUNNING,
    NodeInfo,
    PodSpec,
)

NODE_PREFIX = "/nodes/"
POD_PREFIX = "/pods/"


class APIServer:
    """Validated CRUD over nodes and pods, backed by a KVStore."""

    def __init__(self, store: Optional[KVStore] = None):
        # `store or KVStore()` would silently drop an *empty* store (KVStore
        # defines __len__), replacing e.g. a fresh RetryingKVStore wrapper
        # with an unwrapped one.
        self.store = store if store is not None else KVStore()

    # -- nodes -------------------------------------------------------------------
    def register_node(self, name: str, capacity: ResourceVector) -> NodeInfo:
        """Register a node; re-registering an identical node is idempotent.

        A node that crashes and comes back re-announces itself with the
        same name and capacity (the kubelet's normal recovery path); that
        must not error, and must preserve the existing allocation record.
        Re-registering with a *different* capacity is a real conflict and
        still raises.
        """
        key = NODE_PREFIX + name
        payload = self.store.get(key)
        if payload is not None:
            node = NodeInfo.from_json(payload)
            if node.capacity == capacity:
                return node
            raise KVStoreError(
                f"node {name!r} already registered with capacity "
                f"{node.capacity}, not {capacity}"
            )
        node = NodeInfo(name=name, capacity=capacity)
        self.store.put(key, node.to_json())
        return node

    def node(self, name: str) -> NodeInfo:
        payload = self.store.get(NODE_PREFIX + name)
        if payload is None:
            raise KVStoreError(f"unknown node {name!r}")
        return NodeInfo.from_json(payload)

    def list_nodes(self) -> List[NodeInfo]:
        return [
            NodeInfo.from_json(payload)
            for payload in self.store.list_prefix(NODE_PREFIX).values()
        ]

    def _save_node(self, node: NodeInfo) -> None:
        self.store.put(NODE_PREFIX + node.name, node.to_json())

    # -- pods --------------------------------------------------------------------
    def create_pod(self, pod: PodSpec) -> PodSpec:
        key = POD_PREFIX + pod.name
        if key in self.store:
            raise KVStoreError(f"pod {pod.name!r} already exists")
        if pod.bound:
            raise KVStoreError("pods must be created unbound; use bind_pod")
        self.store.put(key, pod.to_json())
        return pod

    def pod(self, name: str) -> PodSpec:
        payload = self.store.get(POD_PREFIX + name)
        if payload is None:
            raise KVStoreError(f"unknown pod {name!r}")
        return PodSpec.from_json(payload)

    def list_pods(
        self, job_id: Optional[str] = None, node: Optional[str] = None
    ) -> List[PodSpec]:
        pods = [
            PodSpec.from_json(payload)
            for payload in self.store.list_prefix(POD_PREFIX).values()
        ]
        if job_id is not None:
            pods = [p for p in pods if p.job_id == job_id]
        if node is not None:
            pods = [p for p in pods if p.node == node]
        return pods

    def bind_pod(self, pod_name: str, node_name: str) -> PodSpec:
        """Bind a pending pod to a node, enforcing capacity."""
        pod = self.pod(pod_name)
        if pod.bound:
            raise KVStoreError(f"pod {pod_name!r} is already bound to {pod.node}")
        node = self.node(node_name)
        if not pod.demand.fits_within(node.allocatable):
            raise KVStoreError(
                f"pod {pod_name!r} does not fit on node {node_name!r} "
                f"(needs {pod.demand}, allocatable {node.allocatable})"
            )
        node.allocated = node.allocated + pod.demand
        self._save_node(node)
        pod.node = node_name
        pod.phase = PHASE_RUNNING
        self.store.put(POD_PREFIX + pod.name, pod.to_json())
        return pod

    def delete_pod(self, pod_name: str) -> bool:
        """Delete a pod, releasing its node resources if bound."""
        key = POD_PREFIX + pod_name
        payload = self.store.get(key)
        if payload is None:
            return False
        pod = PodSpec.from_json(payload)
        if pod.bound:
            node = self.node(pod.node)
            node.allocated = node.allocated - pod.demand
            self._save_node(node)
        return self.store.delete(key)

    def restart_pod(self, pod_name: str) -> PodSpec:
        """Mark a pod restarted in place (e.g. straggler replacement, §5.2)."""
        pod = self.pod(pod_name)
        pod.restarts += 1
        pod.phase = PHASE_RUNNING if pod.bound else PHASE_PENDING
        self.store.put(POD_PREFIX + pod.name, pod.to_json())
        return pod

    # -- aggregates --------------------------------------------------------------
    def cluster_allocated(self) -> ResourceVector:
        total = ResourceVector()
        for node in self.list_nodes():
            total = total + node.allocated
        return total

    def pods_per_job(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for pod in self.list_pods():
            counts[pod.job_id] = counts.get(pod.job_id, 0) + 1
        return counts
