"""The miniature API server (§5.5).

State lives in the etcd-like :class:`~repro.k8s.kvstore.KVStore` under
``/nodes/...`` and ``/pods/...``, exactly as Kubernetes persists its objects
in etcd; the API server is a thin validating layer on top, with the node
capacity accounting a real apiserver+scheduler would enforce at binding
time. The Optimus deployment polls this API for cluster information and job
states, as described in §5.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.common.errors import KVStoreError
from repro.k8s.kvstore import KVStore
from repro.k8s.objects import (
    PHASE_FAILED,
    PHASE_PENDING,
    PHASE_RUNNING,
    NodeInfo,
    PodSpec,
)

NODE_PREFIX = "/nodes/"
POD_PREFIX = "/pods/"
#: Lease-attached liveness markers, one per heartbeating node. The marker
#: disappearing (its lease expired) is what the health sweep keys off.
HEARTBEAT_PREFIX = "/heartbeats/"


class APIServer:
    """Validated CRUD over nodes and pods, backed by a KVStore."""

    def __init__(self, store: Optional[KVStore] = None):
        # `store or KVStore()` would silently drop an *empty* store (KVStore
        # defines __len__), replacing e.g. a fresh RetryingKVStore wrapper
        # with an unwrapped one.
        self.store = store if store is not None else KVStore()

    def fence_writes(self, election) -> None:
        """Guard every write through this server with a leadership check.

        Wraps the backing store in a
        :class:`~repro.k8s.election.FencedKVStore` bound to *election*,
        so a request carrying a stale fencing epoch -- any mutation
        attempted after the holder's reign ended -- is rejected with
        :class:`~repro.common.errors.StaleLeaderError`. Re-fencing
        replaces the previous guard instead of stacking wrappers.
        """
        from repro.k8s.election import FencedKVStore

        self.store = FencedKVStore(getattr(self.store, "raw", self.store), election)

    # -- nodes -------------------------------------------------------------------
    def register_node(
        self,
        name: str,
        capacity: ResourceVector,
        lease_ttl: Optional[float] = None,
        now: float = 0.0,
    ) -> NodeInfo:
        """Register a node; re-registering an identical node is idempotent.

        A node that crashes and comes back re-announces itself with the
        same name and capacity (the kubelet's normal recovery path); that
        must not error, must preserve the existing allocation record, and
        -- when the node had been cordoned for missing heartbeats --
        uncordons it under a fresh lease. Re-registering with a
        *different* capacity is a real conflict and still raises.

        With *lease_ttl*, the node's health is backed by a KV-store lease:
        it must :meth:`heartbeat_node` at least every ``lease_ttl`` clock
        units or the next :meth:`sweep_expired` cordons it. Without
        (the default), the node is trusted forever -- the pre-lease
        behaviour, bit-identical for existing configurations.
        """
        key = NODE_PREFIX + name
        payload = self.store.get(key)
        if payload is not None:
            node = NodeInfo.from_json(payload)
            if node.capacity != capacity:
                raise KVStoreError(
                    f"node {name!r} already registered with capacity "
                    f"{node.capacity}, not {capacity}"
                )
            if lease_ttl is None and not node.cordoned:
                return node
            # A re-announce revives the node: fresh lease, cordon lifted.
            node.cordoned = False
            node.lease_id = self._grant_node_lease(name, lease_ttl, now)
            node.lease_ttl = lease_ttl
            self._save_node(node)
            return node
        node = NodeInfo(
            name=name,
            capacity=capacity,
            lease_id=self._grant_node_lease(name, lease_ttl, now),
            lease_ttl=lease_ttl,
        )
        self.store.put(key, node.to_json())
        return node

    def _grant_node_lease(
        self, name: str, lease_ttl: Optional[float], now: float
    ) -> Optional[int]:
        if lease_ttl is None:
            return None
        lease_id = self.store.grant_lease(lease_ttl, now)
        self.store.put(HEARTBEAT_PREFIX + name, str(lease_id), lease=lease_id)
        return lease_id

    def heartbeat_node(self, name: str, now: float) -> NodeInfo:
        """Renew a node's health lease (the kubelet status ping).

        Raises when the node has no lease (registered without heartbeats)
        or when it was already cordoned -- a node the sweep declared dead
        must re-register, not sneak back in with a late ping.

        A lease that lapsed but was *not yet swept* (no cordon happened)
        is a flapping node, not a dead one: the heartbeat re-grants a
        fresh lease with the original TTL instead of raising, and the
        caller can tell by the changed ``lease_id``. Without the regrant
        every late ping inside the sweep window forced a manual
        re-register.
        """
        node = self.node(name)
        if node.lease_id is None:
            raise KVStoreError(f"node {name!r} has no health lease")
        if node.cordoned:
            raise KVStoreError(
                f"node {name!r} lease expired; it must re-register"
            )
        if self.store.has_lease(node.lease_id):
            try:
                self.store.renew_lease(node.lease_id, now)
                return node
            except KVStoreError:
                pass  # lapsed at/past ttl but unswept: fall through to regrant
        ttl = node.lease_ttl
        if ttl is None and self.store.has_lease(node.lease_id):
            ttl = self.store.lease_ttl(node.lease_id)  # pre-regrant record
        if ttl is None:
            raise KVStoreError(
                f"node {name!r} lease expired and its ttl is unknown; "
                "it must re-register"
            )
        if self.store.has_lease(node.lease_id):
            self.store.revoke_lease(node.lease_id)
        node.lease_id = self._grant_node_lease(name, ttl, now)
        node.lease_ttl = ttl
        self._save_node(node)
        return node

    def sweep_expired(self, now: float) -> List[str]:
        """Cordon every node whose health lease lapsed by *now*.

        Expires KV leases (dropping their heartbeat markers), cordons the
        affected nodes, and marks their bound pods ``Failed`` -- lost with
        the machine, so the next reconcile relaunches those jobs from
        checkpoint. Returns the newly cordoned node names, sorted.
        """
        self.store.expire_leases(now)
        cordoned = []
        for node in self.list_nodes():
            if node.cordoned or node.lease_id is None:
                continue
            if self.store.get(HEARTBEAT_PREFIX + node.name) is not None:
                continue
            self.cordon_node(node.name)
            cordoned.append(node.name)
        return cordoned

    def cordon_node(self, name: str) -> NodeInfo:
        """Take a node out of scheduling and mark its bound pods lost."""
        node = self.node(name)
        if node.cordoned:
            return node
        node.cordoned = True
        self._save_node(node)
        for pod in self.list_pods(node=name):
            pod.phase = PHASE_FAILED
            self.store.put(POD_PREFIX + pod.name, pod.to_json())
        return node

    def uncordon_node(self, name: str) -> NodeInfo:
        """Return a cordoned node to service (its capacity becomes usable)."""
        node = self.node(name)
        if node.cordoned:
            node.cordoned = False
            self._save_node(node)
        return node

    def remove_node(self, name: str) -> bool:
        """Delete a node's record entirely (e.g. a cordoned node reclaimed).

        Pods still bound to the node keep their (now dangling) binding;
        :meth:`delete_pod` tolerates the missing node when they are torn
        down. Returns ``True`` when the node existed.
        """
        payload = self.store.get(NODE_PREFIX + name)
        if payload is None:
            return False
        node = NodeInfo.from_json(payload)
        if node.lease_id is not None and self.store.has_lease(node.lease_id):
            self.store.revoke_lease(node.lease_id)
        else:
            self.store.delete(HEARTBEAT_PREFIX + name)
        return self.store.delete(NODE_PREFIX + name)

    def node(self, name: str) -> NodeInfo:
        payload = self.store.get(NODE_PREFIX + name)
        if payload is None:
            raise KVStoreError(f"unknown node {name!r}")
        return NodeInfo.from_json(payload)

    def list_nodes(self, include_cordoned: bool = True) -> List[NodeInfo]:
        nodes = [
            NodeInfo.from_json(payload)
            for payload in self.store.list_prefix(NODE_PREFIX).values()
        ]
        if not include_cordoned:
            nodes = [node for node in nodes if not node.cordoned]
        return nodes

    def _save_node(self, node: NodeInfo) -> None:
        self.store.put(NODE_PREFIX + node.name, node.to_json())

    # -- pods --------------------------------------------------------------------
    def create_pod(self, pod: PodSpec) -> PodSpec:
        key = POD_PREFIX + pod.name
        if key in self.store:
            raise KVStoreError(f"pod {pod.name!r} already exists")
        if pod.bound:
            raise KVStoreError("pods must be created unbound; use bind_pod")
        self.store.put(key, pod.to_json())
        return pod

    def pod(self, name: str) -> PodSpec:
        payload = self.store.get(POD_PREFIX + name)
        if payload is None:
            raise KVStoreError(f"unknown pod {name!r}")
        return PodSpec.from_json(payload)

    def list_pods(
        self, job_id: Optional[str] = None, node: Optional[str] = None
    ) -> List[PodSpec]:
        pods = [
            PodSpec.from_json(payload)
            for payload in self.store.list_prefix(POD_PREFIX).values()
        ]
        if job_id is not None:
            pods = [p for p in pods if p.job_id == job_id]
        if node is not None:
            pods = [p for p in pods if p.node == node]
        return pods

    def bind_pod(self, pod_name: str, node_name: str) -> PodSpec:
        """Bind a pending pod to a node, enforcing capacity."""
        pod = self.pod(pod_name)
        if pod.bound:
            raise KVStoreError(f"pod {pod_name!r} is already bound to {pod.node}")
        node = self.node(node_name)
        if node.cordoned:
            raise KVStoreError(
                f"node {node_name!r} is cordoned; cannot bind {pod_name!r}"
            )
        if not pod.demand.fits_within(node.allocatable):
            raise KVStoreError(
                f"pod {pod_name!r} does not fit on node {node_name!r} "
                f"(needs {pod.demand}, allocatable {node.allocatable})"
            )
        node.allocated = node.allocated + pod.demand
        self._save_node(node)
        pod.node = node_name
        pod.phase = PHASE_RUNNING
        self.store.put(POD_PREFIX + pod.name, pod.to_json())
        return pod

    def delete_pod(self, pod_name: str) -> bool:
        """Delete a pod, releasing its node resources if bound.

        A bound pod whose node record has vanished (a cordoned node that
        was since removed) still deletes cleanly -- there is no capacity
        left to release. Only the *absence* of the record is tolerated; a
        transient store failure while reading it still raises, so flaky-KV
        runs never silently skip the release.
        """
        key = POD_PREFIX + pod_name
        payload = self.store.get(key)
        if payload is None:
            return False
        pod = PodSpec.from_json(payload)
        if pod.bound:
            node_payload = self.store.get(NODE_PREFIX + pod.node)
            if node_payload is not None:
                node = NodeInfo.from_json(node_payload)
                node.allocated = node.allocated - pod.demand
                self._save_node(node)
        return self.store.delete(key)

    def restart_pod(self, pod_name: str) -> PodSpec:
        """Mark a pod restarted in place (e.g. straggler replacement, §5.2)."""
        pod = self.pod(pod_name)
        pod.restarts += 1
        pod.phase = PHASE_RUNNING if pod.bound else PHASE_PENDING
        self.store.put(POD_PREFIX + pod.name, pod.to_json())
        return pod

    # -- aggregates --------------------------------------------------------------
    def cluster_allocated(self) -> ResourceVector:
        total = ResourceVector()
        for node in self.list_nodes():
            total = total + node.allocated
        return total

    def pods_per_job(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for pod in self.list_pods():
            counts[pod.job_id] = counts.get(pod.job_id, 0) + 1
        return counts
