"""Lease-based leader election with epoch fencing tokens.

Optimus assumes one always-alive central scheduler; running the control
plane as a *service* needs hot/standby controllers that survive the
leader dying without double-driving jobs. This module implements the
etcd election recipe over :class:`~repro.k8s.kvstore.KVStore`:

* A candidate **campaigns** by create-only compare-and-swap on
  ``/election/leader``, attaching the record to its own TTL lease -- the
  claim dies with the holder. Exactly one campaigner per vacancy wins.
* Every term mints a **fencing token**: a strictly increasing epoch kept
  under ``/election/epoch``. The token outlives any individual reign, so
  a write stamped with epoch *n* can always be recognised as stale once
  epoch *n+1* exists.
* :class:`FencedKVStore` is the enforcement point: it wraps the store a
  controller writes through and rejects every mutation once the
  caller's reign is over, raising the typed
  :class:`~repro.common.errors.StaleLeaderError`. This is what prevents
  the classic split-brain: a leader that stalls (GC pause, partition),
  loses its lease, and wakes up mid-reconcile cannot corrupt state the
  successor already owns -- its pending ``put``/``delete``/CAS calls all
  bounce off the fence.

The store is single-threaded and has no background clock; liveness is
therefore *polled*: a standby calls :meth:`LeaderElection.campaign` each
tick, which treats a leader record whose lease lapsed as a vacancy (and
cleans it up, emitting ``leader_deposed`` for the dead reign). A watch
on ``/election/`` keeps :attr:`LeaderElection.observed_leader` current
for introspection, but cannot replace polling: a silently dead leader
produces no delete event until someone notices its lease lapsed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import KVStoreError, StaleLeaderError
from repro.k8s.kvstore import KVEvent, KVStore
from repro.obs.registry import MetricsRegistry, active_registry
from repro.obs.tracer import (
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_WRITE_FENCED,
    NULL_TRACER,
    Tracer,
)

#: Every election object lives under this prefix (standbys watch it).
ELECTION_PREFIX = "/election/"
#: The reigning leader's record, attached to the leader's TTL lease.
LEADER_KEY = ELECTION_PREFIX + "leader"
#: The fencing-token counter; unleased, survives every reign.
EPOCH_KEY = ELECTION_PREFIX + "epoch"


@dataclass(frozen=True)
class LeaderRecord:
    """The durable claim one reign writes under :data:`LEADER_KEY`."""

    name: str
    epoch: int
    lease_id: int

    def to_json(self) -> str:
        return json.dumps(
            {"name": self.name, "epoch": self.epoch, "lease_id": self.lease_id},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "LeaderRecord":
        data = json.loads(payload)
        return cls(
            name=data["name"],
            epoch=int(data["epoch"]),
            lease_id=int(data["lease_id"]),
        )


class LeaderElection:
    """One candidate's handle on the ``/election/`` protocol.

    All methods take an explicit ``now`` (the store has no clock); the
    instance tracks the high-water mark so fencing events emitted from
    inside :class:`FencedKVStore` -- which has no ``now`` of its own --
    carry a sensible timestamp.
    """

    def __init__(
        self,
        store: KVStore,
        candidate: str,
        ttl: float,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not candidate:
            raise KVStoreError("election candidates need a non-empty name")
        if ttl <= 0:
            raise KVStoreError("election lease ttl must be positive")
        # Elections always talk to the raw store: a fenced store would
        # reject the very campaign that re-establishes leadership.
        self.store: KVStore = getattr(store, "raw", store)
        self.candidate = candidate
        self.ttl = float(ttl)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else active_registry()
        self.now = 0.0
        self._lease_id: Optional[int] = None
        self._epoch: Optional[int] = None
        self._deposed_emitted = False
        #: The last leader record this candidate saw change (watch cache);
        #: ``None`` when the key was deleted or never observed.
        self.observed_leader: Optional[LeaderRecord] = None
        self._watch_id = self.store.watch(ELECTION_PREFIX, self._on_change)

    # -- introspection -------------------------------------------------------------
    @property
    def epoch(self) -> Optional[int]:
        """This candidate's fencing token for its current/last reign."""
        return self._epoch

    #: Alias: the epoch *is* the fencing token.
    fencing_token = epoch

    @property
    def leading(self) -> bool:
        """Cheap local belief (no liveness check); see :meth:`is_leader`."""
        return self._lease_id is not None

    def current_leader(self) -> Optional[LeaderRecord]:
        """The reigning record in the store, live or not."""
        payload = self.store.get(LEADER_KEY)
        return LeaderRecord.from_json(payload) if payload else None

    def leader_alive(self, now: float) -> bool:
        """True iff *some* candidate's claim is backed by a live lease."""
        record = self.current_leader()
        return (
            record is not None
            and self.store.has_lease(record.lease_id)
            and self.store.lease_remaining(record.lease_id, now) > 0
        )

    def is_leader(self, now: float) -> bool:
        """True iff this candidate's claim is present *and* its lease lives."""
        self.now = max(self.now, now)
        if self._lease_id is None or not self.store.has_lease(self._lease_id):
            return False
        if self.store.lease_remaining(self._lease_id, now) <= 0:
            return False
        record = self.current_leader()
        return (
            record is not None
            and record.name == self.candidate
            and record.epoch == self._epoch
        )

    # -- the protocol --------------------------------------------------------------
    def campaign(self, now: float) -> Optional[int]:
        """Try to become leader; returns the minted epoch, or ``None``.

        A live rival's reign makes the campaign back off immediately. A
        *stale* record (its lease lapsed) is deposed first -- revoked and
        traced ``leader_deposed`` -- then the vacancy is contested: mint
        the next epoch via CAS on :data:`EPOCH_KEY`, grant a fresh TTL
        lease, and claim :data:`LEADER_KEY` with a create-only leased
        CAS. Losing either CAS (a rival interleaved through a watcher)
        backs off without side effects beyond the revoked scratch lease.
        """
        self.now = max(self.now, now)
        record = self.current_leader()
        if record is not None:
            alive = (
                self.store.has_lease(record.lease_id)
                and self.store.lease_remaining(record.lease_id, now) > 0
            )
            if alive:
                if record.name == self.candidate and record.epoch == self._epoch:
                    return self._epoch  # already reigning
                return None  # a live rival reigns; back off
            self._depose_record(record, now)
        while True:
            current = self.store.get(EPOCH_KEY)
            epoch = (int(current) if current is not None else 0) + 1
            if self.store.compare_and_swap(EPOCH_KEY, current, str(epoch)):
                break
            # A rival minted concurrently (via a watcher interleaving);
            # retry strictly above whatever it published.
        lease_id = self.store.grant_lease(self.ttl, now)
        claim = LeaderRecord(self.candidate, epoch, lease_id)
        if not self.store.compare_and_swap(
            LEADER_KEY, None, claim.to_json(), lease=lease_id
        ):
            # CAS loser: someone claimed the vacancy first. Back off.
            self.store.revoke_lease(lease_id)
            self.metrics.counter("election.campaigns_lost").inc()
            return None
        self._lease_id = lease_id
        self._epoch = epoch
        self._deposed_emitted = False
        if self.tracer:
            self.tracer.emit(
                EVENT_LEADER_ELECTED, now, leader=self.candidate, epoch=epoch
            )
        self.metrics.counter("election.terms").inc()
        return epoch

    def renew(self, now: float) -> bool:
        """Keep-alive for the reign; ``False`` once the reign is over.

        The boundary is exact: a renew arriving at ``now == grant + ttl``
        is already too late (the lease "expired" test is ``now >=
        expires_at``), so a standby campaigning the same tick wins -- no
        split reign at the boundary. Discovering the loss marks this
        candidate deposed (traced once).
        """
        self.now = max(self.now, now)
        if self._lease_id is None:
            return False
        try:
            if not self.store.has_lease(self._lease_id):
                raise KVStoreError(
                    f"election lease {self._lease_id} is gone"
                )
            record = self.current_leader()
            if (
                record is None
                or record.name != self.candidate
                or record.epoch != self._epoch
            ):
                raise KVStoreError("leader record no longer ours")
            self.store.renew_lease(self._lease_id, now)
        except KVStoreError:
            self.mark_deposed(now)
            return False
        return True

    def resign(self, now: float) -> None:
        """Step down cleanly: revoke the lease (dropping the claim)."""
        self.now = max(self.now, now)
        if self._lease_id is None:
            return
        record = self.current_leader()
        if (
            record is not None
            and record.name == self.candidate
            and record.epoch == self._epoch
        ):
            self.store.revoke_lease(record.lease_id)
        self.mark_deposed(now, reason="resign")

    def mark_deposed(self, now: float, reason: str = "deposed") -> None:
        """Record (and trace, once per term) that this reign ended.

        *reason* rides on the ``leader_deposed`` event: a voluntary
        ``"resign"`` (clean shutdown) does not start the soak checker's
        failover clock, while an involuntary ``"deposed"``/``"lapsed"``
        reign-end demands a successor within the failover bound.
        """
        self.now = max(self.now, now)
        if self._epoch is not None and not self._deposed_emitted:
            if self.tracer:
                self.tracer.emit(
                    EVENT_LEADER_DEPOSED,
                    now,
                    leader=self.candidate,
                    epoch=self._epoch,
                    reason=reason,
                )
            self.metrics.counter("election.depositions").inc()
            self._deposed_emitted = True
        self._lease_id = None

    def sever(self, now: float) -> None:
        """Kill this reign *behind the leader's back* (test/chaos hook).

        Models the GC-pause/partition story: the store-side claim and
        lease vanish, but the candidate's in-memory state still believes
        it leads -- so its very next write through a
        :class:`FencedKVStore` raises :class:`StaleLeaderError`.
        """
        record = self.current_leader()
        if (
            record is not None
            and record.name == self.candidate
            and record.epoch == self._epoch
        ):
            self.store.revoke_lease(record.lease_id)
            self.store.delete(LEADER_KEY)  # in case the lease was already gone
        elif self._lease_id is not None:
            self.store.revoke_lease(self._lease_id)
        self.now = max(self.now, now)
        # Deliberately leave _lease_id/_epoch untouched: the stale belief
        # is the point.

    # -- internals -----------------------------------------------------------------
    def _depose_record(self, record: LeaderRecord, now: float) -> None:
        """Clean up a stale reign found during a campaign."""
        self.store.revoke_lease(record.lease_id)  # no-op if already swept
        survivor = self.store.get(LEADER_KEY)
        if survivor is not None and LeaderRecord.from_json(survivor) == record:
            self.store.delete(LEADER_KEY)
        if self.tracer:
            self.tracer.emit(
                EVENT_LEADER_DEPOSED,
                now,
                leader=record.name,
                epoch=record.epoch,
                reason="lapsed",
            )
        self.metrics.counter("election.depositions").inc()
        if record.name == self.candidate and record.epoch == self._epoch:
            self._deposed_emitted = True  # just traced our own stale reign
            self._lease_id = None

    def _on_change(self, event: KVEvent) -> None:
        if event.key != LEADER_KEY:
            return
        try:
            self.observed_leader = (
                LeaderRecord.from_json(event.value)
                if event.type == "put" and event.value
                else None
            )
        except (ValueError, KeyError):
            self.observed_leader = None  # a torn record is no leader


class FencedKVStore:
    """A write guard: every mutation checks the holder still reigns.

    Reads pass straight through (stale reads are harmless in this
    architecture -- decisions are revalidated at write time); writes
    first verify that the wrapped election's claim is still the live
    leader record. A deposed holder's write raises
    :class:`StaleLeaderError` *before* touching the store, emits
    ``write_fenced`` and marks the election deposed, so the first fenced
    write is also how a paused leader discovers its reign ended.
    """

    def __init__(self, store: KVStore, election: LeaderElection):
        #: The unwrapped store (never double-wrap; elections campaign here).
        self.raw: KVStore = getattr(store, "raw", store)
        self.election = election
        #: Mutations rejected so far (also counted as ``election.writes_fenced``).
        self.fenced_writes = 0

    # -- the fence -----------------------------------------------------------------
    def _check(self, op: str, key: str) -> None:
        election = self.election
        lease_id = election._lease_id
        reigning = False
        if lease_id is not None and self.raw.has_lease(lease_id):
            record = election.current_leader()
            reigning = (
                record is not None
                and record.name == election.candidate
                and record.epoch == election.epoch
            )
        if reigning:
            return
        self.fenced_writes += 1
        if election.tracer:
            election.tracer.emit(
                EVENT_WRITE_FENCED,
                election.now,
                leader=election.candidate,
                epoch=election.epoch,
                op=op,
                key=key,
            )
        election.metrics.counter("election.writes_fenced").inc()
        election.mark_deposed(election.now)
        raise StaleLeaderError(
            f"{op} {key!r} rejected: {election.candidate!r} "
            f"(epoch {election.epoch}) is no longer the leader"
        )

    # -- guarded mutations ---------------------------------------------------------
    def put(self, key: str, value: str, lease: Optional[int] = None) -> int:
        self._check("put", key)
        return self.raw.put(key, value, lease=lease)

    def delete(self, key: str) -> bool:
        self._check("delete", key)
        return self.raw.delete(key)

    def compare_and_swap(
        self,
        key: str,
        expected: Optional[str],
        value: str,
        lease: Optional[int] = None,
    ) -> bool:
        self._check("compare_and_swap", key)
        return self.raw.compare_and_swap(key, expected, value, lease=lease)

    def grant_lease(self, ttl: float, now: float = 0.0) -> int:
        self._check("grant_lease", "<lease>")
        return self.raw.grant_lease(ttl, now)

    def renew_lease(self, lease_id: int, now: float) -> float:
        self._check("renew_lease", f"<lease {lease_id}>")
        return self.raw.renew_lease(lease_id, now)

    def revoke_lease(self, lease_id: int) -> List[str]:
        self._check("revoke_lease", f"<lease {lease_id}>")
        return self.raw.revoke_lease(lease_id)

    def expire_leases(self, now: float) -> List[int]:
        self._check("expire_leases", "<leases>")
        return self.raw.expire_leases(now)

    # -- pass-through reads --------------------------------------------------------
    @property
    def revision(self) -> int:
        return self.raw.revision

    def get(self, key: str) -> Optional[str]:
        return self.raw.get(key)

    def get_with_revision(self, key: str) -> Tuple[Optional[str], int]:
        return self.raw.get_with_revision(key)

    def list_prefix(self, prefix: str) -> Dict[str, str]:
        return self.raw.list_prefix(prefix)

    def keys(self, pattern: str = "*") -> List[str]:
        return self.raw.keys(pattern)

    def __len__(self) -> int:
        return len(self.raw)

    def __contains__(self, key: str) -> bool:
        return key in self.raw

    def lease_remaining(self, lease_id: int, now: float) -> float:
        return self.raw.lease_remaining(lease_id, now)

    def lease_ttl(self, lease_id: int) -> float:
        return self.raw.lease_ttl(lease_id)

    def lease_keys(self, lease_id: int) -> List[str]:
        return self.raw.lease_keys(lease_id)

    def has_lease(self, lease_id: int) -> bool:
        return self.raw.has_lease(lease_id)

    def watch(self, prefix: str, callback: Callable) -> int:
        return self.raw.watch(prefix, callback)

    def cancel_watch(self, watch_id: int) -> bool:
        return self.raw.cancel_watch(watch_id)
