"""API objects of the miniature orchestrator (§5.5).

A faithful-in-spirit subset of the Kubernetes object model: nodes with
allocatable capacity, and pods (one container each -- one worker or one
parameter server of a training job) with the usual phase lifecycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.resources import ResourceVector
from repro.common.errors import ConfigurationError

PHASE_PENDING = "Pending"
PHASE_RUNNING = "Running"
PHASE_SUCCEEDED = "Succeeded"
PHASE_FAILED = "Failed"
PHASES = (PHASE_PENDING, PHASE_RUNNING, PHASE_SUCCEEDED, PHASE_FAILED)


@dataclass
class PodSpec:
    """One container of a training job (a worker or a parameter server)."""

    name: str
    job_id: str
    role: str  # "worker" or "ps"
    index: int
    demand: ResourceVector
    node: Optional[str] = None
    phase: str = PHASE_PENDING
    restarts: int = 0

    def __post_init__(self) -> None:
        if self.role not in ("worker", "ps"):
            raise ConfigurationError(f"unknown pod role {self.role!r}")
        if self.phase not in PHASES:
            raise ConfigurationError(f"unknown pod phase {self.phase!r}")
        if self.index < 0:
            raise ConfigurationError("pod index must be non-negative")

    @property
    def bound(self) -> bool:
        return self.node is not None

    # -- (de)serialisation for the kv store --------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "job_id": self.job_id,
                "role": self.role,
                "index": self.index,
                "demand": dict(self.demand.items()),
                "node": self.node,
                "phase": self.phase,
                "restarts": self.restarts,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "PodSpec":
        data = json.loads(payload)
        return cls(
            name=data["name"],
            job_id=data["job_id"],
            role=data["role"],
            index=data["index"],
            demand=ResourceVector(data["demand"]),
            node=data.get("node"),
            phase=data.get("phase", PHASE_PENDING),
            restarts=data.get("restarts", 0),
        )


@dataclass
class NodeInfo:
    """One cluster node as the API server sees it."""

    name: str
    capacity: ResourceVector
    #: Resources already promised to bound pods.
    allocated: ResourceVector = field(default_factory=ResourceVector)
    #: A cordoned node keeps its record (and its pods' bindings) but takes
    #: no new pods and is excluded from scheduling snapshots; the health
    #: sweep cordons nodes whose heartbeat lease expired.
    cordoned: bool = False
    #: The KV-store lease backing this node's health; ``None`` when the
    #: node was registered without heartbeats (it then never expires).
    lease_id: Optional[int] = None
    #: The TTL the health lease was granted with; recorded so a late
    #: heartbeat can re-grant an equivalent lease (``None`` pre-lease).
    lease_ttl: Optional[float] = None

    @property
    def allocatable(self) -> ResourceVector:
        return self.capacity - self.allocated

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "capacity": dict(self.capacity.items()),
                "allocated": dict(self.allocated.items()),
                "cordoned": self.cordoned,
                "lease_id": self.lease_id,
                "lease_ttl": self.lease_ttl,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "NodeInfo":
        data = json.loads(payload)
        return cls(
            name=data["name"],
            capacity=ResourceVector(data["capacity"]),
            allocated=ResourceVector(data.get("allocated", {})),
            cordoned=data.get("cordoned", False),
            lease_id=data.get("lease_id"),
            lease_ttl=data.get("lease_ttl"),
        )


def pod_name(job_id: str, role: str, index: int) -> str:
    """The canonical pod name for a task, e.g. ``job-3/worker-2``."""
    return f"{job_id}/{role}-{index}"
