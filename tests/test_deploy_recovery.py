"""Tests for scheduler-restart recovery (§5.5 fault tolerance)."""

import pytest

from repro.cluster import cpu_mem
from repro.deploy import ControlLoop
from repro.k8s import APIServer
from repro.schedulers import JobView, OptimusScheduler
from repro.workloads import StepTimeModel, make_job


@pytest.fixture
def api():
    server = APIServer()
    for i in range(8):
        server.register_node(f"n{i}", cpu_mem(16, 64))
    return server


def view(job_id, remaining=50_000):
    spec = make_job("seq2seq", mode="sync", job_id=job_id)
    truth = StepTimeModel(spec.profile, "sync")
    return JobView(
        spec=spec,
        remaining_steps=remaining,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
    )


class TestRecovery:
    def test_recover_reads_checkpoints(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a")], progress={"a": 100.0})
        # Even without a rescale, progress checkpoints are refreshed every
        # interval, so a crash loses at most one interval of training.
        loop.step([view("a")], progress={"a": 4_000.0})

        # The scheduler "crashes"; a new instance starts over the same etcd.
        fresh = ControlLoop(api, OptimusScheduler())
        recovered = fresh.recover(["a"])
        assert recovered["a"] == 4_000.0

    def test_recover_unknown_job_starts_from_zero(self, api):
        fresh = ControlLoop(api, OptimusScheduler())
        assert fresh.recover(["ghost"]) == {"ghost": 0.0}

    def test_recovered_loop_manages_existing_pods(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a")], progress={"a": 0.0})
        pods_before = len(api.list_pods(job_id="a"))
        assert pods_before > 0

        fresh = ControlLoop(api, OptimusScheduler())
        fresh.recover(["a"])
        # The recovered loop may now reshape or tear down job "a".
        report = fresh.step([], progress={"a": 7_000.0})
        assert report.reconcile.pods_deleted == pods_before
        assert fresh.controller.load_checkpoint("a") == 7_000.0

    def test_without_recover_foreign_pods_are_safe(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a")], progress={"a": 0.0})

        fresh = ControlLoop(api, OptimusScheduler())
        # No recover(): the fresh loop does not own job "a" and must not
        # touch its pods even when scheduling new work.
        report = fresh.step([view("b")], progress={"b": 0.0})
        assert len(api.list_pods(job_id="a")) > 0
        assert "b" in report.decision.allocations

    def test_recovery_roundtrip_preserves_capacity_accounting(self, api):
        loop = ControlLoop(api, OptimusScheduler())
        loop.step([view("a")], progress={"a": 0.0})
        fresh = ControlLoop(api, OptimusScheduler())
        fresh.recover(["a"])
        fresh.step([view("a", remaining=20_000)], progress={"a": 1_000.0})
        for node in api.list_nodes():
            assert node.allocated.fits_within(node.capacity)
