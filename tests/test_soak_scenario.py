"""Tests for the soak scenario engine, chaos orchestration and CLI."""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.sim.soak import (
    ScenarioSpec,
    build_fault_plan,
    build_workload,
    checker_config_from_spec,
    load_scenario,
    perturbation_from_spec,
    run_soak,
)
from repro.workloads import save_trace, uniform_arrivals

SMALL = {
    "name": "unit-soak",
    "seed": 3,
    "servers": 6,
    "horizon": 43_200.0,
    "interval": 600.0,
    "checkpoint_interval": 600.0,
    "workload": [{"arrivals": "uniform", "jobs": 3, "window": 1_200.0}],
    "plan": {
        "node_crashes": [{"time": 900.0, "server": "node-1", "duration": 900.0}]
    },
}


class TestScenarioSpec:
    def test_defaults(self):
        spec = ScenarioSpec.from_dict(
            {"workload": [{"arrivals": "uniform", "jobs": 2}]}
        )
        assert spec.policy == "optimus"
        assert spec.engine is None
        assert spec.servers == 13

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown key.*chaos_level"):
            ScenarioSpec.from_dict(
                {"workload": [{"arrivals": "uniform"}], "chaos_level": 11}
            )

    def test_workload_required(self):
        with pytest.raises(ConfigurationError, match="workload"):
            ScenarioSpec.from_dict({})

    def test_bad_arrival_kind(self):
        with pytest.raises(ConfigurationError, match="arrivals"):
            ScenarioSpec.from_dict({"workload": [{"arrivals": "psychic"}]})

    def test_trace_needs_path(self):
        with pytest.raises(ConfigurationError, match="needs a 'path'"):
            ScenarioSpec.from_dict({"workload": [{"arrivals": "trace"}]})

    def test_bad_engine(self):
        with pytest.raises(ConfigurationError, match="engine"):
            ScenarioSpec.from_dict(
                {"workload": [{"arrivals": "uniform"}], "engine": "warp"}
            )

    def test_bad_perturbation_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ScenarioSpec.from_dict(
                {
                    "workload": [{"arrivals": "uniform"}],
                    "perturbation": {"kind": "chaotic"},
                }
            )

    def test_bad_seed(self):
        with pytest.raises(ConfigurationError, match="seed"):
            ScenarioSpec.from_dict(
                {"workload": [{"arrivals": "uniform"}], "seed": "zero"}
            )

    def test_to_dict_round_trips(self):
        spec = ScenarioSpec.from_dict(dict(SMALL))
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_load_scenario_bad_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_scenario(str(path))


class TestBuildWorkload:
    def test_groups_prefixed_and_offset(self):
        spec = ScenarioSpec.from_dict(
            {
                "seed": 1,
                "workload": [
                    {"arrivals": "uniform", "jobs": 3, "window": 100.0},
                    {"arrivals": "uniform", "jobs": 3, "window": 100.0,
                     "offset": 5_000.0, "prefix": "spike"},
                ],
            }
        )
        jobs = build_workload(spec)
        assert len(jobs) == 6
        assert len({j.job_id for j in jobs}) == 6
        first = [j for j in jobs if j.job_id.startswith("g0-")]
        spike = [j for j in jobs if j.job_id.startswith("spike-")]
        assert len(first) == 3 and len(spike) == 3
        assert all(j.arrival_time >= 5_000.0 for j in spike)
        assert [j.arrival_time for j in jobs] == sorted(
            j.arrival_time for j in jobs
        )

    def test_trace_group_replays_file(self, tmp_path):
        source = uniform_arrivals(num_jobs=2, seed=5)
        path = tmp_path / "jobs.json"
        save_trace(source, str(path))
        spec = ScenarioSpec.from_dict(
            {"workload": [{"arrivals": "trace", "path": str(path)}]}
        )
        jobs = build_workload(spec)
        assert [j.job_id for j in jobs] == [
            f"g0-{j.job_id}" for j in source
        ]

    def test_unknown_generator_kwarg_is_config_error(self):
        spec = ScenarioSpec.from_dict(
            {"workload": [{"arrivals": "uniform", "jobs": 2, "flavour": "sour"}]}
        )
        with pytest.raises(ConfigurationError, match="workload group 0"):
            build_workload(spec)

    def test_group_seeds_differ(self):
        spec = ScenarioSpec.from_dict(
            {
                "seed": 0,
                "workload": [
                    {"arrivals": "uniform", "jobs": 4, "window": 1000.0},
                    {"arrivals": "uniform", "jobs": 4, "window": 1000.0},
                ],
            }
        )
        jobs = build_workload(spec)
        g0 = sorted(j.arrival_time for j in jobs if j.job_id.startswith("g0-"))
        g1 = sorted(j.arrival_time for j in jobs if j.job_id.startswith("g1-"))
        assert g0 != g1


class TestBuildFaultPlan:
    def test_empty_is_none(self):
        spec = ScenarioSpec.from_dict({"workload": [{"arrivals": "uniform"}]})
        assert build_fault_plan(spec) is None

    def test_explicit_plan(self):
        plan = build_fault_plan(ScenarioSpec.from_dict(dict(SMALL)))
        assert plan is not None
        assert plan.node_crashes[0].server == "node-1"

    def test_waves_seeded_and_distinct(self):
        spec = ScenarioSpec.from_dict(
            {
                "seed": 7,
                "servers": 8,
                "workload": [{"arrivals": "uniform"}],
                "fault_waves": [
                    {"start": 1000.0, "end": 2000.0, "crashes": 3,
                     "downtime": [600.0, 1200.0]}
                ],
            }
        )
        plan_a = build_fault_plan(spec)
        plan_b = build_fault_plan(spec)
        assert plan_a == plan_b  # seeded => reproducible
        crashes = plan_a.node_crashes
        assert len(crashes) == 3
        assert len({c.server for c in crashes}) == 3  # distinct servers
        assert all(1000.0 <= c.time < 2000.0 for c in crashes)
        assert all(600.0 <= c.duration <= 1200.0 for c in crashes)

    def test_wave_overflow_rejected(self):
        spec = ScenarioSpec.from_dict(
            {
                "servers": 2,
                "workload": [{"arrivals": "uniform"}],
                "fault_waves": [{"start": 0.0, "end": 100.0, "crashes": 5}],
            }
        )
        with pytest.raises(ConfigurationError, match="only 2 servers"):
            build_fault_plan(spec)

    def test_wave_needs_end(self):
        spec = ScenarioSpec.from_dict(
            {
                "workload": [{"arrivals": "uniform"}],
                "fault_waves": [{"start": 100.0, "end": 100.0}],
            }
        )
        with pytest.raises(ConfigurationError, match="'end' > 'start'"):
            build_fault_plan(spec)


class TestPerturbation:
    def test_none(self):
        assert perturbation_from_spec(None) is None

    def test_step(self):
        fn = perturbation_from_spec({"kind": "step", "at": 100.0, "factor": 0.5})
        assert fn(99.0) == 1.0
        assert fn(100.0) == 0.5

    def test_ramp(self):
        fn = perturbation_from_spec(
            {"kind": "ramp", "start": 0.0, "end": 100.0, "factor": 0.5}
        )
        assert fn(0.0) == 1.0
        assert fn(50.0) == pytest.approx(0.75)
        assert fn(200.0) == 0.5

    def test_ramp_needs_window(self):
        with pytest.raises(ConfigurationError, match="'end' > 'start'"):
            perturbation_from_spec({"kind": "ramp", "start": 5.0, "end": 5.0})

    def test_sine_bounded(self):
        fn = perturbation_from_spec(
            {"kind": "sine", "period": 100.0, "amplitude": 0.3}
        )
        values = [fn(t) for t in range(0, 200, 7)]
        assert all(0.7 <= v <= 1.3 for v in values)

    def test_sine_amplitude_bound(self):
        with pytest.raises(ConfigurationError, match="amplitude"):
            perturbation_from_spec({"kind": "sine", "amplitude": 1.0})


class TestCheckerConfigFromSpec:
    def test_soak_defaults(self):
        cfg = checker_config_from_spec({}, interval=600.0)
        assert cfg.require_accounting is True
        assert cfg.strict_end is True
        assert cfg.recovery_slack == 1800.0

    def test_slack_scales_with_interval(self):
        assert checker_config_from_spec({}, interval=1200.0).recovery_slack == 3600.0

    def test_overrides(self):
        cfg = checker_config_from_spec(
            {"recovery_slack": 60.0, "strict_end": False}, interval=600.0
        )
        assert cfg.recovery_slack == 60.0
        assert cfg.strict_end is False


class TestRunSoak:
    def test_small_scenario_clean(self, tmp_path):
        trace = tmp_path / "soak.jsonl"
        report = tmp_path / "report.json"
        scenario = ScenarioSpec.from_dict(dict(SMALL))
        outcome = run_soak(
            scenario, trace_out=str(trace), report_out=str(report)
        )
        assert outcome.ok, [v.message for v in outcome.violations]
        assert outcome.report["ok"] is True
        assert outcome.report["scenario"] == "unit-soak"
        # all three artifacts exist and agree
        assert trace.exists() and report.exists()
        assert outcome.manifest_path is not None
        manifest = json.loads(open(outcome.manifest_path).read())
        assert manifest["seed"] == 3
        on_disk = json.loads(report.read_text())
        assert on_disk["ok"] is True
        # the planned node-1 crash made it into the stream
        kinds = outcome.checker.counts
        assert kinds["node_failed"] >= 1
        assert kinds["run_completed"] == 1

    def test_drill_jobs_accounted(self):
        spec = dict(SMALL)
        spec["drill"] = {"crash_point": "after_teardown", "jobs": 2, "steps": 3}
        outcome = run_soak(ScenarioSpec.from_dict(spec))
        assert outcome.ok, [v.message for v in outcome.violations]
        accounting = [
            e for e in outcome.events if e["event"] == "run_completed"
        ][0]
        assert "drill-0" in accounting["unfinished"]
        assert accounting["leaked_pods"] == []
        assert accounting["leaked_leases"] == []
        assert accounting["leaked_intents"] == []


class TestSoakCli:
    def _write_scenario(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SMALL))
        return str(path)

    def test_scenario_run_ok(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main(
            [
                "soak",
                "--scenario", self._write_scenario(tmp_path),
                "--trace-out", str(tmp_path / "soak.jsonl"),
                "--report-out", str(report),
            ]
        )
        assert code == 0
        assert json.loads(report.read_text())["ok"] is True
        out = capsys.readouterr().out
        assert "invariants" in out and "FAIL" not in out

    def test_engine_and_seed_overrides(self, tmp_path, capsys):
        code = main(
            [
                "soak",
                "--scenario", self._write_scenario(tmp_path),
                "--engine", "tick",
                "--seed", "11",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "tick"
        assert payload["seed"] == 11

    def test_mode_conflict_exits_2(self, tmp_path, capsys):
        assert main(["soak"]) == 2
        assert (
            main(
                [
                    "soak",
                    "--scenario", self._write_scenario(tmp_path),
                    "--self-test",
                ]
            )
            == 2
        )

    def test_bad_scenario_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"workload": [{"arrivals": "psychic"}]}))
        assert main(["soak", "--scenario", str(path)]) == 2

    def test_check_mode_on_simulate_trace(self, tmp_path, capsys):
        trace = tmp_path / "sim.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--policy", "optimus",
                    "--jobs", "3",
                    "--seed", "4",
                    "--trace-out", str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["soak", "--check", str(trace)]) == 0
        assert "invariants: ok" in capsys.readouterr().out

    def test_check_mode_flags_violation(self, tmp_path, capsys):
        trace = tmp_path / "torn.jsonl"
        events = [
            {"seq": 0, "time": 0.0, "event": "job_arrived", "job_id": "a"},
            {"seq": 1, "time": 9.0, "event": "job_completed", "job_id": "ghost"},
        ]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert main(["soak", "--check", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "INVARIANT VIOLATED" in out
        assert "ghost" in out

    def test_self_test_mode(self, capsys):
        assert main(["soak", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "baseline-clean" in out
        assert "dropped-completion" in out
