"""Leader election, fencing tokens, and the FencedKVStore write guard."""

import pytest

from repro.cluster import cpu_mem
from repro.common.errors import ControllerCrashed, KVStoreError, StaleLeaderError
from repro.faults import CRASH_AFTER_CHECKPOINT, ControllerCrash, CrashPointInjector
from repro.k8s import (
    EPOCH_KEY,
    LEADER_KEY,
    APIServer,
    FencedKVStore,
    KVStore,
    LeaderElection,
    LeaderRecord,
)
from repro.k8s.controller import INTENT_DONE, JobController, JobTarget
from repro.obs import RecordingTracer
from repro.obs.tracer import (
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_WRITE_FENCED,
)


@pytest.fixture
def store():
    return KVStore()


def election(store, name, ttl=2.0, tracer=None):
    return LeaderElection(store, name, ttl=ttl, tracer=tracer)


class TestCampaign:
    def test_first_campaign_wins_epoch_one(self, store):
        a = election(store, "a")
        assert a.campaign(0.0) == 1
        assert a.leading
        assert a.is_leader(0.0)
        assert a.fencing_token == 1
        record = a.current_leader()
        assert record == LeaderRecord("a", 1, record.lease_id)

    def test_live_rival_makes_campaign_back_off(self, store):
        a, b = election(store, "a"), election(store, "b")
        assert a.campaign(0.0) == 1
        assert b.campaign(0.0) is None
        assert not b.leading
        assert b.epoch is None

    def test_campaign_is_idempotent_for_the_reigning_leader(self, store):
        a = election(store, "a")
        assert a.campaign(0.0) == 1
        assert a.campaign(1.0) == 1  # still reigning, same term
        assert int(store.get(EPOCH_KEY)) == 1

    def test_lapsed_leader_is_deposed_and_vacancy_won(self, store):
        tracer = RecordingTracer()
        a = election(store, "a", tracer=tracer)
        b = election(store, "b", tracer=tracer)
        assert a.campaign(0.0) == 1
        # a never renews; at ttl the lease is lapsed and b takes over.
        assert b.campaign(2.0) == 2
        assert b.is_leader(2.0)
        deposed = tracer.of_type(EVENT_LEADER_DEPOSED)
        assert [(e["leader"], e["epoch"]) for e in deposed] == [("a", 1)]

    def test_epochs_strictly_increase_across_terms(self, store):
        epochs = []
        now = 0.0
        for i in range(3):
            candidate = election(store, f"c{i}")
            epochs.append(candidate.campaign(now))
            candidate.resign(now)
            now += 1.0
        assert epochs == [1, 2, 3]

    def test_cas_loser_backs_off_without_leaking_its_scratch_lease(self, store):
        """Two candidates campaign the same tick; exactly one wins.

        The single-threaded store serialises campaigns, so the race is
        staged through a watcher: the instant candidate a mints its epoch
        (the first store write of a campaign), candidate b runs a full
        campaign and claims the vacancy. a's create-only CAS on the
        leader key then loses, and it must back off cleanly.
        """
        a, b = election(store, "a"), election(store, "b")
        interleaved = []

        def rival_interleaves(event):
            # Fire exactly once (b's own campaign also touches the epoch
            # key, and must not re-enter this callback).
            if event.key == EPOCH_KEY and not interleaved:
                interleaved.append(None)
                interleaved[0] = b.campaign(0.0)

        store.watch(EPOCH_KEY, rival_interleaves)
        leases_before = store  # for lease-leak accounting below
        assert a.campaign(0.0) is None
        assert interleaved == [2]  # b re-minted above a's unclaimed epoch
        assert b.is_leader(0.0)
        assert not a.leading
        # a's scratch lease was revoked: only b's election lease survives.
        record = b.current_leader()
        assert record.name == "b"
        assert leases_before.has_lease(record.lease_id)
        assert leases_before.lease_keys(record.lease_id) == [LEADER_KEY]

    def test_validation(self, store):
        with pytest.raises(KVStoreError):
            LeaderElection(store, "", ttl=2.0)
        with pytest.raises(KVStoreError):
            LeaderElection(store, "a", ttl=0.0)


class TestRenewBoundary:
    def test_renew_within_ttl_extends_the_reign(self, store):
        a = election(store, "a", ttl=2.0)
        a.campaign(0.0)
        assert a.renew(1.0)
        assert a.is_leader(2.5)  # renewed at 1.0 -> expires 3.0

    def test_renew_at_exactly_ttl_is_too_late(self, store):
        """The boundary is exact: ``now == grant + ttl`` is already lapsed.

        Otherwise a renew and a rival campaign landing on the same tick
        could both succeed -- a split reign at the boundary.
        """
        tracer = RecordingTracer()
        a = election(store, "a", ttl=2.0, tracer=tracer)
        b = election(store, "b", ttl=2.0, tracer=tracer)
        a.campaign(0.0)
        assert b.campaign(2.0) == 2  # the rival wins the boundary tick...
        assert not a.renew(2.0)  # ...and the old leader's renew fails
        assert not a.leading
        assert b.is_leader(2.0)
        # Both observers trace the dead reign -- b deposing the stale
        # record, a discovering the loss -- and the checker tolerates the
        # duplicate; every entry names a's term.
        deposed = [
            e for e in tracer.of_type(EVENT_LEADER_DEPOSED) if e["epoch"] == 1
        ]
        assert deposed and all(e["leader"] == "a" for e in deposed)
        # a's own side is traced once: a retried renew adds nothing.
        assert not a.renew(2.5)
        assert deposed == [
            e for e in tracer.of_type(EVENT_LEADER_DEPOSED) if e["epoch"] == 1
        ]

    def test_renew_without_a_term_is_false(self, store):
        assert not election(store, "a").renew(0.0)

    def test_resign_drops_the_claim_and_traces_once(self, store):
        tracer = RecordingTracer()
        a = election(store, "a", tracer=tracer)
        a.campaign(0.0)
        a.resign(1.0)
        a.resign(1.5)  # idempotent
        assert store.get(LEADER_KEY) is None
        assert len(tracer.of_type(EVENT_LEADER_DEPOSED)) == 1
        assert not a.leading
        assert a.epoch == 1  # the token survives for post-mortem messages


class TestObservedLeader:
    def test_watch_cache_tracks_the_record(self, store):
        a, b = election(store, "a"), election(store, "b")
        a.campaign(0.0)
        assert b.observed_leader.name == "a"
        a.resign(1.0)
        assert b.observed_leader is None
        b.campaign(1.0)
        assert a.observed_leader == b.current_leader()

    def test_torn_record_is_no_leader(self, store):
        a = election(store, "a")
        store.put(LEADER_KEY, "{not json")
        assert a.observed_leader is None


class TestFencedWrites:
    def test_mutations_pass_while_reigning(self, store):
        a = election(store, "a")
        a.campaign(0.0)
        fenced = FencedKVStore(store, a)
        fenced.put("/x", "1")
        assert fenced.get("/x") == "1"
        assert fenced.delete("/x")
        assert fenced.fenced_writes == 0

    def test_severed_leader_is_fenced_and_learns_it(self, store):
        tracer = RecordingTracer()
        a = election(store, "a", tracer=tracer)
        a.campaign(0.0)
        fenced = FencedKVStore(store, a)
        a.sever(1.0)
        assert a.leading  # the stale belief: nobody told it yet
        with pytest.raises(StaleLeaderError):
            fenced.put("/x", "1")
        assert not a.leading  # the fence is how it finds out
        assert fenced.fenced_writes == 1
        assert store.get("/x") is None
        events = tracer.of_type(EVENT_WRITE_FENCED)
        assert [(e["op"], e["key"]) for e in events] == [("put", "/x")]

    def test_every_mutation_is_guarded(self, store):
        a = election(store, "a")
        a.campaign(0.0)
        fenced = FencedKVStore(store, a)
        lease = fenced.grant_lease(5.0, 0.0)
        a.sever(1.0)
        for call in (
            lambda: fenced.put("/x", "1"),
            lambda: fenced.delete("/x"),
            lambda: fenced.compare_and_swap("/x", None, "1"),
            lambda: fenced.grant_lease(5.0, 1.0),
            lambda: fenced.renew_lease(lease, 1.0),
            lambda: fenced.revoke_lease(lease),
            lambda: fenced.expire_leases(1.0),
        ):
            with pytest.raises(StaleLeaderError):
                call()
        assert fenced.fenced_writes == 7

    def test_reads_pass_through_after_deposition(self, store):
        a = election(store, "a")
        a.campaign(0.0)
        fenced = FencedKVStore(store, a)
        fenced.put("/x", "1")
        a.sever(1.0)
        assert fenced.get("/x") == "1"
        assert fenced.list_prefix("/") and "/x" in fenced
        assert fenced.revision == store.revision

    def test_fencing_never_stacks(self, store):
        a = election(store, "a")
        fenced = FencedKVStore(store, a)
        refenced = FencedKVStore(fenced, a)
        assert refenced.raw is store

    def test_stale_leader_error_is_not_a_kvstore_error(self):
        # The reconcile degradation path absorbs KVStoreError; a fenced
        # write must never be absorbed, exactly like ControllerCrashed.
        assert not issubclass(StaleLeaderError, KVStoreError)


class TestTornIntentReplay:
    def test_zombie_replay_of_a_completed_intent_is_fenced(self, store):
        """A deposed leader replaying a torn intent cannot undo its successor.

        Leader a crashes after checkpointing job j (torn intent). The
        successor b replays and completes the rescale. The zombie a then
        wakes up and tries the same replay through its fenced store: every
        write bounces, and b's completed state is untouched.
        """
        def target_for(workers):
            return JobTarget(
                job_id="j",
                worker_demand=cpu_mem(1, 1),
                ps_demand=cpu_mem(1, 1),
                layout={"n0": (workers, 1)},
            )

        api_a = APIServer(store)
        api_a.register_node("n0", cpu_mem(16, 64))
        a = election(store, "a")
        assert a.campaign(0.0) == 1
        api_a.fence_writes(a)
        controller_a = JobController(
            api_a,
            crash_points=CrashPointInjector(
                [ControllerCrash(CRASH_AFTER_CHECKPOINT, job_id="j")]
            ),
        )
        controller_a.adopt_job("j")
        controller_a.reconcile([target_for(1)], job_progress={"j": 100.0})
        # The rescale 1 -> 2 workers crashes right after the checkpoint:
        # the intent is torn (checkpointed, pods not yet replaced).
        with pytest.raises(ControllerCrashed):
            controller_a.reconcile([target_for(2)], job_progress={"j": 200.0})

        # The successor deposes the lapsed reign and replays the intent.
        b = election(store, "b")
        assert b.campaign(2.0) == 2
        api_b = APIServer(store)
        api_b.fence_writes(b)
        controller_b = JobController(api_b)
        replayed = list(controller_b.replay_intents())
        assert [job_id for job_id, _, _ in replayed] == ["j"]
        assert controller_b.list_intents()["j"].phase == INTENT_DONE
        pods_after_replay = sorted(p.name for p in api_b.list_pods())

        # The zombie wakes up. Replaying the already-sealed intent is a
        # read-only no-op (idempotent) ...
        assert list(controller_a.replay_intents()) == []
        # ... but resuming its interrupted rescale means *writing*, and
        # the very first write bounces off the fence.
        with pytest.raises(StaleLeaderError):
            controller_a.reconcile([target_for(2)], job_progress={"j": 200.0})
        assert api_a.store.fenced_writes > 0
        assert controller_b.list_intents()["j"].phase == INTENT_DONE
        assert sorted(p.name for p in api_b.list_pods()) == pods_after_replay
