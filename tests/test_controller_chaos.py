"""Controller crash-point chaos: kill the control plane at every named
point of the checkpoint → teardown → relaunch cycle and prove the
store-driven recovery converges (§5.5).

Convergence means: the desired pods run, no pod is orphaned, every node's
allocation equals the sum of its bound pods' demands, and the job lost at
most one scheduling interval of progress.

``CHAOS_SEED`` (CI matrix) varies the job mix; ``CHAOS_CRASH_POINT``
restricts the parametrized crash point so the CI matrix can fan the four
points out across workers.
"""

import os

import pytest

from repro.cluster import cpu_mem
from repro.common.errors import ControllerCrashed
from repro.deploy import ControlLoop
from repro.faults import (
    RECONCILE_CRASH_POINTS,
    ControllerCrash,
    CrashPointInjector,
)
from repro.k8s import (
    INTENT_DONE,
    APIServer,
    JobController,
    JobTarget,
)
from repro.core.allocation import TaskAllocation
from repro.schedulers import JobView, Scheduler, SchedulingDecision
from repro.workloads import StepTimeModel, make_job

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
_POINT_FILTER = os.environ.get("CHAOS_CRASH_POINT")
ACTIVE_POINTS = (
    [p for p in RECONCILE_CRASH_POINTS if p == _POINT_FILTER]
    if _POINT_FILTER
    else list(RECONCILE_CRASH_POINTS)
)

DEMAND = cpu_mem(2, 4)


def fresh_api(n=3):
    api = APIServer()
    for i in range(n):
        api.register_node(f"n{i}", cpu_mem(16, 64))
    return api


def target(job_id, layout):
    return JobTarget(
        job_id=job_id, worker_demand=DEMAND, ps_demand=DEMAND, layout=layout
    )


def assert_converged(api, expected_layouts):
    """The §5.5 convergence invariants, checked against the API server."""
    pods = api.list_pods()
    # 1. No orphans: every pod belongs to an expected job.
    assert {p.job_id for p in pods} <= set(expected_layouts)
    # 2. Each job runs exactly its desired layout.
    for job_id, layout in expected_layouts.items():
        observed: dict = {}
        for pod in api.list_pods(job_id=job_id):
            assert pod.bound, f"unbound pod {pod.name}"
            counts = observed.setdefault(pod.node, [0, 0])
            counts[0 if pod.role == "worker" else 1] += 1
        live = {s: (nw, np_) for s, (nw, np_) in layout.items() if nw or np_}
        assert {s: tuple(c) for s, c in observed.items()} == live
    # 3. No double-allocated capacity: node accounting matches bound pods.
    for node in api.list_nodes():
        bound = sum(
            (p.demand for p in pods if p.node == node.name),
            start=cpu_mem(0, 0),
        )
        assert dict(node.allocated.items()) == dict(bound.items())
        assert node.allocated.fits_within(node.capacity)


@pytest.mark.parametrize("point", ACTIVE_POINTS)
class TestRescaleCrashRecovery:
    """Crash during a rescale; a fresh controller replays it to completion."""

    def _crash_mid_rescale(self, point):
        api = fresh_api()
        steady = JobController(api)
        steady.adopt_job("a")
        steady.reconcile([target("a", {"n0": (1, 1)})], {"a": 1_000.0})

        doomed = JobController(
            api, crash_points=CrashPointInjector([ControllerCrash(point)])
        )
        new_layout = {"n1": (2, 1)}
        with pytest.raises(ControllerCrashed):
            doomed.reconcile([target("a", new_layout)], {"a": 2_000.0})
        assert [p for p, _ in doomed.crash_points.fired] == [point]
        return api, new_layout

    def test_replay_converges_to_intended_layout(self, point):
        api, new_layout = self._crash_mid_rescale(point)
        survivor = JobController(api)
        outcomes = survivor.replay_intents()
        assert [(j, o) for j, _, o in outcomes] == [("a", "completed")]
        assert_converged(api, {"a": new_layout})
        intent = survivor.load_intent("a")
        assert intent is not None and intent.phase == INTENT_DONE

    def test_progress_loss_bounded_by_one_interval(self, point):
        api, _ = self._crash_mid_rescale(point)
        JobController(api).replay_intents()
        # The pre-cycle checkpoint carried the interval's progress reading.
        assert JobController(api).load_checkpoint("a") == 2_000.0

    def test_replay_twice_changes_nothing(self, point):
        api, new_layout = self._crash_mid_rescale(point)
        survivor = JobController(api)
        survivor.replay_intents()
        pods = {p.name: p.node for p in api.list_pods()}
        assert survivor.replay_intents() == []
        assert {p.name: p.node for p in api.list_pods()} == pods
        assert_converged(api, {"a": new_layout})


@pytest.mark.parametrize(
    "point", [p for p in ACTIVE_POINTS if p in RECONCILE_CRASH_POINTS[:2]]
)
class TestTeardownCrashRecovery:
    """Crash while tearing a departing job down to zero pods."""

    def test_replay_finishes_the_teardown(self, point):
        api = fresh_api()
        steady = JobController(api)
        steady.adopt_job("a")
        steady.reconcile([target("a", {"n0": (1, 1)})], {"a": 1_000.0})

        doomed = JobController(
            api, crash_points=CrashPointInjector([ControllerCrash(point)])
        )
        with pytest.raises(ControllerCrashed):
            doomed.reconcile([], {"a": 2_000.0})

        survivor = JobController(api)
        outcomes = survivor.replay_intents()
        assert [(j, o) for j, _, o in outcomes] == [("a", "torn_down")]
        assert api.list_pods(job_id="a") == []
        assert survivor.managed_jobs() == set()
        assert_converged(api, {})
        # The checkpoint outlives the job (a resume restores from it).
        assert survivor.load_checkpoint("a") == 2_000.0


class RotatingScheduler(Scheduler):
    """Deterministically moves each job between layouts every interval, so
    every step is a rescale and every crash point gets exercised. The seed
    offsets the rotation (the CI chaos matrix varies it)."""

    name = "rotating"

    def __init__(self, seed=0):
        self.calls = seed

    def schedule(self, cluster, jobs):
        shapes = [
            {"n0": (1, 1)},
            {"n1": (2, 1)},
            {"n2": (1, 1), "n3": (1, 0)},
        ]
        self.calls += 1
        allocations, layouts = {}, {}
        for offset, job in enumerate(jobs):
            layout = shapes[(self.calls + offset) % len(shapes)]
            layouts[job.job_id] = layout
            allocations[job.job_id] = TaskAllocation(
                sum(nw for nw, _ in layout.values()),
                sum(np_ for _, np_ in layout.values()),
            )
        return SchedulingDecision(allocations=allocations, layouts=layouts)


@pytest.mark.parametrize("point", ACTIVE_POINTS)
def test_control_loop_crash_and_recover_end_to_end(point):
    """The full loop: schedule, crash at the point, restart a fresh loop
    over the same store, recover, and keep scheduling."""
    specs = [
        make_job("seq2seq", job_id="job-0"),
        make_job("resnet-50", job_id="job-1"),
    ]
    truths = {s.job_id: StepTimeModel(s.profile, "sync") for s in specs}
    progress = {s.job_id: 0.0 for s in specs}

    def views():
        return [
            JobView(
                spec=spec,
                remaining_steps=max(50_000.0 - progress[spec.job_id], 1_000.0),
                speed=lambda p, w, t=truths[spec.job_id]: t.speed(p, w),
                observation_count=100,
            )
            for spec in specs
        ]

    api = fresh_api(4)
    scheduler = RotatingScheduler(seed=CHAOS_SEED)
    loop = ControlLoop(
        api,
        scheduler,
        crash_points=CrashPointInjector([ControllerCrash(point)]),
    )
    crashed = False
    for _ in range(5):
        try:
            loop.step(views(), progress=dict(progress))
        except ControllerCrashed:
            crashed = True
            # Restart: same store and scheduler, fresh loop; the clock
            # resumes where the dead incarnation stopped.
            loop = ControlLoop(
                api, scheduler, start_step=loop.step_index
            )
            recovered = loop.recover()
            assert set(recovered) == {s.job_id for s in specs}
            for job_id, steps in recovered.items():
                # ≤ one interval of progress lost.
                assert progress[job_id] - steps <= 500.0
                progress[job_id] = max(progress[job_id], steps)
            loop.step(views(), progress=dict(progress))
        for spec in specs:
            progress[spec.job_id] += 500.0

    assert crashed, f"crash point {point} never fired"
    # Converged: every pod belongs to a live job on consistent capacity.
    layouts = {}
    for spec in specs:
        observed: dict = {}
        for pod in api.list_pods(job_id=spec.job_id):
            counts = observed.setdefault(pod.node, [0, 0])
            counts[0 if pod.role == "worker" else 1] += 1
        layouts[spec.job_id] = {s: tuple(c) for s, c in observed.items()}
    assert_converged(api, layouts)
    # And the store holds no unfinished intents.
    assert all(
        i.phase == INTENT_DONE
        for i in loop.controller.list_intents().values()
    )
