"""Hot/standby failover drills and the election trace invariants."""

import json

import pytest

from repro.deploy import ControlLoop, FailoverConfig, run_failover_drill
from repro.faults import (
    CRASH_AFTER_ELECTED,
    CRASH_BEFORE_CAMPAIGN,
    CRASH_MID_STEP_DEPOSED,
)
from repro.k8s import APIServer, KVStore, LeaderElection
from repro.obs.tracer import (
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_WRITE_FENCED,
)
from repro.schedulers import make_scheduler
from repro.soak import CheckerConfig, InvariantChecker

SEEDS = (0, 1, 2)

KILL_MODES = (
    None,  # silent death
    CRASH_MID_STEP_DEPOSED,
    CRASH_BEFORE_CAMPAIGN,
    CRASH_AFTER_ELECTED,
    "after_checkpoint",  # torn-intent reconcile crash
)


class TestFailoverDrill:
    @pytest.mark.parametrize("crash_point", KILL_MODES)
    def test_every_kill_mode_takes_over_cleanly(self, crash_point):
        outcome = run_failover_drill(
            FailoverConfig(seed=0, crash_point=crash_point, kills=1)
        )
        assert outcome.ok, outcome.checker.violations
        assert outcome.leaked_pods == []
        assert outcome.leaked_leases == []
        assert outcome.leaked_intents == []
        bound = 2.0 * outcome.config.lease_ttl
        assert outcome.takeover_latencies
        assert all(lat <= bound for lat in outcome.takeover_latencies)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_three_seed_acceptance_drill(self, seed):
        """The PR's acceptance gate: zero violations across three seeds."""
        outcome = run_failover_drill(
            FailoverConfig(
                seed=seed, crash_point=CRASH_MID_STEP_DEPOSED, kills=2
            )
        )
        assert outcome.ok, outcome.checker.violations
        assert not (
            outcome.leaked_pods or outcome.leaked_leases or outcome.leaked_intents
        )
        # Every deposed-mid-step leader must hit the fence at least once.
        assert outcome.fenced_writes > 0
        assert all(
            lat <= 2.0 * outcome.config.lease_ttl
            for lat in outcome.takeover_latencies
        )

    def test_trace_carries_the_election_story(self):
        outcome = run_failover_drill(
            FailoverConfig(seed=0, crash_point=CRASH_MID_STEP_DEPOSED, kills=1)
        )
        elected = [e for e in outcome.events if e["event"] == EVENT_LEADER_ELECTED]
        deposed = [e for e in outcome.events if e["event"] == EVENT_LEADER_DEPOSED]
        fenced = [e for e in outcome.events if e["event"] == EVENT_WRITE_FENCED]
        # One elected event per minted epoch, strictly increasing.
        assert [e["epoch"] for e in elected] == list(
            range(1, outcome.final_epoch + 1)
        )
        assert {e["epoch"] for e in deposed} == set(
            range(1, outcome.final_epoch + 1)
        )
        assert fenced and all(e["leader"] == "ctrl-0" for e in fenced)
        assert len(fenced) == outcome.fenced_writes

    def test_trace_out_writes_jsonl(self, tmp_path):
        path = tmp_path / "failover.jsonl"
        outcome = run_failover_drill(
            FailoverConfig(seed=0, kills=1), trace_out=str(path)
        )
        lines = path.read_text().splitlines()
        assert len(lines) == len(outcome.events)
        assert json.loads(lines[-1])["event"] == "run_completed"

    def test_report_carries_the_gate_metrics(self):
        outcome = run_failover_drill(FailoverConfig(seed=0, kills=1))
        extra = outcome.report
        assert extra["drill"] == "failover"
        assert extra["takeover_latencies"] == outcome.takeover_latencies
        assert extra["stats"]["leader_terms"] == outcome.final_epoch


class TestStandbyTick:
    def test_standby_idles_behind_a_live_leader(self):
        store = KVStore()
        leader = ControlLoop(
            APIServer(store),
            make_scheduler("optimus"),
            election=LeaderElection(store, "a", ttl=2.0),
        )
        standby = ControlLoop(
            APIServer(store),
            make_scheduler("optimus"),
            election=LeaderElection(store, "b", ttl=2.0),
        )
        assert leader.standby_tick(0.0) is not None  # bootstrap win
        assert leader.role == "leader"
        for tick in (0.0, 1.0):
            assert standby.standby_tick(tick) is None
            assert leader.standby_tick(tick) is None  # already leading: renews
        assert standby.role == "standby"

    def test_standby_takes_over_after_lease_lapse(self):
        store = KVStore()
        leader = ControlLoop(
            APIServer(store),
            make_scheduler("optimus"),
            election=LeaderElection(store, "a", ttl=2.0),
        )
        standby = ControlLoop(
            APIServer(store),
            make_scheduler("optimus"),
            election=LeaderElection(store, "b", ttl=2.0),
        )
        assert leader.standby_tick(0.0) is not None
        # The leader goes silent; at ttl the standby's poll wins.
        assert standby.standby_tick(1.0) is None
        recovered = standby.standby_tick(2.0)
        assert recovered is not None  # empty dict == nothing to re-adopt
        assert standby.role == "leader"
        assert standby.election.epoch == 2


class TestElectionInvariants:
    """Unit streams for the checker's three new invariants."""

    def _check(self, events, failover_bound=None, strict_end=False):
        checker = InvariantChecker(
            CheckerConfig(failover_bound=failover_bound, strict_end=strict_end)
        )
        seq = 0
        for time, event, fields in events:
            checker.observe({"seq": seq, "time": time, "event": event, **fields})
            seq += 1
        checker.finish()
        return checker

    def test_clean_succession_is_ok(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (5.0, "leader_deposed", {"leader": "a", "epoch": 1}),
                (6.0, "leader_elected", {"leader": "b", "epoch": 2}),
            ],
            failover_bound=4.0,
        )
        assert checker.ok
        assert checker.stats()["leader_terms"] == 2
        assert checker.stats()["max_epoch"] == 2

    def test_dual_leader_is_flagged(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (1.0, "leader_elected", {"leader": "b", "epoch": 2}),
            ]
        )
        assert [v.invariant for v in checker.violations] == ["dual-leader"]

    def test_epoch_regression_is_flagged(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 2}),
                (1.0, "leader_deposed", {"leader": "a", "epoch": 2}),
                (2.0, "leader_elected", {"leader": "b", "epoch": 1}),
            ]
        )
        assert [v.invariant for v in checker.violations] == ["epoch-regression"]

    def test_duplicate_deposition_is_tolerated(self):
        # Both the successor and the old leader trace the dead reign.
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (5.0, "leader_deposed", {"leader": "a", "epoch": 1}),
                (5.0, "leader_deposed", {"leader": "a", "epoch": 1}),
                (5.0, "leader_elected", {"leader": "b", "epoch": 2}),
            ]
        )
        assert checker.ok

    def test_overdue_failover_is_flagged_mid_stream(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (2.0, "leader_deposed", {"leader": "a", "epoch": 1}),
                (10.0, "interval_tick", {}),  # vacancy dragging on...
                (11.0, "leader_elected", {"leader": "b", "epoch": 2}),
            ],
            failover_bound=4.0,
        )
        assert [v.invariant for v in checker.violations] == ["failover-overdue"]

    def test_vacancy_past_bound_at_end_of_stream(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (2.0, "leader_deposed", {"leader": "a", "epoch": 1}),
                (20.0, "interval_tick", {}),
            ],
            failover_bound=4.0,
            strict_end=True,
        )
        assert "failover-overdue" in [v.invariant for v in checker.violations]

    def test_final_resign_within_bound_is_ok(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (9.0, "leader_deposed", {"leader": "a", "epoch": 1}),
            ],
            failover_bound=4.0,
            strict_end=True,
        )
        assert checker.ok

    def test_voluntary_resign_never_starts_the_failover_clock(self):
        # A clean shutdown leaves the seat vacant on purpose; the clock
        # jumping far past the resign (e.g. the scenario's terminal
        # accounting event at the horizon) must not flag it.
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (
                    5.0,
                    "leader_deposed",
                    {"leader": "a", "epoch": 1, "reason": "resign"},
                ),
                (5000.0, "interval_tick", {}),
            ],
            failover_bound=4.0,
            strict_end=True,
        )
        assert checker.ok

    def test_fenced_writes_are_stats_not_violations(self):
        checker = self._check(
            [
                (0.0, "leader_elected", {"leader": "a", "epoch": 1}),
                (2.0, "leader_deposed", {"leader": "a", "epoch": 1}),
                (
                    2.0,
                    "write_fenced",
                    {"leader": "a", "epoch": 1, "op": "put", "key": "/x"},
                ),
                (2.0, "leader_elected", {"leader": "b", "epoch": 2}),
            ],
            failover_bound=4.0,
        )
        assert checker.ok
        assert checker.stats()["fenced_writes"] == 1


class TestScenarioIntegration:
    def test_soak_scenario_with_failover_drill(self, tmp_path):
        from repro.sim.soak import load_scenario, run_soak

        spec = {
            "name": "failover-mini",
            "seed": 0,
            "servers": 4,
            "horizon": 4000,
            "interval": 200,
            "workload": [{"arrivals": "uniform", "jobs": 2, "window": 400}],
            "drill": {
                "kind": "failover",
                "kills": 2,
                "crash_point": "mid_step_deposed",
                "lease_ttl": 2.0,
            },
            "checker": {"failover_bound": 4.0},
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        outcome = run_soak(load_scenario(str(path)))
        assert outcome.ok, outcome.violations
        stats = outcome.checker.stats()
        assert stats["leader_terms"] >= 3  # bootstrap + one per kill
        assert stats["fenced_writes"] > 0
