"""Tests for the simulate/scalability CLI subcommands."""

import json

import pytest

from repro.cli import build_parser, main


class TestSimulateCommand:
    ARGS = [
        "simulate",
        "--jobs", "2",
        "--servers", "4",
        "--window", "600",
        "--estimator", "oracle",
        "--seed", "5",
    ]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "average JCT" in out
        assert "running tasks over time" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "optimus"
        assert len(data["jobs"]) == 2

    def test_other_scheduler(self, capsys):
        assert main(self.ARGS + ["--scheduler", "drf", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "drf"

    def test_arrival_processes(self, capsys):
        assert main(self.ARGS + ["--arrivals", "google", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["jobs"]

    def test_background_load(self, capsys):
        args = self.ARGS + [
            "--background", "constant", "--background-fraction", "0.4", "--json",
        ]
        assert main(args) == 0
        assert json.loads(capsys.readouterr().out)["summary"]["finished"] >= 1

    def test_partition_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--partition", "roundrobin"])


class TestScalabilityCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["scalability", "--nodes", "200", "--job-counts", "50"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "seconds" in out
        assert "200" in out

    def test_multiple_scales(self, capsys):
        code = main(
            ["scalability", "--nodes", "100", "200", "--job-counts", "20", "40"]
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 4  # header + rule + 2 data rows
