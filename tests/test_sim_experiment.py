"""Tests for the experiment harness and metrics aggregation."""

import math

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import SimulationError
from repro.sim import SimConfig, compare_schedulers, normalized, run_repeats
from repro.sim.experiment import format_comparison
from repro.sim.metrics import JobRecord, SimulationResult, TimeSlot, aggregate_results
from repro.workloads import uniform_arrivals


def cluster_factory():
    return Cluster.homogeneous(6, cpu_mem(16, 64))


def workload(repeat):
    return uniform_arrivals(
        num_jobs=3,
        window=600,
        seed=100 + repeat,
        models=["cnn-rand", "dssm"],
    )


CONFIG = SimConfig(seed=1, estimator_mode="oracle")


class TestRunRepeats:
    def test_aggregates(self):
        stats = run_repeats(cluster_factory, "optimus", workload, CONFIG, repeats=2)
        assert stats.runs == 2
        assert len(stats.results) == 2
        assert stats.average_jct > 0
        assert stats.makespan > 0

    def test_repeats_use_different_workloads(self):
        stats = run_repeats(cluster_factory, "optimus", workload, CONFIG, repeats=2)
        a, b = stats.results
        assert {j for j in a.jobs} == {j for j in b.jobs}  # same ids by index
        assert a.average_jct != b.average_jct

    def test_invalid_repeats(self):
        with pytest.raises(SimulationError):
            run_repeats(cluster_factory, "optimus", workload, CONFIG, repeats=0)


class TestCompareAndNormalize:
    @pytest.fixture(scope="class")
    def stats(self):
        return compare_schedulers(
            cluster_factory,
            ["optimus", "drf"],
            workload,
            config=CONFIG,
            repeats=1,
        )

    def test_same_workload_for_all(self, stats):
        opt = stats["optimus"].results[0]
        drf = stats["drf"].results[0]
        assert set(opt.jobs) == set(drf.jobs)

    def test_normalized_baseline_is_one(self, stats):
        norm = normalized(stats, baseline="optimus")
        assert norm["optimus"]["jct"] == pytest.approx(1.0)
        assert norm["optimus"]["makespan"] == pytest.approx(1.0)

    def test_normalized_missing_baseline(self, stats):
        with pytest.raises(SimulationError):
            normalized(stats, baseline="tetris")

    def test_format_comparison(self, stats):
        table = format_comparison(stats, baseline="optimus")
        assert "optimus" in table and "drf" in table
        assert "JCT" in table


def record(job_id, arrival, completion):
    return JobRecord(
        job_id=job_id,
        model="cnn-rand",
        mode="sync",
        arrival_time=arrival,
        completion_time=completion,
        total_steps=100,
        scaling_time=10,
        num_scalings=1,
        chunks_moved=0,
    )


def result(records, name="test"):
    return SimulationResult(
        scheduler_name=name,
        jobs={r.job_id: r for r in records},
        timeline=[],
        interval=600,
        seed=0,
    )


class TestMetrics:
    def test_average_jct(self):
        res = result([record("a", 0, 100), record("b", 50, 250)])
        assert res.average_jct == pytest.approx(150.0)

    def test_jct_std(self):
        res = result([record("a", 0, 100), record("b", 0, 300)])
        assert res.jct_std == pytest.approx(100.0)

    def test_makespan(self):
        res = result([record("a", 10, 100), record("b", 50, 400)])
        assert res.makespan == pytest.approx(390.0)

    def test_unfinished_job_inf_makespan(self):
        res = result([record("a", 0, 100), record("b", 0, None)])
        assert res.makespan == math.inf
        assert not res.all_finished
        assert res.average_jct == pytest.approx(100.0)  # over finished only

    def test_nothing_finished(self):
        res = result([record("a", 0, None)])
        assert res.average_jct == math.inf

    def test_total_scaling_time(self):
        res = result([record("a", 0, 100), record("b", 0, 100)])
        assert res.total_scaling_time == 20

    def test_empty_jobs_rejected(self):
        with pytest.raises(SimulationError):
            result([])

    def test_summary_keys(self):
        res = result([record("a", 0, 100)])
        summary = res.summary()
        assert {"average_jct", "makespan", "finished", "worker_utilization"} <= set(
            summary
        )


class TestTimeSlot:
    def test_utilization_ratios(self):
        slot = TimeSlot(
            time=0,
            running_jobs=1,
            running_tasks=4,
            allocated_cpu=20,
            busy_worker_cpu=5,
            busy_ps_cpu=2,
            allocated_worker_cpu=10,
            allocated_ps_cpu=10,
        )
        assert slot.worker_utilization == pytest.approx(0.5)
        assert slot.ps_utilization == pytest.approx(0.2)

    def test_zero_allocation(self):
        slot = TimeSlot(0, 0, 0, 0, 0, 0, 0, 0)
        assert slot.worker_utilization == 0.0
        assert slot.ps_utilization == 0.0


class TestAggregateResults:
    def test_mean_and_std(self):
        a = result([record("x", 0, 100)])
        b = result([record("x", 0, 300)])
        agg = aggregate_results([a, b])
        assert agg["average_jct"] == pytest.approx(200.0)
        assert agg["jct_std"] == pytest.approx(100.0)
        assert agg["runs"] == 2

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_results([])


class TestRichMetrics:
    def make_result(self):
        return result(
            [
                JobRecord("a", "cnn-rand", "sync", 0, 100, 1, 0, 0, 0),
                JobRecord("b", "cnn-rand", "async", 0, 200, 1, 0, 0, 0),
                JobRecord("c", "resnet-50", "sync", 0, 400, 1, 0, 0, 0),
                JobRecord("d", "resnet-50", "sync", 100, 900, 1, 0, 0, 0),
            ]
        )

    def test_percentiles(self):
        res = self.make_result()
        assert res.jct_percentile(0) == 100
        assert res.jct_percentile(100) == 800
        assert res.jct_percentile(50) == pytest.approx(300.0)

    def test_percentile_validation(self):
        with pytest.raises(SimulationError):
            self.make_result().jct_percentile(101)

    def test_percentile_no_finished_jobs(self):
        res = result([record("x", 0, None)])
        assert res.jct_percentile(50) == math.inf

    def test_jct_by_model(self):
        by_model = self.make_result().jct_by_model()
        assert by_model["cnn-rand"] == pytest.approx(150.0)
        assert by_model["resnet-50"] == pytest.approx(600.0)

    def test_jct_by_mode(self):
        by_mode = self.make_result().jct_by_mode()
        assert by_mode["async"] == pytest.approx(200.0)
        assert by_mode["sync"] == pytest.approx(433.333, rel=1e-3)


class TestSchedulerKwargs:
    def test_run_repeats_passes_scheduler_kwargs(self):
        stats = run_repeats(
            cluster_factory,
            "optimus",
            workload,
            CONFIG,
            repeats=1,
            scheduler_kwargs={"priority_factor": 0.9, "rescale_threshold": 1.0},
        )
        assert stats.results[0].all_finished

    def test_compare_with_per_scheduler_kwargs(self):
        stats = compare_schedulers(
            cluster_factory,
            ["optimus"],
            workload,
            config=CONFIG,
            repeats=1,
            scheduler_kwargs={"optimus": {"rescale_threshold": 2.0}},
        )
        assert stats["optimus"].average_jct > 0
