"""The event-heap engine core and the incremental allocator.

Two equivalence contracts are pinned here:

* :class:`~repro.sim.events.EventDrivenSimulation` must produce results
  bit-identical to the fixed-tick loop on the same seeded trace -- both
  engines drive the same ``_process_interval`` body and consume the RNG
  identically, so every per-job outcome (completion time, steps,
  crash-induced restarts) must match exactly, across seeds and with
  faults injected.
* The heap-based incremental ``allocate`` (candidate completion times
  carried in heap entries, vectorized evaluation) must grant exactly what
  a from-scratch reference -- same greedy control flow, but recomputing
  :func:`~repro.core.allocation._marginal_gain` fresh at every push --
  would grant.
"""

from __future__ import annotations

import heapq
import itertools
import random

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.cluster.resources import ResourceVector
from repro.core.allocation import (
    AllocationRequest,
    TaskAllocation,
    _marginal_gain,
    allocate,
)
from repro.faults.config import FaultConfig
from repro.obs import MetricsRegistry
from repro.schedulers import make_scheduler
from repro.sim import ENGINES, SimConfig, default_engine, simulate
from repro.workloads import make_job, uniform_arrivals

SEEDS = (3, 11, 42)

FAULTS = FaultConfig(node_mtbf=40_000.0, task_crash_rate=2e-5)


def run_one(engine, seed, faults=None, metrics=None, workload=None):
    workload = workload or uniform_arrivals(num_jobs=8, window=8_000, seed=seed)
    config = SimConfig(seed=seed, faults=faults or FaultConfig())
    return simulate(
        Cluster.homogeneous(10, cpu_mem(16, 80)),
        make_scheduler("optimus"),
        workload,
        config,
        metrics=metrics,
        engine=engine,
    )


def job_fingerprints(result):
    """Every per-job outcome that must be identical across engines."""
    return {
        job_id: (
            record.completion_time,
            record.total_steps,
            record.num_restarts,
            record.num_scalings,
            record.steps_lost,
        )
        for job_id, record in result.jobs.items()
    }


def completion_order(result):
    return sorted(
        (record.completion_time, job_id)
        for job_id, record in result.jobs.items()
        if record.completion_time is not None
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_fault_free(self, seed):
        tick = run_one("tick", seed)
        event = run_one("event", seed)
        assert job_fingerprints(tick) == job_fingerprints(event)
        assert completion_order(tick) == completion_order(event)
        assert tick.average_jct == event.average_jct

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_under_faults(self, seed):
        """Node crashes and task crashes replay identically: both engines
        consume the fault RNG in the same order."""
        tick = run_one("tick", seed, faults=FAULTS)
        event = run_one("event", seed, faults=FAULTS)
        assert job_fingerprints(tick) == job_fingerprints(event)
        # The fault config is hot enough that restarts actually occur on
        # at least one seed; the assertion above would vacuously pass on
        # a config that never fires.
        assert tick.average_jct == event.average_jct

    def test_faults_actually_fire(self):
        restarts = 0
        for seed in SEEDS:
            result = run_one("event", seed, faults=FAULTS)
            restarts += sum(r.num_restarts for r in result.jobs.values())
        assert restarts > 0

    def test_idle_gaps_cost_no_schedule_events(self):
        """Two jobs separated by a huge idle gap: neither engine may grind
        through the empty intervals inside the gap, and both must agree on
        the outcome. (The engines intentionally visit the *same* schedule
        points -- that is what makes them bit-identical -- so the two
        counters must also agree with each other.)"""
        gap = 400_000.0
        workload = [
            make_job("cnn-rand", mode="sync", job_id="early", arrival_time=0.0),
            make_job(
                "cnn-rand", mode="sync", job_id="late", arrival_time=gap
            ),
        ]
        tick_metrics = MetricsRegistry()
        event_metrics = MetricsRegistry()
        tick = run_one("tick", 0, metrics=tick_metrics, workload=list(workload))
        event = run_one("event", 0, metrics=event_metrics, workload=list(workload))
        assert job_fingerprints(tick) == job_fingerprints(event)

        intervals = tick_metrics.snapshot()["counters"]["engine.intervals"]
        schedules = event_metrics.snapshot()["counters"]["sim.events_schedule"]
        # The gap alone spans hundreds of interval boundaries; walking it
        # would show up as hundreds of intervals / schedule events.
        boundaries_in_gap = gap / tick.interval
        assert intervals < boundaries_in_gap / 10
        assert schedules < boundaries_in_gap / 10
        assert schedules == intervals

    def test_event_counters_exported(self):
        metrics = MetricsRegistry()
        run_one("event", 0, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["sim.events_processed"] > 0
        assert counters["sim.events_arrival"] > 0
        assert counters["sim.events_schedule"] > 0


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(Exception, match="engine"):
            run_one("warp", 0)

    def test_engines_tuple(self):
        assert ENGINES == ("tick", "event")

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert default_engine() == "tick"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "event")
        assert default_engine() == "event"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.raises(Exception, match="REPRO_SIM_ENGINE"):
            default_engine()


# -- incremental allocator vs from-scratch reference -------------------------


def reference_allocate(requests, capacity):
    """The pre-optimization greedy: same control flow as ``allocate`` but
    every push recomputes the full marginal gain from scratch through
    scalar ``_marginal_gain`` calls. Tie-breaking (heap counter order) is
    identical by construction, so results must match exactly."""
    used = {}
    cap = dict(capacity.items())

    def fits(demand):
        return all(
            used.get(name, 0.0) + value <= cap.get(name, 0.0) + 1e-9
            for name, value in demand.items()
        )

    def consume(demand):
        for name, value in demand.items():
            used[name] = used.get(name, 0.0) + value

    allocations = {}
    starved = []
    active = {}
    for request in requests:
        starter = request.worker_demand + request.ps_demand
        if fits(starter):
            consume(starter)
            allocations[request.job_id] = TaskAllocation(1, 1)
            active[request.job_id] = request
        else:
            starved.append(request.job_id)

    counter = itertools.count()
    versions = {job_id: 0 for job_id in active}
    heap = []

    def push(job_id):
        gain, kind = _marginal_gain(active[job_id], allocations[job_id], capacity)
        if gain > 0 and gain != float("inf"):
            heapq.heappush(
                heap, (-gain, next(counter), job_id, kind, versions[job_id])
            )

    for job_id in active:
        push(job_id)

    while heap:
        _, _, job_id, kind, version = heapq.heappop(heap)
        if versions[job_id] != version:
            continue
        request = active[job_id]
        alloc = allocations[job_id]
        demand = request.worker_demand if kind == "worker" else request.ps_demand
        if not fits(demand):
            other = request.ps_demand if kind == "worker" else request.worker_demand
            if kind == "worker" and alloc.ps < request.max_ps and fits(other):
                kind, demand = "ps", other
            elif kind == "ps" and alloc.workers < request.max_workers and fits(other):
                kind, demand = "worker", other
            else:
                continue
        consume(demand)
        if kind == "worker":
            alloc = TaskAllocation(alloc.workers + 1, alloc.ps)
        else:
            alloc = TaskAllocation(alloc.workers, alloc.ps + 1)
        allocations[job_id] = alloc
        versions[job_id] += 1
        push(job_id)

    return allocations, tuple(starved)


def random_fleet(rng, num_jobs):
    """Jobs with randomized Eqn-3-shaped speed functions and demands.

    Coefficients are continuous draws, so gain ties across distinct jobs
    have measure zero -- results cannot depend on how ties break."""
    requests = []
    for i in range(num_jobs):
        a = 0.5 + 4.0 * rng.random()
        b = 0.5 + 4.0 * rng.random()
        c = 0.05 * rng.random()
        d = 0.05 * rng.random()

        def speed(p, w, a=a, b=b, c=c, d=d):
            return w / (a + b * w / p + c * w + d * p)

        requests.append(
            AllocationRequest(
                job_id=f"job-{i}",
                remaining_work=1e4 * (1.0 + 9.0 * rng.random()),
                speed=speed,
                worker_demand=cpu_mem(
                    1 + rng.randrange(4), 2 + rng.randrange(8)
                ),
                ps_demand=cpu_mem(1 + rng.randrange(2), 1 + rng.randrange(4)),
                max_workers=2 + rng.randrange(12),
                max_ps=2 + rng.randrange(12),
            )
        )
    return requests


class TestIncrementalAllocatorEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_on_random_fleets(self, seed):
        rng = random.Random(seed)
        num_jobs = 3 + rng.randrange(12)
        requests = random_fleet(rng, num_jobs)
        # Capacity from ample to starving: tight capacity exercises the
        # fits-fallback and starter-starvation paths.
        scale = (4, 16, 60)[seed % 3]
        capacity = ResourceVector(
            {"cpu": float(scale * num_jobs), "memory": float(3 * scale * num_jobs)}
        )
        result = allocate(requests, capacity)
        ref_allocations, ref_starved = reference_allocate(requests, capacity)
        assert result.allocations == ref_allocations
        assert result.starved == ref_starved

    def test_matches_reference_with_vectorized_speed_model(self):
        """The batch path (``predict_many``) must agree with the scalar
        reference on a real fitted model, not just Python lambdas."""
        from repro.core.speed import SpeedEstimator

        estimator = SpeedEstimator(mode="async", global_batch=128.0)
        for p, w in [(1, 1), (1, 2), (2, 2), (2, 4), (3, 6), (4, 8), (4, 12)]:
            estimator.add_sample(p, w, w / (1.0 + 2.0 * w / p + 0.01 * w))
        fn = estimator.speed_function()
        requests = [
            AllocationRequest(
                job_id=f"fit-{i}",
                remaining_work=5e4 * (i + 1),
                speed=fn,
                worker_demand=cpu_mem(2, 4),
                ps_demand=cpu_mem(1, 2),
                max_workers=16,
                max_ps=16,
            )
            for i in range(5)
        ]
        capacity = ResourceVector({"cpu": 120.0, "memory": 260.0})
        result = allocate(requests, capacity)
        ref_allocations, ref_starved = reference_allocate(requests, capacity)
        assert result.allocations == ref_allocations
        assert result.starved == ref_starved

    def test_starvation_and_stop_reason_preserved(self):
        rng = random.Random(7)
        requests = random_fleet(rng, 10)
        tiny = ResourceVector({"cpu": 12.0, "memory": 30.0})
        result = allocate(requests, tiny)
        ref_allocations, ref_starved = reference_allocate(requests, tiny)
        assert result.allocations == ref_allocations
        assert result.starved == ref_starved
        assert len(ref_starved) > 0  # the scenario actually starves jobs
