"""Tests for FlakyKVStore (injection) and RetryingKVStore (recovery)."""

import os

import pytest

from repro.cluster.resources import cpu_mem
from repro.common.errors import FaultInjectionError, KVStoreError, TransientKVError
from repro.common.rand import RandomSource
from repro.common.retry import RetryPolicy
from repro.faults import FlakyKVStore, RetryingKVStore
from repro.k8s import APIServer, PodSpec, pod_name
from repro.k8s.kvstore import KVStore
from repro.obs import MetricsRegistry, RecordingTracer

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def exercise(store, rounds=50):
    """A fixed mixed workload; returns the op-outcome log (True=ok)."""
    log = []
    for i in range(rounds):
        for fn in (
            lambda: store.put(f"k{i % 7}", f"v{i}"),
            lambda: store.get(f"k{i % 7}"),
            lambda: store.delete(f"k{(i + 3) % 7}"),
            lambda: store.list_prefix("k"),
        ):
            try:
                fn()
                log.append(True)
            except TransientKVError:
                log.append(False)
    return log


class TestFlakyKVStore:
    def test_rate_validation(self):
        with pytest.raises(FaultInjectionError):
            FlakyKVStore(error_rate=1.5)
        with pytest.raises(FaultInjectionError):
            FlakyKVStore(error_rate=-0.1)

    def test_zero_rate_is_pure_delegation(self):
        store = FlakyKVStore(error_rate=0.0)
        assert exercise(store) == [True] * 200
        assert store.failures_injected == 0
        assert store.get("k0") is not None

    def test_same_seed_same_failure_sequence(self):
        log_a = exercise(
            FlakyKVStore(error_rate=0.3, seed=RandomSource(CHAOS_SEED))
        )
        log_b = exercise(
            FlakyKVStore(error_rate=0.3, seed=RandomSource(CHAOS_SEED))
        )
        assert log_a == log_b
        assert False in log_a and True in log_a

    def test_failed_put_does_not_mutate(self):
        store = FlakyKVStore(error_rate=1.0)
        with pytest.raises(TransientKVError):
            store.put("key", "value")
        assert len(store) == 0
        assert store.revision == 0

    def test_watch_path_is_reliable(self):
        store = FlakyKVStore(error_rate=1.0)
        events = []
        watch_id = store.watch("k", events.append)
        store.inner.put("k1", "v")  # behind the flaky front
        assert len(events) == 1
        assert store.cancel_watch(watch_id)


class TestRetryingKVStore:
    def test_below_budget_errors_invisible_but_counted(self):
        # error_rate=0.3 with a 12-attempt budget: P(12 consecutive
        # failures) is ~5e-7 per op, so even 200 ops across any seed stay
        # below the budget and no error may escape.
        metrics = MetricsRegistry()
        tracer = RecordingTracer()
        flaky = FlakyKVStore(error_rate=0.3, seed=RandomSource(CHAOS_SEED))
        store = RetryingKVStore(
            flaky, policy=RetryPolicy(max_attempts=12), tracer=tracer, metrics=metrics
        )
        log = exercise(store)
        assert log == [True] * 200
        assert flaky.failures_injected > 0
        retries = metrics.snapshot()["counters"]["kv.retries"]
        assert retries == flaky.failures_injected
        assert len(tracer.of_type("kv_retry")) == retries
        assert tracer.of_type("kv_retry_exhausted") == []

    def test_beyond_budget_raises_kvstore_error_after_max_attempts(self):
        metrics = MetricsRegistry()
        tracer = RecordingTracer()
        flaky = FlakyKVStore(error_rate=1.0)
        policy = RetryPolicy(max_attempts=3)
        store = RetryingKVStore(flaky, policy=policy, tracer=tracer, metrics=metrics)
        with pytest.raises(KVStoreError):
            store.put("key", "value")
        # Documented budget: exactly max_attempts tries, then the error.
        assert flaky.failures_injected == 3
        counters = metrics.snapshot()["counters"]
        assert counters["kv.retry_exhausted"] == 1
        assert counters["kv.retries"] == 2  # attempts 1 and 2 retried
        exhausted = tracer.of_type("kv_retry_exhausted")
        assert len(exhausted) == 1
        assert exhausted[0]["op"] == "put"
        assert exhausted[0]["attempts"] == 3

    def test_retry_events_carry_op_and_attempt(self):
        tracer = RecordingTracer()
        flaky = FlakyKVStore(error_rate=0.5, seed=RandomSource(CHAOS_SEED))
        store = RetryingKVStore(
            flaky, policy=RetryPolicy(max_attempts=10), tracer=tracer
        )
        exercise(store, rounds=20)
        events = tracer.of_type("kv_retry")
        assert events
        for event in events:
            assert event["op"] in {"put", "get", "delete", "list_prefix"}
            assert event["attempt"] >= 1
            assert event["delay"] > 0

    def test_apiserver_workflow_survives_flaky_substrate(self):
        # The §5.5 claim end to end: a full register/create/bind/list cycle
        # on a flaky store completes once retries are in front of it.
        metrics = MetricsRegistry()
        flaky = FlakyKVStore(
            KVStore(), error_rate=0.25, seed=RandomSource(CHAOS_SEED)
        )
        api = APIServer(store=RetryingKVStore(flaky, metrics=metrics))
        api.register_node("n0", cpu_mem(16, 64))
        for index in range(4):
            spec = PodSpec(
                name=pod_name("j1", "worker", index),
                job_id="j1",
                role="worker",
                index=index,
                demand=cpu_mem(2, 4),
            )
            api.create_pod(spec)
            api.bind_pod(spec.name, "n0")
        assert len(api.list_pods(job_id="j1")) == 4
        assert flaky.failures_injected > 0
        assert metrics.snapshot()["counters"]["kv.retries"] > 0

    def test_pass_through_surfaces(self):
        inner = KVStore()
        store = RetryingKVStore(FlakyKVStore(inner, error_rate=0.0))
        store.put("a", "1")
        assert "a" in store
        assert store.get_with_revision("a") == ("1", 1)
        assert store.keys() == ["a"]
        assert len(store) == 1
        assert store.revision == inner.revision
        assert store.compare_and_swap("a", "1", "2")
        assert store.delete("a")
