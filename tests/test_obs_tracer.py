"""Tests for repro.obs.tracer: event schema, ordering, null behaviour."""

import io
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_TYPES,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    read_trace,
)


class TestEventSchema:
    def test_all_event_types_declared(self):
        assert EVENT_TYPES == {
            "job_arrived",
            "allocation_decided",
            "placement_decided",
            "job_rescaled",
            "straggler_detected",
            "job_completed",
            "interval_tick",
            # fault injection & recovery
            "node_failed",
            "node_recovered",
            "task_crashed",
            "job_restarted",
            "kv_retry",
            "kv_retry_exhausted",
            "rescale_rolled_back",
            "checkpoint_missing",
            # crash-consistent control plane (§5.5)
            "node_cordoned",
            "node_lease_renewed",
            "intent_replayed",
            # second-generation observability: spans + estimator telemetry
            "span",
            "estimator_sample",
            "estimator_drift",
            # soak harness: checkpoint audit + terminal run accounting
            "checkpoint_recorded",
            "run_completed",
            # hot/standby HA: leader election + write fencing
            "leader_elected",
            "leader_deposed",
            "write_fenced",
            "node_lease_regrant",
            # scheduler decision ledger (grants / denials / placements)
            "decision",
        }

    def test_emit_builds_typed_payload(self):
        tracer = RecordingTracer()
        event = tracer.emit(EVENT_JOB_ARRIVED, 600.0, job_id="j1", model="vgg-16")
        assert event == {
            "seq": 0,
            "time": 600.0,
            "event": "job_arrived",
            "job_id": "j1",
            "model": "vgg-16",
        }

    def test_unknown_event_type_rejected(self):
        tracer = RecordingTracer()
        with pytest.raises(ConfigurationError):
            tracer.emit("job_exploded", 0.0)

    def test_seq_is_monotonic_and_gapless(self):
        tracer = RecordingTracer()
        for i in range(5):
            tracer.emit(EVENT_INTERVAL_TICK, i * 600.0)
        assert [e["seq"] for e in tracer.events] == [0, 1, 2, 3, 4]
        assert [e["time"] for e in tracer.events] == [0.0, 600.0, 1200.0, 1800.0, 2400.0]


class TestNullTracer:
    def test_disabled_and_falsy(self):
        assert not NULL_TRACER
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_emit_is_a_noop_and_skips_validation(self):
        # The null tracer must never pay for payload construction or
        # validation -- even an invalid event type goes nowhere quietly.
        assert NULL_TRACER.emit("not-an-event", 0.0, junk=object()) is None

    def test_enabled_tracers_are_truthy(self):
        assert RecordingTracer()
        assert JsonlTracer(io.StringIO())


class TestRecordingTracer:
    def test_filters_by_type_and_job(self):
        tracer = RecordingTracer()
        tracer.emit(EVENT_JOB_ARRIVED, 0.0, job_id="a")
        tracer.emit(EVENT_JOB_ARRIVED, 10.0, job_id="b")
        tracer.emit(EVENT_JOB_COMPLETED, 20.0, job_id="a")
        tracer.emit(EVENT_INTERVAL_TICK, 30.0)
        assert [e["job_id"] for e in tracer.of_type(EVENT_JOB_ARRIVED)] == ["a", "b"]
        assert [e["event"] for e in tracer.for_job("a")] == [
            "job_arrived",
            "job_completed",
        ]


class TestJsonlTracer:
    def test_writes_one_json_object_per_line(self):
        stream = io.StringIO()
        tracer = JsonlTracer(stream)
        tracer.emit(EVENT_JOB_ARRIVED, 0.0, job_id="j1")
        tracer.emit(EVENT_JOB_COMPLETED, 600.0, job_id="j1", steps=100.0)
        tracer.close()
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "job_arrived"
        assert parsed[1]["steps"] == 100.0

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.emit(EVENT_JOB_ARRIVED, 0.0, job_id="j1")
            tracer.emit(EVENT_INTERVAL_TICK, 0.0, phases={"fit": 0.25})
        events = read_trace(path)
        assert [e["event"] for e in events] == ["job_arrived", "interval_tick"]
        assert events[1]["phases"] == {"fit": 0.25}

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "job_arrived"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="line 2"):
            read_trace(str(path))
