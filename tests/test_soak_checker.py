"""Unit tests for the streaming trace invariant checker."""

import json

from repro.soak import CheckerConfig, InvariantChecker, Violation, check_events
from repro.soak.checker import check_trace_file


def E(seq, time, event, **fields):
    record = {"seq": seq, "time": time, "event": event}
    record.update(fields)
    return record


def invariants(checker):
    return [v.invariant for v in checker.violations]


def stream(*events, config=None):
    return check_events(list(events), config)


CLEAN = [
    E(0, 0.0, "job_arrived", job_id="a"),
    E(1, 0.0, "allocation_decided", job_id="a", num_worker=2, num_ps=2),
    E(2, 600.0, "job_completed", job_id="a", completion_time=600.0),
]


class TestStreamIntegrity:
    def test_clean_stream_ok(self):
        assert stream(*CLEAN).ok

    def test_seq_regression(self):
        checker = stream(E(5, 0.0, "interval_tick"), E(3, 10.0, "interval_tick"))
        assert invariants(checker) == ["seq-monotonic"]

    def test_seq_duplicate(self):
        checker = stream(E(5, 0.0, "interval_tick"), E(5, 10.0, "interval_tick"))
        assert invariants(checker) == ["seq-monotonic"]

    def test_observe_returns_new_violations(self):
        checker = InvariantChecker()
        assert checker.observe(E(0, 0.0, "job_arrived", job_id="a")) == []
        fresh = checker.observe(E(1, 0.0, "job_arrived", job_id="a"))
        assert [v.invariant for v in fresh] == ["duplicate-arrival"]


class TestJobInvariants:
    def test_unknown_job_completion(self):
        checker = stream(E(0, 0.0, "job_completed", job_id="ghost"))
        assert "unknown-job" in invariants(checker)
        assert checker.violations[0].subject == "ghost"

    def test_unknown_job_other_kinds(self):
        for kind in ("allocation_decided", "task_crashed", "job_restarted",
                     "checkpoint_recorded"):
            checker = stream(E(0, 0.0, kind, job_id="ghost"))
            assert "unknown-job" in invariants(checker), kind

    def test_duplicate_completion(self):
        checker = stream(
            *CLEAN, E(3, 700.0, "job_completed", job_id="a", completion_time=700.0)
        )
        assert invariants(checker) == ["duplicate-completion"]

    def test_lost_job_strict_end(self):
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            config=CheckerConfig(strict_end=True),
        )
        assert invariants(checker) == ["lost-job"]
        assert checker.violations[0].subject == "a"

    def test_unfinished_job_ok_without_strict_end(self):
        assert stream(E(0, 0.0, "job_arrived", job_id="a")).ok

    def test_accounted_unfinished_job_ok(self):
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 600.0, "run_completed", finished=[], unfinished=["a"],
              leaked_pods=[], leaked_leases=[], leaked_intents=[]),
            config=CheckerConfig(strict_end=True, require_accounting=True),
        )
        assert checker.ok

    def test_completion_missing_vs_accounting(self):
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 600.0, "run_completed", finished=["a"], unfinished=[],
              leaked_pods=[], leaked_leases=[], leaked_intents=[]),
        )
        # the phantom completion is also a lost job: arrived, never
        # completed on-stream, not accounted unfinished
        assert invariants(checker) == ["completion-missing", "lost-job"]


class TestNodeInvariants:
    def test_double_failure(self):
        checker = stream(
            E(0, 0.0, "node_failed", server="n0", up_at=100.0),
            E(1, 10.0, "node_failed", server="n0", up_at=110.0),
        )
        assert "node-lifecycle" in invariants(checker)

    def test_recover_without_failure(self):
        checker = stream(E(0, 0.0, "node_recovered", server="n0"))
        assert invariants(checker) == ["node-lifecycle"]

    def test_timely_recovery_ok(self):
        checker = stream(
            E(0, 0.0, "node_failed", server="n0", up_at=100.0),
            E(1, 120.0, "node_recovered", server="n0"),
            config=CheckerConfig(recovery_slack=50.0),
        )
        assert checker.ok

    def test_overdue_recovery_flagged_after_grace_boundary(self):
        # First past-deadline event only arms the grace window; the
        # violation fires when a strictly later timestamp arrives with the
        # outage still open.
        cfg = CheckerConfig(recovery_slack=50.0)
        checker = InvariantChecker(cfg)
        checker.observe(E(0, 0.0, "node_failed", server="n0", up_at=100.0))
        assert checker.observe(E(1, 200.0, "interval_tick")) == []
        fresh = checker.observe(E(2, 300.0, "interval_tick"))
        assert [v.invariant for v in fresh] == ["recovery-overdue"]
        assert fresh[0].subject == "n0"
        # flagged once, not re-flagged per event
        checker.observe(E(3, 400.0, "interval_tick"))
        assert len(checker.violations) == 1

    def test_deferred_recovery_at_grace_boundary_ok(self):
        # Idle-trough deferral: admissions at the resumed boundary precede
        # the recovery; same-timestamp recovery must not be a violation.
        cfg = CheckerConfig(recovery_slack=50.0)
        checker = stream(
            E(0, 0.0, "node_failed", server="n0", up_at=100.0),
            E(1, 7200.0, "job_arrived", job_id="late"),
            E(2, 7200.0, "node_recovered", server="n0"),
            E(3, 7800.0, "job_completed", job_id="late"),
            config=cfg,
        )
        assert checker.ok

    def test_open_outage_at_end_strict(self):
        checker = stream(
            E(0, 0.0, "node_failed", server="n0", up_at=100.0),
            E(1, 5000.0, "interval_tick"),
            E(2, 5000.0, "interval_tick"),
            config=CheckerConfig(recovery_slack=50.0, strict_end=True),
        )
        # grace boundary never passed (no strictly-later event), but
        # strict_end still reports the outage as overdue at stream end
        assert invariants(checker) == ["recovery-overdue"]

    def test_end_of_stream_crash_inside_window_ok(self):
        checker = stream(
            E(0, 0.0, "interval_tick"),
            E(1, 100.0, "node_failed", server="n0", up_at=500.0),
            config=CheckerConfig(recovery_slack=50.0, strict_end=True),
        )
        assert checker.ok


class TestRestartAndCheckpoints:
    def _arrive(self, checker, job="a"):
        checker.observe(E(0, 0.0, "job_arrived", job_id=job))

    def test_negative_rollback(self):
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "job_restarted", job_id="a", steps_lost=-3),
        )
        assert "rollback-negative" in invariants(checker)

    def test_rollback_bound(self):
        cfg = CheckerConfig(rollback_bound=100.0)
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "job_restarted", job_id="a", since_checkpoint=150.0),
            config=cfg,
        )
        assert "rollback-bound" in invariants(checker)

    def test_rollback_bound_doubled_when_checkpoint_lost(self):
        cfg = CheckerConfig(rollback_bound=100.0)
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "job_restarted", job_id="a", since_checkpoint=150.0,
              checkpoint_lost=True),
            config=cfg,
        )
        assert checker.ok

    def test_checkpoint_regression(self):
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "checkpoint_recorded", job_id="a", steps=50),
            E(2, 20.0, "checkpoint_recorded", job_id="a", steps=30),
        )
        assert invariants(checker) == ["checkpoint-monotonic"]

    def test_checkpoint_regress_allowed_after_lost_checkpoint(self):
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "checkpoint_recorded", job_id="a", steps=50),
            E(2, 15.0, "job_restarted", job_id="a", checkpoint_lost=True),
            E(3, 20.0, "checkpoint_recorded", job_id="a", steps=10),
            E(4, 25.0, "checkpoint_recorded", job_id="a", steps=5),
        )
        # one regression forgiven (the post-loss restart), the second not
        assert invariants(checker) == ["checkpoint-monotonic"]

    def test_restart_stall_opt_in(self):
        cfg = CheckerConfig(stall_bound=100.0)
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "job_restarted", job_id="a"),
            E(2, 500.0, "interval_tick"),
            config=cfg,
        )
        assert "restart-stall" in invariants(checker)

    def test_restart_then_allocation_ok(self):
        cfg = CheckerConfig(stall_bound=100.0)
        checker = stream(
            E(0, 0.0, "job_arrived", job_id="a"),
            E(1, 10.0, "job_restarted", job_id="a"),
            E(2, 50.0, "allocation_decided", job_id="a", num_worker=1, num_ps=1),
            E(3, 500.0, "interval_tick"),
            config=cfg,
        )
        assert checker.ok


class TestSpansAndAccounting:
    def test_dangling_span_parent(self):
        checker = stream(E(0, 5.0, "span", span_id=7, parent_id=3, name="child"))
        assert invariants(checker) == ["span-parent-missing"]
        assert checker.violations[0].subject == "3"

    def test_closed_span_tree_ok(self):
        checker = stream(
            E(0, 5.0, "span", span_id=7, parent_id=3, name="child"),
            E(1, 6.0, "span", span_id=3, name="parent"),
        )
        assert checker.ok

    def test_leaks_reported_from_accounting(self):
        checker = stream(
            E(0, 600.0, "run_completed", finished=[], unfinished=[],
              leaked_pods=["pod-1"], leaked_leases=["lease-9"],
              leaked_intents=["intent-2"]),
        )
        assert sorted(invariants(checker)) == [
            "leaked-intent", "leaked-lease", "leaked-pod",
        ]
        subjects = {v.invariant: v.subject for v in checker.violations}
        assert subjects["leaked-pod"] == "pod-1"
        assert subjects["leaked-lease"] == "lease-9"
        assert subjects["leaked-intent"] == "intent-2"

    def test_accounting_required(self):
        checker = stream(
            *CLEAN, config=CheckerConfig(require_accounting=True)
        )
        assert invariants(checker) == ["accounting-missing"]

    def test_duplicate_accounting(self):
        done = E(3, 600.0, "run_completed", finished=["a"], unfinished=[],
                 leaked_pods=[], leaked_leases=[], leaked_intents=[])
        checker = stream(*CLEAN, done, dict(done, seq=4))
        assert invariants(checker) == ["accounting-duplicate"]


class TestReporting:
    def test_report_shape(self):
        checker = stream(*CLEAN)
        report = checker.report(extra={"scenario": "unit"})
        assert report["report_version"] == 1
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["stats"]["jobs_arrived"] == 1
        assert report["scenario"] == "unit"

    def test_violation_to_dict(self):
        violation = Violation("lost-job", "gone", subject="a", seq=3, time=9.0)
        assert violation.to_dict() == {
            "invariant": "lost-job", "message": "gone",
            "subject": "a", "seq": 3, "time": 9.0,
        }

    def test_finish_idempotent(self):
        checker = InvariantChecker(CheckerConfig(strict_end=True))
        checker.observe(E(0, 0.0, "job_arrived", job_id="a"))
        checker.finish()
        checker.finish()
        assert len(checker.violations) == 1

    def test_check_trace_file_counts_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(e) for e in CLEAN]
        path.write_text("\n".join(lines) + '\n{"torn\n')
        checker = check_trace_file(str(path))
        assert checker.ok
        assert checker.counts["_corrupt_lines"] == 1


class TestSelfTest:
    def test_seeded_drops_detected(self):
        from repro.soak import run_selftest

        result = run_selftest()
        assert result["ok"] is True
        cases = {case["name"]: case for case in result["cases"]}
        assert cases["baseline-clean"]["detected"]
        dropped = cases["dropped-completion"]
        assert dropped["detected"]
        assert all(v["subject"] == dropped["subject"] for v in dropped["violations"])
        recovery = cases["dropped-recovery"]
        assert recovery["detected"]
        assert recovery["subject"] == "node-1"
