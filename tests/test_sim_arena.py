"""Tests for the scheduler arena (head-to-head policy runs)."""

import json

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.common.errors import SchedulingError, SimulationError
from repro.sim import SimConfig, format_arena, jain_index, run_arena
from repro.workloads import uniform_arrivals

FAST_MODELS = ["cnn-rand", "dssm", "kaggle-ndsb"]


def tiny_cluster():
    return Cluster.homogeneous(4, cpu_mem(16, 80))


def tiny_trace(seed=1):
    return uniform_arrivals(num_jobs=3, window=600.0, seed=seed, models=FAST_MODELS)


def tiny_arena(policies=("optimus", "oasis"), seed=1, **kwargs):
    return run_arena(
        list(policies),
        tiny_cluster,
        tiny_trace(seed),
        config=SimConfig(seed=seed, estimator_mode="oracle"),
        **kwargs,
    )


class TestJainIndex:
    def test_equal_values_score_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_dominant_value_scores_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_nonfinite(self):
        assert jain_index([]) == 0.0
        assert jain_index([float("inf"), float("nan")]) == 0.0
        assert jain_index([float("inf"), 2.0, 2.0]) == pytest.approx(1.0)

    def test_bounds(self):
        values = [1.0, 7.0, 3.0, 9.0]
        assert 1.0 / len(values) <= jain_index(values) <= 1.0


class TestRunArena:
    def test_deterministic_across_reruns_per_seed(self):
        for seed in (1, 2):
            first = tiny_arena(seed=seed).to_dict()
            second = tiny_arena(seed=seed).to_dict()
            assert json.dumps(first, sort_keys=True) == json.dumps(
                second, sort_keys=True
            )

    def test_report_fields(self):
        report = tiny_arena()
        assert report.baseline == "optimus"
        assert report.jobs == 3 and report.servers == 4
        assert {s.policy for s in report.scores} == {"optimus", "oasis"}
        for score in report.scores:
            assert 0 <= score.finished <= score.jobs
            assert 0.0 <= score.jain_fairness <= 1.0
            assert score.average_jct >= 0.0

    def test_baseline_ratios_are_one(self):
        report = tiny_arena()
        rel = report.relative("optimus")
        assert rel["jct_ratio"] == pytest.approx(1.0)
        assert rel["makespan_ratio"] == pytest.approx(1.0)

    def test_to_dict_is_strict_json(self):
        payload = json.dumps(tiny_arena().to_dict(), allow_nan=False)
        assert "optimus" in payload

    def test_gate_dict_keys(self):
        gate = tiny_arena().gate_dict()
        for policy in ("optimus", "oasis"):
            for suffix in (
                "avg_jct_s",
                "jct_ratio",
                "makespan_ratio",
                "jain_fairness",
                "worker_utilization",
                "jobs_finished",
            ):
                assert f"{policy}_{suffix}" in gate
        assert all(isinstance(v, float) for v in gate.values())

    def test_hybrid_names_sanitised_in_gate(self):
        gate = tiny_arena(policies=("optimus", "srtf+pack")).gate_dict()
        assert "srtf_pack_avg_jct_s" in gate

    def test_explicit_baseline(self):
        report = tiny_arena(baseline="oasis")
        assert report.relative("oasis")["jct_ratio"] == pytest.approx(1.0)

    def test_format_arena_mentions_every_policy(self):
        report = tiny_arena()
        text = format_arena(report)
        assert "optimus" in text and "oasis" in text
        assert "baseline=optimus" in text


class TestArenaErrors:
    def test_empty_policy_list(self):
        with pytest.raises(SimulationError, match="at least one"):
            run_arena([], tiny_cluster, tiny_trace())

    def test_duplicate_policies(self):
        with pytest.raises(SimulationError, match="duplicate"):
            run_arena(["optimus", "optimus"], tiny_cluster, tiny_trace())

    def test_baseline_must_be_raced(self):
        with pytest.raises(SimulationError, match="baseline"):
            tiny_arena(baseline="drf")

    def test_unknown_policy_fails_before_running(self):
        with pytest.raises(SchedulingError, match="definitely-not-a-policy"):
            run_arena(
                ["optimus", "definitely-not-a-policy"],
                tiny_cluster,
                tiny_trace(),
            )

    def test_missing_score_lookup(self):
        report = tiny_arena()
        with pytest.raises(SimulationError, match="no arena score"):
            report.score("drf")
