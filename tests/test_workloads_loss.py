"""Tests for the noisy loss-observation emitter."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import MODEL_ZOO
from repro.workloads.loss import LossEmitter, LossObservation, epoch_averaged


@pytest.fixture
def curve():
    return MODEL_ZOO["seq2seq"].loss


@pytest.fixture
def emitter(curve):
    return LossEmitter(curve, steps_per_epoch=100, seed=3)


class TestTrueLoss:
    def test_scales_by_initial_loss(self, curve):
        emitter = LossEmitter(curve, steps_per_epoch=100, initial_loss=6.0, seed=1)
        assert emitter.true_loss(0) == pytest.approx(6.0)

    def test_decreasing(self, emitter):
        assert emitter.true_loss(0) > emitter.true_loss(5000)


class TestObserve:
    def test_observation_fields(self, emitter):
        obs = emitter.observe(42)
        assert isinstance(obs, LossObservation)
        assert obs.step == 42
        assert obs.loss > 0

    def test_noise_reproducible_under_seed(self, curve):
        a = LossEmitter(curve, 100, seed=9).observe_range(0, 50)
        b = LossEmitter(curve, 100, seed=9).observe_range(0, 50)
        assert [o.loss for o in a] == [o.loss for o in b]

    def test_noise_close_to_truth_on_average(self, curve):
        emitter = LossEmitter(curve, 100, noise_std=0.01, outlier_rate=0.0, seed=5)
        observed = [emitter.observe(10).loss for _ in range(300)]
        assert np.mean(observed) == pytest.approx(emitter.true_loss(10), rel=0.01)

    def test_outliers_are_spikes(self, curve):
        emitter = LossEmitter(curve, 100, noise_std=0.0, outlier_rate=1.0, seed=5)
        obs = emitter.observe(10)
        assert obs.loss > emitter.true_loss(10) * 1.4

    def test_no_noise_mode_is_exact(self, curve):
        emitter = LossEmitter(curve, 100, noise_std=0.0, outlier_rate=0.0, seed=5)
        assert emitter.observe(10).loss == pytest.approx(emitter.true_loss(10))

    def test_observe_range_stride(self, emitter):
        obs = emitter.observe_range(0, 100, stride=10)
        assert [o.step for o in obs] == list(range(0, 100, 10))

    def test_stream(self, emitter):
        stream = emitter.stream(stride=7)
        first = next(stream)
        second = next(stream)
        assert (first.step, second.step) == (0, 7)

    def test_invalid_params(self, curve):
        with pytest.raises(ConfigurationError):
            LossEmitter(curve, steps_per_epoch=0)
        with pytest.raises(ConfigurationError):
            LossEmitter(curve, 100, initial_loss=0)
        with pytest.raises(ConfigurationError):
            LossEmitter(curve, 100, outlier_rate=1.5)
        with pytest.raises(ConfigurationError):
            emitter = LossEmitter(curve, 100)
            emitter.observe_range(0, 10, stride=0)


class TestEpochAveraged:
    def test_one_point_per_epoch(self):
        observations = [LossObservation(s, 10.0 - s * 0.01) for s in range(0, 300)]
        averaged = epoch_averaged(observations, steps_per_epoch=100)
        assert len(averaged) == 3

    def test_average_value(self):
        observations = [
            LossObservation(0, 4.0),
            LossObservation(1, 6.0),
            LossObservation(100, 2.0),
        ]
        averaged = epoch_averaged(observations, steps_per_epoch=100)
        assert averaged[0].loss == pytest.approx(5.0)
        assert averaged[1].loss == pytest.approx(2.0)

    def test_stamped_with_last_step(self):
        observations = [LossObservation(s, 1.0) for s in (0, 40, 99)]
        averaged = epoch_averaged(observations, steps_per_epoch=100)
        assert averaged[0].step == 99

    def test_invalid_steps_per_epoch(self):
        with pytest.raises(ConfigurationError):
            epoch_averaged([], steps_per_epoch=0)
