"""Tests for cluster-level bookkeeping."""

import pytest

from repro.cluster import Cluster, Server, cpu_mem
from repro.cluster.server import ROLE_PS, ROLE_WORKER
from repro.common.errors import ConfigurationError

DEMAND = cpu_mem(5, 10)


class TestConstruction:
    def test_homogeneous(self):
        cluster = Cluster.homogeneous(3, cpu_mem(16, 64))
        assert len(cluster) == 3
        assert cluster.total_capacity == cpu_mem(48, 192)

    def test_homogeneous_requires_positive_count(self):
        with pytest.raises(ConfigurationError):
            Cluster.homogeneous(0, cpu_mem(16, 64))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster([Server("a", cpu_mem(1, 1)), Server("a", cpu_mem(1, 1))])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster([])

    def test_testbed_shape(self):
        cluster = Cluster.testbed()
        assert len(cluster) == 13
        assert cluster.total_capacity["gpu"] == 12  # 6 GPU servers x 2 GPUs
        assert cluster.total_capacity["cpu"] == 7 * 16 + 6 * 8

    def test_unknown_server_lookup(self):
        cluster = Cluster.homogeneous(2, cpu_mem(4, 4))
        with pytest.raises(ConfigurationError):
            cluster.server("nope")


class TestAggregates:
    @pytest.fixture
    def cluster(self):
        return Cluster.homogeneous(3, cpu_mem(16, 64))

    def test_used_and_available(self, cluster):
        cluster.place("node-0", ("j1", ROLE_WORKER, 0), DEMAND)
        assert cluster.total_used == DEMAND
        assert cluster.total_available == cluster.total_capacity - DEMAND

    def test_utilization(self, cluster):
        cluster.place("node-0", ("j1", ROLE_WORKER, 0), cpu_mem(16, 10))
        assert cluster.utilization("cpu") == pytest.approx(16 / 48)

    def test_fits_in_total_ignores_fragmentation(self, cluster):
        # 17 CPUs fit in aggregate even though no single server has 17.
        assert cluster.fits_in_total(cpu_mem(17, 10))

    def test_dominant_resource(self, cluster):
        assert cluster.dominant_resource(cpu_mem(16, 10)) == "cpu"


class TestJobPlacementQueries:
    @pytest.fixture
    def cluster(self):
        cluster = Cluster.homogeneous(3, cpu_mem(16, 64))
        cluster.place("node-0", ("j1", ROLE_WORKER, 0), DEMAND)
        cluster.place("node-0", ("j1", ROLE_PS, 0), DEMAND)
        cluster.place("node-1", ("j1", ROLE_WORKER, 1), DEMAND)
        cluster.place("node-1", ("j2", ROLE_WORKER, 0), DEMAND)
        return cluster

    def test_job_placement_layout(self, cluster):
        layout = cluster.job_placement("j1")
        assert layout == {
            "node-0": {"worker": 1, "ps": 1},
            "node-1": {"worker": 1, "ps": 0},
        }

    def test_placed_task_count(self, cluster):
        assert cluster.placed_task_count() == 4
        assert cluster.placed_task_count("j1") == 3

    def test_release_job_across_servers(self, cluster):
        assert cluster.release_job("j1") == 3
        assert cluster.placed_task_count() == 1

    def test_clear(self, cluster):
        cluster.clear()
        assert cluster.placed_task_count() == 0
        assert cluster.total_used.is_zero()


class TestSnapshot:
    def test_snapshot_is_independent(self):
        cluster = Cluster.homogeneous(2, cpu_mem(16, 64))
        snap = cluster.snapshot()
        snap.place("node-0", ("j1", ROLE_WORKER, 0), DEMAND)
        assert cluster.placed_task_count() == 0
        assert snap.placed_task_count() == 1

    def test_snapshot_preserves_existing_placements(self):
        cluster = Cluster.homogeneous(2, cpu_mem(16, 64))
        cluster.place("node-1", ("j1", ROLE_PS, 0), DEMAND)
        snap = cluster.snapshot()
        assert snap.job_placement("j1") == {"node-1": {"worker": 0, "ps": 1}}
