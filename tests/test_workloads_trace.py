"""Tests for workload-trace serialisation."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.common.errors import ConfigurationError
from repro.workloads import (
    jobs_from_json,
    jobs_to_json,
    load_trace,
    make_job,
    save_trace,
    uniform_arrivals,
    zoo_names,
)
from repro.workloads.trace import job_from_dict, job_to_dict


class TestRoundTrip:
    def test_single_job(self):
        job = make_job(
            "resnet-50",
            mode="async",
            job_id="rt",
            threshold=0.004,
            dataset_scale=0.5,
            arrival_time=123.0,
            requested_workers=6,
            requested_ps=6,
        )
        restored = job_from_dict(job_to_dict(job))
        assert restored == job

    def test_generated_workload(self):
        jobs = uniform_arrivals(num_jobs=12, seed=3)
        restored = jobs_from_json(jobs_to_json(jobs))
        assert restored == jobs

    def test_custom_demands_roundtrip(self):
        job = make_job(
            "cnn-rand",
            job_id="gpu",
            worker_demand=ResourceVector({"cpu": 2, "gpu": 1, "memory": 8}),
        )
        restored = job_from_dict(job_to_dict(job))
        assert restored.worker_demand == job.worker_demand

    def test_file_roundtrip(self, tmp_path):
        jobs = uniform_arrivals(num_jobs=5, seed=9)
        path = tmp_path / "trace.json"
        save_trace(jobs, str(path))
        assert load_trace(str(path)) == jobs

    @settings(max_examples=20, deadline=None)
    @given(
        model=st.sampled_from(zoo_names()),
        mode=st.sampled_from(["sync", "async"]),
        threshold=st.floats(0.0005, 0.01),
        arrival=st.floats(0, 1e5),
    )
    def test_property_roundtrip(self, model, mode, threshold, arrival):
        job = make_job(
            model, mode=mode, threshold=threshold, arrival_time=arrival
        )
        assert job_from_dict(job_to_dict(job)) == job


class TestValidation:
    def test_bad_json(self):
        with pytest.raises(ConfigurationError):
            jobs_from_json("this is not json")

    def test_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            jobs_from_json(json.dumps([1, 2, 3]))

    def test_missing_field(self):
        record = job_to_dict(make_job("cnn-rand", job_id="x"))
        del record["mode"]
        with pytest.raises(ConfigurationError):
            job_from_dict(record)

    def test_unknown_model(self):
        record = job_to_dict(make_job("cnn-rand", job_id="x"))
        record["model"] = "gpt-7"
        with pytest.raises(ConfigurationError):
            job_from_dict(record)

    def test_wrong_version(self):
        payload = json.loads(jobs_to_json([make_job("cnn-rand", job_id="x")]))
        payload["version"] = 99
        with pytest.raises(ConfigurationError):
            jobs_from_json(json.dumps(payload))

    def test_duplicate_ids(self):
        job = make_job("cnn-rand", job_id="dup")
        payload = json.loads(jobs_to_json([job]))
        payload["jobs"].append(payload["jobs"][0])
        with pytest.raises(ConfigurationError):
            jobs_from_json(json.dumps(payload))


class TestHardenedErrors:
    """Malformed records raise ValueErrors naming field and record."""

    def test_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            jobs_from_json("not json at all")

    def test_missing_fields_all_named(self):
        record = job_to_dict(make_job("cnn-rand", job_id="x"))
        del record["mode"]
        del record["threshold"]
        with pytest.raises(ConfigurationError, match="mode.*threshold"):
            job_from_dict(record)

    def test_record_index_in_message(self):
        payload = json.loads(jobs_to_json([make_job("cnn-rand", job_id="x")]))
        del payload["jobs"][0]["model"]
        with pytest.raises(ConfigurationError, match=r"trace record 0"):
            jobs_from_json(json.dumps(payload))

    def test_job_id_in_message(self):
        record = job_to_dict(make_job("cnn-rand", job_id="who-am-i"))
        record["model"] = "gpt-7"
        with pytest.raises(
            ConfigurationError, match=r"job_id='who-am-i'.*bad field 'model'"
        ):
            job_from_dict(record)

    def test_non_dict_record(self):
        with pytest.raises(ConfigurationError, match="trace record 1"):
            jobs_from_json(
                json.dumps(
                    {
                        "version": 1,
                        "jobs": [
                            job_to_dict(make_job("cnn-rand", job_id="ok")),
                            "surprise-string",
                        ],
                    }
                )
            )

    def test_demand_must_be_mapping(self):
        record = job_to_dict(make_job("cnn-rand", job_id="x"))
        record["worker_demand"] = [1, 2]
        with pytest.raises(ConfigurationError, match="worker_demand"):
            job_from_dict(record)

    def test_no_bare_keyerror_from_missing_fields(self):
        try:
            job_from_dict({})
        except ConfigurationError:
            pass
        except KeyError as exc:  # pragma: no cover - the regression itself
            pytest.fail(f"bare KeyError escaped: {exc!r}")

    def test_duplicate_names_both_records(self):
        job = make_job("cnn-rand", job_id="dup")
        payload = json.loads(jobs_to_json([job]))
        payload["jobs"].append(payload["jobs"][0])
        with pytest.raises(ConfigurationError, match=r"records 0 and 1"):
            jobs_from_json(json.dumps(payload))
