"""Tests for the online speed estimator (§3.2)."""

import pytest

from repro.common.errors import FittingError
from repro.core.speed import SpeedEstimator
from repro.workloads import MODEL_ZOO, StepTimeModel


@pytest.fixture
def truth():
    return StepTimeModel(MODEL_ZOO["resnet-50"], "sync")


@pytest.fixture
def estimator():
    return SpeedEstimator("sync", global_batch=256)


class TestSampleManagement:
    def test_add_and_count(self, estimator):
        estimator.add_sample(2, 4, 0.5)
        assert estimator.sample_count == 1
        assert estimator.samples == ((2, 4, 0.5),)

    def test_invalid_samples_rejected(self, estimator):
        with pytest.raises(FittingError):
            estimator.add_sample(0, 4, 0.5)
        with pytest.raises(FittingError):
            estimator.add_sample(2, 4, 0.0)

    def test_window_caps_samples(self):
        estimator = SpeedEstimator("async", max_samples=5)
        for i in range(10):
            estimator.add_sample(1, 1, float(i + 1))
        assert estimator.sample_count == 5
        # Oldest samples dropped first.
        assert estimator.samples[0][2] == 6.0

    def test_sync_requires_global_batch(self):
        with pytest.raises(FittingError):
            SpeedEstimator("sync")


class TestBootstrap:
    def test_bootstrap_profiles_configurations(self, estimator, truth):
        configs = estimator.bootstrap(
            measure=lambda p, w: truth.speed(p, w), num_samples=6, seed=1
        )
        assert len(configs) == 6
        assert estimator.sample_count == 6
        assert estimator.can_fit

    def test_bootstrap_reproducible(self, truth):
        def run():
            est = SpeedEstimator("sync", global_batch=256)
            return est.bootstrap(
                measure=lambda p, w: truth.speed(p, w), num_samples=5, seed=3
            )

        assert run() == run()


class TestFitAndPredict:
    def test_predict_close_to_truth(self, estimator, truth):
        estimator.bootstrap(
            measure=lambda p, w: truth.speed(p, w), num_samples=10, seed=2
        )
        for p, w in ((2, 2), (8, 8), (12, 6)):
            assert estimator.predict(p, w) == pytest.approx(
                truth.speed(p, w), rel=0.15
            )

    def test_fit_caches_until_new_sample(self, estimator, truth):
        estimator.bootstrap(measure=lambda p, w: truth.speed(p, w), seed=2)
        fit = estimator.fit()
        assert estimator.fit() is fit
        estimator.add_sample(3, 3, truth.speed(3, 3))
        assert estimator.fit() is not fit

    def test_cannot_fit_early(self, estimator):
        estimator.add_sample(1, 1, 0.1)
        with pytest.raises(FittingError):
            estimator.fit()

    def test_speed_function_is_frozen(self, estimator, truth):
        estimator.bootstrap(measure=lambda p, w: truth.speed(p, w), seed=2)
        fn = estimator.speed_function()
        before = fn(4, 4)
        # New samples don't change the frozen closure.
        estimator.add_sample(4, 4, 100.0)
        assert fn(4, 4) == before

    def test_online_calibration_improves_fit(self, truth):
        """Feeding live interval measurements refines the bootstrap fit."""
        est = SpeedEstimator("sync", global_batch=256)
        est.bootstrap(
            measure=lambda p, w: truth.measured_speed(p, w, seed=p * 7 + w, noise_std=0.15),
            num_samples=5,
            seed=1,
        )
        err_before = abs(est.predict(10, 10) - truth.speed(10, 10)) / truth.speed(10, 10)
        for _ in range(20):
            est.add_sample(10, 10, truth.speed(10, 10))
        err_after = abs(est.predict(10, 10) - truth.speed(10, 10)) / truth.speed(10, 10)
        assert err_after <= err_before + 1e-9
