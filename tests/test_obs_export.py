"""Tests for repro.obs.export: Prometheus exposition and ``repro top``."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.obs import (
    EVENT_ESTIMATOR_DRIFT,
    EVENT_ESTIMATOR_SAMPLE,
    Histogram,
    MetricsRegistry,
    RecordingTracer,
    quantile_from_snapshot,
    render_prometheus,
    render_top,
    top_state,
)

GOLDEN = Path(__file__).parent / "golden" / "metrics_export.prom"


def golden_registry() -> MetricsRegistry:
    """The fixed registry the golden file was rendered from."""
    registry = MetricsRegistry()
    registry.counter("engine.intervals").inc(3)
    registry.counter("jobs.completed").inc(2)
    # Decision-ledger counters (PR 10): grants, denials by reason,
    # placement provenance.
    registry.counter("decision.grants").inc(7)
    registry.counter("decision.deny.capacity_exhausted").inc(2)
    registry.counter("decision.placement.fresh").inc(3)
    registry.counter("decision.placement.spill").inc(1)
    # Control-plane HA counters (PR 9): elections, fencing, lease churn.
    registry.counter("election.terms").inc(2)
    registry.counter("election.depositions").inc(1)
    registry.counter("election.writes_fenced").inc(1)
    registry.counter("lease.regrants").inc(1)
    registry.gauge("engine.active_jobs").set(4)
    registry.gauge("est.speed_mape").set(0.125)
    hist = registry.histogram("sched.allocate_seconds", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        hist.observe(value)
    return registry


class TestPrometheusRendering:
    def test_matches_golden_file(self):
        assert render_prometheus(golden_registry()) == GOLDEN.read_text()

    def test_snapshot_dict_and_registry_render_identically(self):
        registry = golden_registry()
        assert render_prometheus(registry) == render_prometheus(
            registry.snapshot()
        )

    def test_json_round_trip_renders_identically(self):
        # The `repro metrics-export` path: snapshot -> JSON file -> render.
        registry = golden_registry()
        thawed = json.loads(json.dumps(registry.snapshot()))
        assert render_prometheus(thawed) == GOLDEN.read_text()

    def test_metric_name_sanitisation_and_namespace(self):
        registry = MetricsRegistry()
        registry.counter("est.refit-suggested").inc()
        text = render_prometheus(registry, namespace="optimus")
        assert "optimus_est_refit_suggested_total 1" in text
        assert render_prometheus(registry, namespace="").startswith(
            "# HELP est_refit_suggested_total"
        )

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(golden_registry())
        assert 'repro_sched_allocate_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_sched_allocate_seconds_bucket{le="1"} 2' in text
        assert 'repro_sched_allocate_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_sched_allocate_seconds_count 3" in text

    def test_empty_registry_renders_empty_exposition(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_decision_and_election_counters_exported(self):
        text = render_prometheus(golden_registry())
        assert "repro_decision_grants_total 7" in text
        assert "repro_decision_deny_capacity_exhausted_total 2" in text
        assert "repro_decision_placement_fresh_total 3" in text
        assert "repro_decision_placement_spill_total 1" in text
        assert "repro_election_terms_total 2" in text
        assert "repro_election_writes_fenced_total 1" in text
        assert "repro_lease_regrants_total 1" in text


class TestQuantiles:
    def make_hist(self):
        hist = Histogram(bounds=(10.0, 20.0))
        for value in (5.0, 10.0, 15.0, 25.0):
            hist.observe(value)
        return hist

    def test_linear_interpolation_within_buckets(self):
        hist = self.make_hist()
        assert hist.quantile(0.25) == 5.0  # clamped to observed min
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(0.75) == 20.0
        assert hist.quantile(1.0) == 25.0  # overflow interpolates to max

    def test_snapshot_quantile_matches_live(self):
        hist = self.make_hist()
        snap = hist.snapshot()
        for q in (0.25, 0.5, 0.75, 0.95, 1.0):
            assert quantile_from_snapshot(snap, q) == hist.quantile(q)

    def test_quantile_validation_and_empty(self):
        hist = Histogram(bounds=(1.0,))
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_exported_quantiles_present(self):
        text = render_prometheus(golden_registry())
        assert 'repro_sched_allocate_seconds_quantile{quantile="0.5"}' in text
        assert 'repro_sched_allocate_seconds_quantile{quantile="0.99"}' in text


def synthetic_trace():
    tracer = RecordingTracer()
    tracer.emit("job_arrived", 0.0, job_id="j1", model="resnet-50", mode="sync")
    tracer.emit("allocation_decided", 0.0, job_id="j1", workers=4, ps=2)
    tracer.emit("placement_decided", 0.0, job_id="j1", servers=3)
    tracer.emit(
        EVENT_ESTIMATOR_SAMPLE, 600.0, job_id="j1", signal="speed",
        predicted=12.0, actual=10.0, error=0.2,
    )
    tracer.emit(
        EVENT_ESTIMATOR_DRIFT, 600.0, job_id="j1", signal="speed",
        window_mape=0.6, window=6, threshold=0.5,
    )
    tracer.emit(
        "interval_tick", 600.0, running_jobs=1, active_jobs=1, pending_jobs=0,
        phases={},
    )
    tracer.emit("job_completed", 1200.0, job_id="j1", steps=100.0)
    tracer.emit("leader_elected", 0.0, leader="ctl-a", epoch=1)
    tracer.emit("leader_deposed", 900.0, leader="ctl-a", epoch=1, reason="ttl")
    tracer.emit(
        "write_fenced", 910.0, leader="ctl-a", epoch=1, op="put", key="/x"
    )
    tracer.emit("node_lease_regrant", 920.0, server="node-3")
    tracer.emit("checkpoint_recorded", 930.0, job_id="j1", steps=90.0)
    tracer.emit(
        "decision", 0.0, kind="grant", job_id="j1", task="worker",
        gain=0.5, workers=2, ps=1, index=0,
    )
    tracer.emit(
        "decision", 0.0, kind="deny", job_id="j1",
        reason="capacity_exhausted", stage="grow",
    )
    tracer.emit(
        "decision", 0.0, kind="placement", job_id="j1",
        provenance="fresh", servers=3,
    )
    return tracer.events


class TestTop:
    def test_state_folds_trace(self):
        state = top_state(synthetic_trace())
        assert state["ticks"] == 1
        assert state["drift_events"] == 1
        job = state["jobs"]["j1"]
        assert job.model == "resnet-50"
        assert job.state == "done"
        assert (job.workers, job.ps, job.servers) == (4, 2, 3)
        assert job.speed_errors == [0.2]
        assert job.drift_signals == {"speed"}
        assert state["control"] == {
            "elections": 1,
            "depositions": 1,
            "fenced_writes": 1,
            "lease_regrants": 1,
            "checkpoints": 1,
        }
        assert state["decisions"] == {
            "grants": 1,
            "denials": 1,
            "placements": 1,
            "shrinks": 0,
        }

    def test_render_includes_header_estimators_and_table(self):
        text = render_top(synthetic_trace())
        assert "cluster: 1 interval(s)" in text
        assert "speed MAPE 20.0%" in text
        assert "drift events 1" in text
        assert "j1" in text and "resnet-50" in text
        assert "control plane: elections=1, depositions=1" in text
        assert "decision ledger: grants=1, denials=1, placements=1" in text

    def test_max_jobs_truncates_table(self):
        events = synthetic_trace()
        events.append(
            {"seq": 99, "time": 0.0, "event": "job_arrived", "job_id": "j2",
             "model": "dssm", "mode": "async"}
        )
        text = render_top(events, max_jobs=1)
        # Active jobs sort before done ones: only j2 survives the cut.
        assert "j2" in text
        assert "\nj1 " not in text


class TestCliCommands:
    def run_sim(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        assert main([
            "simulate", "--jobs", "2", "--servers", "4", "--window", "600",
            "--estimator", "oracle", "--seed", "5", "--json",
            "--trace-out", trace, "--metrics-out", metrics,
        ]) == 0
        return trace, metrics

    def test_metrics_export_round_trip(self, tmp_path, capsys):
        _, metrics = self.run_sim(tmp_path)
        capsys.readouterr()
        assert main(["metrics-export", metrics]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_intervals_total counter" in out
        out_path = tmp_path / "metrics.prom"
        assert main(["metrics-export", metrics, "--out", str(out_path)]) == 0
        assert out_path.read_text().endswith("\n")

    def test_top_once(self, tmp_path, capsys):
        trace, metrics = self.run_sim(tmp_path)
        capsys.readouterr()
        assert main(["top", trace, "--metrics", metrics, "--once"]) == 0
        out = capsys.readouterr().out
        assert "cluster:" in out
        assert "metrics:" in out
