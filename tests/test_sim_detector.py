"""Tests for the §5.2 straggler-detection rules."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.detector import SpeedMonitor


class TestAsyncRule:
    def test_clear_straggler_flagged(self):
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_speeds({0: 1.0, 1: 1.1, 2: 0.9, 3: 0.3})
        assert verdict.stragglers == (3,)
        assert verdict.median_speed == pytest.approx(0.95)

    def test_healthy_fleet_unflagged(self):
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_speeds({i: 1.0 + 0.05 * i for i in range(6)})
        assert verdict.stragglers == ()

    def test_boundary_is_strict(self):
        monitor = SpeedMonitor()
        # Exactly half the median is NOT below half the median.
        verdict = monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.5})
        assert verdict.stragglers == ()

    def test_too_few_workers_never_flagged(self):
        monitor = SpeedMonitor(min_workers=3)
        verdict = monitor.evaluate_speeds({0: 1.0, 1: 0.01})
        assert verdict.stragglers == ()

    def test_multiple_stragglers(self):
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_speeds(
            {0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2, 4: 0.1}
        )
        assert verdict.stragglers == (3, 4)

    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            SpeedMonitor().evaluate_speeds({0: -1.0, 1: 1.0, 2: 1.0})


class TestConfirmation:
    def test_transient_dip_debounced(self):
        monitor = SpeedMonitor(confirmation=2)
        first = monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        assert first.stragglers == ()  # needs a second confirmation
        second = monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        assert second.stragglers == (3,)

    def test_recovery_resets_streak(self):
        monitor = SpeedMonitor(confirmation=2)
        monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.95})  # recovered
        verdict = monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        assert verdict.stragglers == ()


class TestReportingLifecycle:
    def test_not_reported_twice(self):
        monitor = SpeedMonitor()
        monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        again = monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        assert again.stragglers == ()
        assert monitor.reported == (3,)

    def test_replacement_rearms(self):
        monitor = SpeedMonitor()
        monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        monitor.replaced(3)
        assert monitor.reported == ()
        verdict = monitor.evaluate_speeds({0: 1.0, 1: 1.0, 2: 1.0, 3: 0.2})
        assert verdict.stragglers == (3,)


class TestSyncArrivalRule:
    def test_speeds_from_arrivals(self):
        arrivals = {
            0: [0.0, 2.0, 4.0],  # gap 2 -> speed 0.5
            1: [0.0, 4.0, 8.0],  # gap 4 -> speed 0.25
        }
        speeds = SpeedMonitor.speeds_from_arrivals(arrivals)
        assert speeds[0] == pytest.approx(0.5)
        assert speeds[1] == pytest.approx(0.25)

    def test_single_arrival_ignored(self):
        speeds = SpeedMonitor.speeds_from_arrivals({0: [1.0]})
        assert speeds == {}

    def test_all_equal_arrival_times_skipped(self):
        # Duplicate timestamps (clock granularity, repeated reports) must
        # not divide by zero; the worker just reports no speed this round.
        assert SpeedMonitor.speeds_from_arrivals({0: [2.0, 2.0]}) == {}
        assert SpeedMonitor.speeds_from_arrivals({0: [2.0, 2.0, 2.0]}) == {}

    def test_zero_gaps_ignored_among_real_gaps(self):
        # A duplicated timestamp inside an otherwise increasing series only
        # drops the zero gap, not the worker.
        speeds = SpeedMonitor.speeds_from_arrivals({0: [0.0, 2.0, 2.0, 4.0]})
        assert speeds[0] == pytest.approx(0.5)

    def test_end_to_end_sync_detection(self):
        """A worker whose gradients arrive 3x slower is flagged."""
        monitor = SpeedMonitor()
        arrivals = {
            0: [0.0, 2.0, 4.0, 6.0],
            1: [0.1, 2.1, 4.1, 6.1],
            2: [0.2, 2.2, 4.2, 6.2],
            3: [0.0, 6.0, 12.0, 18.0],  # 3x slower
        }
        verdict = monitor.evaluate_arrivals(arrivals)
        assert verdict.stragglers == (3,)


class TestEdgeCases:
    """Degenerate inputs a live metrics stream will eventually produce."""

    def test_single_worker_job_never_flagged(self):
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_speeds({0: 0.001})
        assert verdict.stragglers == ()
        assert verdict.median_speed == 0.0

    def test_single_worker_arrivals_never_flagged(self):
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_arrivals({0: [0.0, 10.0, 20.0]})
        assert verdict.stragglers == ()

    def test_all_equal_speeds_no_stragglers(self):
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_speeds({i: 1.0 for i in range(8)})
        assert verdict.stragglers == ()
        assert verdict.median_speed == pytest.approx(1.0)

    def test_all_zero_speeds_no_divide_by_zero(self):
        # Median 0 makes the threshold 0; nothing is "below half of zero".
        monitor = SpeedMonitor()
        verdict = monitor.evaluate_speeds({i: 0.0 for i in range(4)})
        assert verdict.stragglers == ()

    def test_all_equal_arrival_gaps_no_stragglers(self):
        monitor = SpeedMonitor()
        arrivals = {w: [w * 0.1 + 2.0 * i for i in range(4)] for w in range(5)}
        verdict = monitor.evaluate_arrivals(arrivals)
        assert verdict.stragglers == ()

    def test_workers_with_degenerate_arrivals_drop_below_min(self):
        # Two of four workers report unusable timestamps; the remaining two
        # are below min_workers, so nothing is flagged.
        monitor = SpeedMonitor(min_workers=3)
        arrivals = {
            0: [0.0, 2.0, 4.0],
            1: [0.0, 6.0, 12.0],
            2: [5.0, 5.0, 5.0],  # all-equal timestamps
            3: [7.0],  # single sample
        }
        verdict = monitor.evaluate_arrivals(arrivals)
        assert verdict.stragglers == ()


class TestValidation:
    def test_constructor_guards(self):
        with pytest.raises(ConfigurationError):
            SpeedMonitor(speed_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SpeedMonitor(speed_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SpeedMonitor(min_workers=1)
        with pytest.raises(ConfigurationError):
            SpeedMonitor(confirmation=0)
