"""Tests for repro.obs.spans: causal span tracing and flame trees."""

import pytest

from repro.common.errors import ControllerCrashed
from repro.deploy import ControlLoop
from repro.faults import ControllerCrash, CrashPointInjector
from repro.faults.crashpoints import CRASH_AFTER_TEARDOWN
from repro.k8s import APIServer
from repro.obs import (
    EVENT_SPAN,
    NULL_SPAN_TRACER,
    NULL_TRACER,
    RecordingTracer,
    SpanTracer,
    span_tracer_for,
    span_tree,
)
from repro.obs.summarize import span_flame
from repro.cluster import Cluster, cpu_mem
from repro.schedulers import JobView, make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import make_job, uniform_arrivals


def span_events(tracer):
    return [e for e in tracer.events if e["event"] == EVENT_SPAN]


class TestSpanTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        spans.set_time(600.0)
        with spans.span("outer"):
            with spans.span("inner", detail=1):
                pass
            with spans.span("sibling"):
                pass
        events = span_events(tracer)
        # Children close (and emit) before their parent.
        assert [e["name"] for e in events] == ["inner", "sibling", "outer"]
        outer = events[2]
        assert outer["parent_id"] is None
        assert all(e["parent_id"] == outer["span_id"] for e in events[:2])
        assert events[0]["detail"] == 1
        assert all(e["time"] == 600.0 for e in events)
        assert all(e["duration"] >= 0.0 for e in events)

    def test_span_ids_unique_and_monotonic(self):
        spans = SpanTracer(RecordingTracer())
        ids = []
        for _ in range(5):
            with spans.span("s") as span:
                ids.append(span.span_id)
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_exception_still_closes_span(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with pytest.raises(ValueError):
            with spans.span("outer"):
                with spans.span("doomed"):
                    raise ValueError("boom")
        events = span_events(tracer)
        assert [e["name"] for e in events] == ["doomed", "outer"]
        assert spans.current is None  # the stack did not corrupt

    def test_null_span_tracer_is_free_and_falsy(self):
        assert not NULL_SPAN_TRACER
        with NULL_SPAN_TRACER.span("anything", attr=1):
            pass
        assert span_tracer_for(None) is NULL_SPAN_TRACER
        assert span_tracer_for(NULL_TRACER) is NULL_SPAN_TRACER

    def test_live_tracer_gets_live_spans(self):
        tracer = RecordingTracer()
        spans = span_tracer_for(tracer)
        assert spans
        assert isinstance(spans, SpanTracer)


class TestSpanTreeReconstruction:
    def test_tree_rebuilt_from_events(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("interval"):
            with spans.span("fit"):
                pass
            with spans.span("progress"):
                with spans.span("rescale"):
                    pass
        roots = span_tree(tracer.events)
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "interval"
        assert [c["name"] for c in root["children"]] == ["fit", "progress"]
        assert root["children"][1]["children"][0]["name"] == "rescale"

    def test_orphan_spans_promoted_to_roots(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("outer"):
            with spans.span("inner"):
                pass
        # Simulate a trace cut before "outer" closed.
        cut = [e for e in tracer.events if e["name"] != "outer"]
        roots = span_tree(cut)
        assert [r["name"] for r in roots] == ["inner"]


class TestEngineSpans:
    def run_traced(self, **cfg_kwargs):
        tracer = RecordingTracer()
        simulate(
            Cluster.homogeneous(6, cpu_mem(16, 64)),
            make_scheduler("optimus"),
            uniform_arrivals(num_jobs=4, window=1200, seed=1),
            SimConfig(seed=3, estimator_mode="oracle", **cfg_kwargs),
            tracer=tracer,
        )
        return tracer

    def test_engine_emits_phase_chain(self):
        tracer = self.run_traced()
        names = {e["name"] for e in span_events(tracer)}
        assert {"interval", "fit", "allocate", "place", "progress"} <= names
        roots = span_tree(tracer.events)
        assert roots and all(r["name"] == "interval" for r in roots)
        for root in roots:
            child_names = [c["name"] for c in root["children"]]
            assert "fit" in child_names
            assert "allocate" in child_names
            assert "place" in child_names

    def test_parent_child_integrity_whole_run(self):
        tracer = self.run_traced()
        events = span_events(tracer)
        ids = {e["span_id"] for e in events}
        assert len(ids) == len(events)  # no id reuse
        for event in events:
            assert event["parent_id"] is None or event["parent_id"] in ids

    def test_flame_paths_aggregate(self):
        tracer = self.run_traced()
        flame = span_flame(tracer.events)
        assert "interval" in flame
        assert "interval > fit" in flame
        assert flame["interval"]["count"] == flame["interval > fit"]["count"]

    def test_untraced_run_emits_no_spans(self):
        result = simulate(
            Cluster.homogeneous(6, cpu_mem(16, 64)),
            make_scheduler("optimus"),
            uniform_arrivals(num_jobs=4, window=1200, seed=1),
            SimConfig(seed=3, estimator_mode="oracle"),
        )
        assert result.all_finished


def _loop_views(progress):
    spec = make_job("resnet-50", mode="sync", job_id="job-a")
    return [
        JobView(
            spec=spec,
            remaining_steps=max(10_000.0 - progress.get("job-a", 0.0), 100.0),
            speed=lambda p, w: float(w),
            observation_count=50,
        )
    ]


class TestDeployLoopSpans:
    def make_api(self, nodes=3):
        api = APIServer()
        for i in range(nodes):
            api.register_node(f"n{i}", cpu_mem(16, 64))
        return api

    def test_step_emits_root_and_phase_spans(self):
        tracer = RecordingTracer()
        loop = ControlLoop(self.make_api(), make_scheduler("optimus"), tracer=tracer)
        loop.step(_loop_views({}), progress={"job-a": 0.0})
        events = span_events(tracer)
        names = [e["name"] for e in events]
        assert "step" in names
        for phase in ("sweep", "snapshot", "schedule", "reconcile"):
            assert phase in names
        roots = span_tree(tracer.events)
        assert [r["name"] for r in roots] == ["step"]
        # The first step launches job-a: per-job controller spans nest
        # under reconcile.
        reconcile = next(
            c for c in roots[0]["children"] if c["name"] == "reconcile"
        )
        assert "launch" in [c["name"] for c in reconcile["children"]]

    def test_crash_point_mid_reconcile_closes_open_spans(self):
        tracer = RecordingTracer()
        injector = CrashPointInjector([ControllerCrash(CRASH_AFTER_TEARDOWN)])
        loop = ControlLoop(
            self.make_api(),
            make_scheduler("optimus"),
            tracer=tracer,
            crash_points=injector,
        )
        loop.step(_loop_views({}), progress={"job-a": 0.0})
        before = len(span_events(tracer))
        # Dropping the job from the views forces a teardown of the
        # now-absent job, whose crash point fires mid-reconcile.
        with pytest.raises(ControllerCrashed):
            loop.step([], progress={"job-a": 1000.0})
        events = span_events(tracer)
        assert len(events) > before
        # Every span opened before the crash was closed and emitted --
        # including the reconcile/step ancestors of the crashing teardown.
        last_step_spans = [e["name"] for e in events]
        assert "teardown" in last_step_spans or "checkpoint" in last_step_spans
        assert last_step_spans.count("step") >= 2
        # The tracer's stack fully unwound: a new loop can span again.
        assert loop.spans.current is None
