"""Tests for ResourceVector, including DRF dominant-share semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.resources import ZERO, ResourceVector, cpu_mem
from repro.common.errors import ConfigurationError


def vec(**kwargs):
    return ResourceVector(kwargs)


class TestConstruction:
    def test_empty(self):
        assert ResourceVector().is_zero()

    def test_zero_entries_dropped(self):
        assert vec(cpu=0.0) == ResourceVector()

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            vec(cpu=-1)

    def test_cpu_mem_helper(self):
        v = cpu_mem(5, 10)
        assert v["cpu"] == 5 and v["memory"] == 10


class TestMappingProtocol:
    def test_missing_type_is_zero(self):
        assert vec(cpu=4)["gpu"] == 0.0

    def test_get_default(self):
        assert vec(cpu=4).get("gpu", 7.0) == 7.0

    def test_iteration_and_len(self):
        v = vec(cpu=1, memory=2)
        assert set(v) == {"cpu", "memory"}
        assert len(v) == 2

    def test_contains(self):
        v = vec(cpu=1)
        assert "cpu" in v and "gpu" not in v

    def test_types(self):
        assert set(vec(cpu=1, gpu=2).types()) == {"cpu", "gpu"}


class TestArithmetic:
    def test_add(self):
        assert vec(cpu=1) + vec(cpu=2, gpu=1) == vec(cpu=3, gpu=1)

    def test_sub(self):
        assert vec(cpu=3, gpu=1) - vec(cpu=1) == vec(cpu=2, gpu=1)

    def test_sub_to_zero(self):
        assert (vec(cpu=3) - vec(cpu=3)).is_zero()

    def test_sub_below_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            vec(cpu=1) - vec(cpu=2)

    def test_scalar_multiply(self):
        assert vec(cpu=2) * 3 == vec(cpu=6)
        assert 3 * vec(cpu=2) == vec(cpu=6)

    def test_multiply_by_zero(self):
        assert (vec(cpu=2) * 0).is_zero()

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            vec(cpu=1) * -1

    def test_zero_identity(self):
        v = vec(cpu=4, memory=2)
        assert v + ZERO == v


class TestComparison:
    def test_fits_within(self):
        assert vec(cpu=4).fits_within(vec(cpu=4))
        assert vec(cpu=4).fits_within(vec(cpu=5, memory=1))
        assert not vec(cpu=6).fits_within(vec(cpu=5))

    def test_missing_capacity_type_rejects(self):
        assert not vec(gpu=1).fits_within(vec(cpu=100))

    def test_equality_ignores_explicit_zeros(self):
        assert ResourceVector({"cpu": 4, "gpu": 0}) == vec(cpu=4)

    def test_hash_consistent_with_eq(self):
        assert hash(vec(cpu=4, memory=2)) == hash(vec(memory=2, cpu=4))


class TestDominantShare:
    def test_basic(self):
        capacity = vec(cpu=10, memory=100)
        assert vec(cpu=5, memory=10).dominant_share(capacity) == 0.5

    def test_dominant_resource_name(self):
        capacity = vec(cpu=10, memory=100)
        assert vec(cpu=5, memory=10).dominant_resource(capacity) == "cpu"

    def test_zero_vector(self):
        capacity = vec(cpu=10)
        assert ZERO.dominant_share(capacity) == 0.0
        assert ZERO.dominant_resource(capacity) is None

    def test_unsatisfiable_type_is_infinite(self):
        assert vec(gpu=1).dominant_share(vec(cpu=10)) == float("inf")

    def test_shares_per_type(self):
        shares = vec(cpu=5, memory=20).shares(vec(cpu=10, memory=100))
        assert shares == {"cpu": 0.5, "memory": 0.2}


amounts = st.dictionaries(
    st.sampled_from(["cpu", "memory", "gpu", "bandwidth"]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=4,
)


class TestProperties:
    @given(amounts, amounts)
    def test_addition_commutative(self, a, b):
        assert ResourceVector(a) + ResourceVector(b) == ResourceVector(b) + ResourceVector(a)

    @given(amounts, amounts)
    def test_add_then_subtract_roundtrips(self, a, b):
        va, vb = ResourceVector(a), ResourceVector(b)
        assert (va + vb) - vb == va

    @given(amounts)
    def test_self_fits_within_self(self, a):
        v = ResourceVector(a)
        assert v.fits_within(v)

    @given(amounts, st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_scaling_scales_dominant_share(self, a, factor):
        v = ResourceVector(a)
        capacity = ResourceVector({k: 1e7 for k in ("cpu", "memory", "gpu", "bandwidth")})
        base = v.dominant_share(capacity)
        scaled = (v * factor).dominant_share(capacity)
        assert scaled == pytest.approx(base * factor, rel=1e-6, abs=1e-12)

    @given(amounts, amounts)
    def test_sum_dominant_share_subadditive(self, a, b):
        va, vb = ResourceVector(a), ResourceVector(b)
        capacity = ResourceVector({k: 1e7 for k in ("cpu", "memory", "gpu", "bandwidth")})
        total = (va + vb).dominant_share(capacity)
        assert total <= va.dominant_share(capacity) + vb.dominant_share(capacity) + 1e-9
