"""Tests for the §3.1 preprocessing pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import FittingError
from repro.fitting.preprocess import (
    normalize,
    preprocess_losses,
    remove_outliers,
    subsample,
)


class TestRemoveOutliers:
    def test_clean_data_unchanged(self):
        values = [10.0, 9.0, 8.0, 7.5, 7.0, 6.8, 6.5]
        assert remove_outliers(values) == values

    def test_spike_replaced(self):
        values = [10.0, 9.0, 8.0, 50.0, 7.0, 6.8, 6.5, 6.3, 6.2]
        cleaned = remove_outliers(values)
        assert cleaned[3] < 15.0
        # Everything else untouched.
        assert cleaned[:3] == values[:3]
        assert cleaned[4:] == values[4:]

    def test_dip_replaced(self):
        values = [10.0, 9.0, 8.0, 0.01, 7.0, 6.8, 6.5, 6.3, 6.2]
        cleaned = remove_outliers(values)
        assert cleaned[3] > 1.0

    def test_boundaries_kept(self):
        values = [100.0, 9.0, 8.0, 7.0, 6.0, 5.0, 0.001]
        cleaned = remove_outliers(values)
        assert cleaned[0] == 100.0  # no preceding window: kept as-is
        assert cleaned[-1] == 0.001  # no following window: kept as-is

    def test_short_sequences_passthrough(self):
        assert remove_outliers([5.0]) == [5.0]
        assert remove_outliers([5.0, 4.0]) == [5.0, 4.0]

    def test_window_validation(self):
        with pytest.raises(FittingError):
            remove_outliers([1, 2, 3], window=0)
        with pytest.raises(FittingError):
            remove_outliers([1, 2, 3], margin=-0.1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=3, max_size=60)
    )
    def test_output_within_data_envelope(self, values):
        cleaned = remove_outliers(values)
        assert len(cleaned) == len(values)
        assert min(cleaned) >= min(values) - 1e-9
        assert max(cleaned) <= max(values) + 1e-9


class TestNormalize:
    def test_max_maps_to_one(self):
        normalised, scale = normalize([2.0, 4.0, 1.0])
        assert scale == 4.0
        assert max(normalised) == 1.0

    def test_preserves_ratios(self):
        normalised, _ = normalize([2.0, 4.0])
        assert normalised == [0.5, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(FittingError):
            normalize([])

    def test_nonpositive_rejected(self):
        with pytest.raises(FittingError):
            normalize([0.0, -1.0])


class TestPreprocessLosses:
    def test_sorts_by_step(self):
        steps = [30, 10, 20]
        losses = [3.0, 9.0, 6.0]
        sorted_steps, normalised, scale = preprocess_losses(steps, losses)
        assert list(sorted_steps) == [10, 20, 30]
        assert normalised[0] == pytest.approx(1.0)

    def test_scale_returned(self):
        _, normalised, scale = preprocess_losses([0, 1], [8.0, 4.0])
        assert scale == 8.0
        assert normalised[1] == pytest.approx(0.5)

    def test_mismatched_lengths(self):
        with pytest.raises(FittingError):
            preprocess_losses([1, 2], [1.0])

    def test_empty(self):
        with pytest.raises(FittingError):
            preprocess_losses([], [])


class TestSubsample:
    def test_short_input_untouched(self):
        steps, losses = subsample([1, 2, 3], [4.0, 5.0, 6.0], max_points=10)
        assert steps == [1, 2, 3]

    def test_thins_long_input(self):
        steps = list(range(1000))
        losses = [float(s) for s in steps]
        s, thinned = subsample(steps, losses, max_points=100)
        assert len(s) <= 100
        assert s[0] == 0 and s[-1] == 999  # endpoints preserved
        assert thinned == [float(x) for x in s]  # pairs stay aligned

    def test_validation(self):
        with pytest.raises(FittingError):
            subsample([1], [1.0], max_points=1)
        with pytest.raises(FittingError):
            subsample([1, 2], [1.0], max_points=5)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 500), cap=st.integers(2, 50))
    def test_respects_cap_and_order(self, n, cap):
        steps = list(range(n))
        losses = [float(i) for i in range(n)]
        s, _ = subsample(steps, losses, max_points=cap)
        assert len(s) <= cap
        assert s == sorted(s)
