"""Tests for the HDFS-like chunk store and worker assignment (§5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataStoreError
from repro.common.units import MB
from repro.datastore import ChunkAssignment, ChunkStore

NODES = [f"dn-{i}" for i in range(5)]


class TestChunkStore:
    def test_file_split_into_chunks(self):
        store = ChunkStore(NODES, chunk_size=128 * MB)
        f = store.add_file("data", 300 * MB)
        assert f.num_chunks == 3
        assert sum(c.size for c in f.chunks) == 300 * MB

    def test_last_chunk_partial(self):
        store = ChunkStore(NODES, chunk_size=128 * MB)
        f = store.add_file("data", 200 * MB)
        assert f.chunks[-1].size == 72 * MB

    def test_replication(self):
        store = ChunkStore(NODES, replication=3)
        f = store.add_file("data", 1)
        assert len(f.chunks[0].replicas) == 3
        assert len(set(f.chunks[0].replicas)) == 3

    def test_replicas_spread_over_nodes(self):
        store = ChunkStore(NODES, chunk_size=MB, replication=2)
        store.add_file("data", 50 * MB)
        counts = store.node_chunk_counts()
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_duplicate_file_rejected(self):
        store = ChunkStore(NODES)
        store.add_file("data", 1)
        with pytest.raises(DataStoreError):
            store.add_file("data", 1)

    def test_lookup(self):
        store = ChunkStore(NODES)
        store.add_file("data", 1)
        assert "data" in store
        assert store.file("data").size == 1
        with pytest.raises(DataStoreError):
            store.file("missing")

    def test_validation(self):
        with pytest.raises(DataStoreError):
            ChunkStore([])
        with pytest.raises(DataStoreError):
            ChunkStore(NODES, chunk_size=0)
        with pytest.raises(DataStoreError):
            ChunkStore(NODES, replication=9)
        store = ChunkStore(NODES)
        with pytest.raises(DataStoreError):
            store.add_file("x", 0)


class TestChunkAssignment:
    def make(self, num_chunks, num_workers):
        store = ChunkStore(NODES, chunk_size=MB)
        f = store.add_file("data", num_chunks * MB)
        return ChunkAssignment(f, num_workers)

    def test_initial_balance(self):
        assignment = self.make(10, 3)
        assert assignment.counts() == [4, 3, 3]
        assert assignment.is_balanced

    def test_all_chunks_assigned_once(self):
        assignment = self.make(11, 4)
        seen = [
            c.chunk_id for w in range(4) for c in assignment.chunks_of(w)
        ]
        assert len(seen) == 11
        assert len(set(seen)) == 11

    def test_unknown_worker(self):
        assignment = self.make(4, 2)
        with pytest.raises(DataStoreError):
            assignment.chunks_of(5)

    def test_scale_up_rebalances(self):
        assignment = self.make(12, 2)
        moved = assignment.rebalance(4)
        assert assignment.is_balanced
        assert assignment.counts() == [3, 3, 3, 3]
        assert moved == 6  # each old worker sheds half its chunks

    def test_scale_down_rebalances(self):
        assignment = self.make(12, 4)
        moved = assignment.rebalance(3)
        assert assignment.is_balanced
        assert moved >= 3  # at least the removed worker's chunks move

    def test_noop_rebalance(self):
        assignment = self.make(8, 4)
        assert assignment.rebalance(4) == 0

    def test_moves_are_minimal_on_scale_up(self):
        """Only the overflow above the new quota moves."""
        assignment = self.make(12, 3)  # 4 each
        moved = assignment.rebalance(4)  # new quota 3 each
        assert moved == 3

    def test_total_moved_accumulates(self):
        assignment = self.make(12, 2)
        assignment.rebalance(3)
        assignment.rebalance(2)
        assert assignment.total_moved > 0

    def test_validation(self):
        assignment = self.make(4, 2)
        with pytest.raises(DataStoreError):
            assignment.rebalance(0)
        store = ChunkStore(NODES)
        f = store.add_file("d", 1)
        with pytest.raises(DataStoreError):
            ChunkAssignment(f, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        chunks=st.integers(1, 60),
        workers=st.lists(st.integers(1, 12), min_size=1, max_size=6),
    )
    def test_rebalance_invariants(self, chunks, workers):
        """After any scaling sequence: all chunks assigned, balanced."""
        assignment = self.make(chunks, workers[0])
        for w in workers[1:]:
            assignment.rebalance(w)
        counts = assignment.counts()
        assert sum(counts) == chunks
        assert max(counts) - min(counts) <= 1
