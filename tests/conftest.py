"""Shared fixtures for the test suite."""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.workloads import MODEL_ZOO, StepTimeModel, make_job


@pytest.fixture
def small_cluster():
    """Four 16-CPU/64-GB servers: enough for interesting placements."""
    return Cluster.homogeneous(4, cpu_mem(16, 64))


@pytest.fixture
def testbed_cluster():
    """The paper's 13-server testbed shape."""
    return Cluster.testbed()


@pytest.fixture
def resnet_profile():
    return MODEL_ZOO["resnet-50"]


@pytest.fixture
def cnn_profile():
    return MODEL_ZOO["cnn-rand"]


@pytest.fixture
def sync_truth(resnet_profile):
    return StepTimeModel(resnet_profile, "sync")


@pytest.fixture
def async_truth(resnet_profile):
    return StepTimeModel(resnet_profile, "async")


@pytest.fixture
def sync_job():
    return make_job("resnet-50", mode="sync", job_id="sync-job", dataset_scale=0.01)


@pytest.fixture
def async_job():
    return make_job("cnn-rand", mode="async", job_id="async-job")
