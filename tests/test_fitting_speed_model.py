"""Tests for the Eqn-3/Eqn-4 speed-function fitters."""

import numpy as np
import pytest

from repro.common.errors import FittingError
from repro.fitting.speed_model import (
    SpeedModelFit,
    fit_speed_model,
    sample_configurations,
)
from repro.workloads import MODEL_ZOO, StepTimeModel


def grid_samples(model, max_tasks=16, stride=3):
    return [
        (p, w, model.speed(p, w))
        for p in range(1, max_tasks + 1, stride)
        for w in range(1, max_tasks + 1, stride)
    ]


class TestSyncFit:
    @pytest.fixture
    def truth(self):
        return StepTimeModel(MODEL_ZOO["resnet-50"], "sync")

    def test_fit_recovers_surface(self, truth):
        fit = fit_speed_model(grid_samples(truth), "sync", global_batch=256)
        errors = [
            abs(fit.predict(p, w) - truth.speed(p, w)) / truth.speed(p, w)
            for p in range(1, 17, 2)
            for w in range(1, 17, 2)
        ]
        assert float(np.mean(errors)) < 0.05

    def test_theta0_estimates_forward_time(self, truth):
        """θ0 multiplies M/w, so it should recover T_forward (§3.2)."""
        fit = fit_speed_model(grid_samples(truth), "sync", global_batch=256)
        assert fit.thetas[0] == pytest.approx(
            MODEL_ZOO["resnet-50"].forward_time_per_example, rel=0.35
        )

    def test_nonmonotonicity_captured(self, truth):
        """The fitted function must reproduce the Fig-4b decline."""
        fit = fit_speed_model(grid_samples(truth), "sync", global_batch=256)
        speeds = {w: fit.predict(w, w) for w in range(1, 21)}
        best = max(speeds, key=speeds.get)
        assert speeds[20] < speeds[best]

    def test_five_coefficients(self, truth):
        fit = fit_speed_model(grid_samples(truth), "sync", global_batch=256)
        assert len(fit.thetas) == 5
        assert all(t >= 0 for t in fit.thetas)

    def test_residual_reported(self, truth):
        noisy = [
            (p, w, truth.measured_speed(p, w, seed=p * 31 + w, noise_std=0.05))
            for p, w in sample_configurations(16, 16, 12, seed=0)
        ]
        fit = fit_speed_model(noisy, "sync", global_batch=256)
        assert fit.residual > 0

    def test_requires_global_batch(self, truth):
        with pytest.raises(FittingError):
            fit_speed_model(grid_samples(truth), "sync")


class TestAsyncFit:
    @pytest.fixture
    def truth(self):
        return StepTimeModel(MODEL_ZOO["resnet-50"], "async")

    def test_fit_recovers_surface(self, truth):
        fit = fit_speed_model(grid_samples(truth), "async")
        errors = [
            abs(fit.predict(p, w) - truth.speed(p, w)) / truth.speed(p, w)
            for p in range(1, 17, 2)
            for w in range(1, 17, 2)
        ]
        assert float(np.mean(errors)) < 0.06

    def test_four_coefficients(self, truth):
        fit = fit_speed_model(grid_samples(truth), "async")
        assert len(fit.thetas) == 4

    def test_speed_increases_with_workers(self, truth):
        fit = fit_speed_model(grid_samples(truth), "async")
        assert fit.predict(8, 12) > fit.predict(8, 2)


class TestFig8SampleEfficiency:
    def test_ten_samples_within_ten_percent(self):
        """Fig 8: ~10 sample runs already give <10% estimation error."""
        truth = StepTimeModel(MODEL_ZOO["resnet-50"], "sync")
        configs = sample_configurations(20, 20, 10, seed=4)
        samples = [
            (p, w, truth.measured_speed(p, w, seed=p * 100 + w, noise_std=0.03))
            for p, w in configs
        ]
        fit = fit_speed_model(samples, "sync", global_batch=256)
        errors = [
            abs(fit.predict(p, w) - truth.speed(p, w)) / truth.speed(p, w)
            for p in range(2, 21, 3)
            for w in range(2, 21, 3)
        ]
        assert float(np.mean(errors)) < 0.10

    def test_more_samples_reduce_error(self):
        truth = StepTimeModel(MODEL_ZOO["resnet-50"], "sync")

        def mean_error(num_samples, seed):
            configs = sample_configurations(20, 20, num_samples, seed=seed)
            samples = [
                (p, w, truth.measured_speed(p, w, seed=p * 100 + w, noise_std=0.05))
                for p, w in configs
            ]
            fit = fit_speed_model(samples, "sync", global_batch=256)
            return float(
                np.mean(
                    [
                        abs(fit.predict(p, w) - truth.speed(p, w)) / truth.speed(p, w)
                        for p in range(2, 21, 3)
                        for w in range(2, 21, 3)
                    ]
                )
            )

        few = np.mean([mean_error(6, s) for s in range(5)])
        many = np.mean([mean_error(24, s) for s in range(5)])
        assert many <= few


class TestSampleConfigurations:
    def test_includes_corners(self):
        configs = sample_configurations(8, 8, 5, seed=1)
        assert (1, 1) in configs
        assert (8, 8) in configs

    def test_distinct_and_bounded(self):
        configs = sample_configurations(10, 12, 20, seed=2)
        assert len(configs) == len(set(configs)) == 20
        assert all(1 <= p <= 10 and 1 <= w <= 12 for p, w in configs)

    def test_caps_at_grid_size(self):
        configs = sample_configurations(2, 2, 50, seed=3)
        assert len(configs) == 4

    def test_reproducible(self):
        assert sample_configurations(9, 9, 7, seed=5) == sample_configurations(
            9, 9, 7, seed=5
        )

    def test_validation(self):
        with pytest.raises(FittingError):
            sample_configurations(0, 5, 3)
        with pytest.raises(FittingError):
            sample_configurations(5, 5, 1)


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(FittingError):
            fit_speed_model([(1, 1, 1.0)] * 3, "async")

    def test_bad_configuration(self):
        with pytest.raises(FittingError):
            fit_speed_model([(0, 1, 1.0)] * 6, "async")

    def test_bad_speed(self):
        with pytest.raises(FittingError):
            fit_speed_model([(1, 1, -2.0)] * 6, "async")

    def test_bad_mode(self):
        with pytest.raises(Exception):
            fit_speed_model([(1, 1, 1.0)] * 6, "batch")

    def test_predict_validates_tasks(self):
        fit = SpeedModelFit(
            mode="async", thetas=(1.0, 0.1, 0.01, 0.01), residual=0.0, num_samples=6
        )
        with pytest.raises(FittingError):
            fit.predict(0, 1)
