"""Tests for the seeded random-number plumbing."""

import numpy as np

from repro.common.rand import RandomSource, spawn_rng


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(7).child("x").rng.random(5)
        b = RandomSource(7).child("x").rng.random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomSource(7).child("x").rng.random(5)
        b = RandomSource(8).child("x").rng.random(5)
        assert not np.allclose(a, b)

    def test_different_labels_differ(self):
        root = RandomSource(7)
        a = root.child("arrivals").rng.random(5)
        b = root.child("loss-noise").rng.random(5)
        assert not np.allclose(a, b)

    def test_nested_children_are_stable(self):
        a = RandomSource(3).child("a").child("b").rng.random()
        b = RandomSource(3).child("a").child("b").rng.random()
        assert a == b

    def test_nested_children_independent_of_siblings(self):
        a = RandomSource(3).child("a").child("b").rng.random()
        c = RandomSource(3).child("c").child("b").rng.random()
        assert a != c

    def test_rng_cached(self):
        src = RandomSource(1)
        assert src.rng is src.rng

    def test_none_seed_records_seed(self):
        src = RandomSource(None)
        assert isinstance(src.seed, int)
        # Replaying with the recorded seed reproduces the stream.
        replay = RandomSource(src.seed)
        assert replay.child("x").rng.random() == RandomSource(src.seed).child("x").rng.random()

    def test_adding_draws_in_one_child_does_not_shift_another(self):
        root1 = RandomSource(5)
        _ = root1.child("a").rng.random(100)  # consume a lot in one subsystem
        b1 = root1.child("b").rng.random()

        root2 = RandomSource(5)
        b2 = root2.child("b").rng.random()  # no draws in "a" at all
        assert b1 == b2


class TestSpawnRng:
    def test_from_int(self):
        assert spawn_rng(3, "x").random() == spawn_rng(3, "x").random()

    def test_from_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen, "anything") is gen

    def test_from_random_source(self):
        src = RandomSource(9)
        a = spawn_rng(src, "lbl").random()
        b = RandomSource(9).child("lbl").rng.random()
        assert a == b

    def test_from_none_is_unseeded(self):
        gen = spawn_rng(None)
        assert isinstance(gen, np.random.Generator)

    def test_labels_partition_streams(self):
        assert spawn_rng(3, "x").random() != spawn_rng(3, "y").random()
