"""Tests for FaultConfig, FaultPlan and the seeded FaultInjector."""

import os

import pytest

from repro.common.errors import FaultInjectionError
from repro.common.rand import RandomSource
from repro.faults import (
    CheckpointLoss,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    TaskCrash,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

SERVERS = [f"server-{i}" for i in range(8)]


def drive(injector, steps=200, interval=60.0, servers=SERVERS):
    """Run the outage state machine *steps* intervals; return the event log."""
    log = []
    for i in range(steps):
        faults = injector.begin_interval(i * interval, interval, servers)
        for outage in faults.failed:
            log.append(("fail", outage.server, outage.failed_at, outage.up_at))
        for name in faults.recovered:
            log.append(("recover", name, i * interval))
    return log


class TestFaultConfig:
    def test_default_injects_nothing(self):
        config = FaultConfig()
        assert not config.enabled
        assert not config.engine_enabled
        assert config.failure_probability(60.0) == 0.0

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(node_mtbf=-1.0)
        with pytest.raises(FaultInjectionError):
            FaultConfig(node_downtime=(100.0, 50.0))
        with pytest.raises(FaultInjectionError):
            FaultConfig(task_crash_rate=1.5)
        with pytest.raises(FaultInjectionError):
            FaultConfig(checkpoint_loss_rate=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultConfig(kv_error_rate=2.0)
        with pytest.raises(FaultInjectionError):
            FaultConfig(max_node_failures=-1)

    def test_kv_rate_enables_but_not_engine(self):
        config = FaultConfig(kv_error_rate=0.1)
        assert config.enabled
        assert not config.engine_enabled

    def test_failure_probability_model(self):
        config = FaultConfig(node_mtbf=1000.0)
        p_short = config.failure_probability(10.0)
        p_long = config.failure_probability(1000.0)
        assert 0 < p_short < p_long < 1
        assert p_long == pytest.approx(1 - 2.718281828 ** -1, rel=1e-6)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(node_crashes=(NodeCrash(10.0, "s0", 60.0),))

    def test_events_sorted_and_window_queries(self):
        plan = FaultPlan(
            node_crashes=(
                NodeCrash(300.0, "s1", 60.0),
                NodeCrash(100.0, "s0", 60.0),
            ),
            task_crashes=(TaskCrash(50.0, "job-b"), TaskCrash(50.0, "job-a")),
            checkpoint_losses=(CheckpointLoss(200.0, "job-a"),),
        )
        assert [c.time for c in plan.node_crashes] == [100.0, 300.0]
        assert [c.job_id for c in plan.task_crashes] == ["job-a", "job-b"]
        # Window is half-open: [start, end).
        assert len(plan.node_crashes_in(0.0, 100.0)) == 0
        assert len(plan.node_crashes_in(100.0, 101.0)) == 1
        assert len(plan.task_crashes_in(0.0, 60.0)) == 2
        assert len(plan.checkpoint_losses_in(200.0, 260.0)) == 1

    def test_event_validation(self):
        with pytest.raises(FaultInjectionError):
            NodeCrash(-1.0, "s0", 60.0)
        with pytest.raises(FaultInjectionError):
            NodeCrash(0.0, "s0", 0.0)
        with pytest.raises(FaultInjectionError):
            NodeCrash(0.0, "", 60.0)
        with pytest.raises(FaultInjectionError):
            TaskCrash(5.0, "")
        with pytest.raises(FaultInjectionError):
            CheckpointLoss(-5.0, "job-a")


class TestFaultInjector:
    def test_falsy_when_nothing_configured(self):
        assert not FaultInjector()
        assert not FaultInjector(FaultConfig(kv_error_rate=0.5))  # KV is not engine
        assert FaultInjector(FaultConfig(node_mtbf=1000.0))
        assert FaultInjector(plan=FaultPlan(task_crashes=(TaskCrash(1.0, "j"),)))

    def test_same_seed_same_faults(self):
        config = FaultConfig(node_mtbf=5_000.0, node_downtime=(300.0, 900.0))
        log_a = drive(FaultInjector(config, RandomSource(CHAOS_SEED)))
        log_b = drive(FaultInjector(config, RandomSource(CHAOS_SEED)))
        assert log_a == log_b
        assert any(kind == "fail" for kind, *_ in log_a)

    def test_different_seeds_diverge(self):
        config = FaultConfig(node_mtbf=5_000.0)
        log_a = drive(FaultInjector(config, RandomSource(CHAOS_SEED)))
        log_b = drive(FaultInjector(config, RandomSource(CHAOS_SEED + 1)))
        assert log_a != log_b

    def test_down_servers_recover_after_downtime(self):
        plan = FaultPlan(node_crashes=(NodeCrash(0.0, "server-0", 120.0),))
        injector = FaultInjector(plan=plan)
        first = injector.begin_interval(0.0, 60.0, SERVERS)
        assert [o.server for o in first.failed] == ["server-0"]
        assert injector.down_servers == ("server-0",)
        mid = injector.begin_interval(60.0, 60.0, SERVERS)
        assert mid.failed == () and mid.recovered == ()
        assert injector.down_servers == ("server-0",)
        back = injector.begin_interval(120.0, 60.0, SERVERS)
        assert back.recovered == ("server-0",)
        assert injector.down_servers == ()

    def test_down_server_cannot_fail_again(self):
        plan = FaultPlan(
            node_crashes=(
                NodeCrash(0.0, "server-0", 600.0),
                NodeCrash(60.0, "server-0", 600.0),
            )
        )
        injector = FaultInjector(plan=plan)
        injector.begin_interval(0.0, 60.0, SERVERS)
        again = injector.begin_interval(60.0, 60.0, SERVERS)
        assert again.failed == ()

    def test_unknown_server_in_plan_ignored(self):
        plan = FaultPlan(node_crashes=(NodeCrash(0.0, "no-such-server", 600.0),))
        injector = FaultInjector(plan=plan)
        faults = injector.begin_interval(0.0, 60.0, SERVERS)
        assert faults.failed == ()

    def test_max_node_failures_cap(self):
        config = FaultConfig(
            node_mtbf=10.0,  # essentially every server fails every interval
            node_downtime=(60.0, 60.0),
            max_node_failures=3,
        )
        injector = FaultInjector(config, RandomSource(CHAOS_SEED))
        log = drive(injector, steps=50)
        failures = [entry for entry in log if entry[0] == "fail"]
        assert len(failures) == 3

    def test_sample_task_crashes_planned_plus_drawn(self):
        plan = FaultPlan(
            task_crashes=(
                TaskCrash(10.0, "job-a"),
                TaskCrash(20.0, "job-a"),
                TaskCrash(10.0, "job-b"),
                TaskCrash(90.0, "job-a"),  # outside the window
            )
        )
        injector = FaultInjector(plan=plan)
        assert injector.sample_task_crashes("job-a", 4, 0.0, 60.0) == 2
        assert injector.sample_task_crashes("job-b", 4, 0.0, 60.0) == 1
        assert injector.sample_task_crashes("job-c", 4, 0.0, 60.0) == 0

    def test_task_crash_rate_statistics(self):
        injector = FaultInjector(
            FaultConfig(task_crash_rate=0.5), RandomSource(CHAOS_SEED)
        )
        total = sum(
            injector.sample_task_crashes("job", 10, i * 60.0, 60.0)
            for i in range(100)
        )
        assert 300 < total < 700  # binomial(1000, 0.5) comfortably within

    def test_checkpoint_loss_scripted_consume_once(self):
        plan = FaultPlan(checkpoint_losses=(CheckpointLoss(0.0, "job-a"),))
        injector = FaultInjector(plan=plan)
        injector.begin_interval(0.0, 60.0, SERVERS)
        assert injector.checkpoint_lost("job-a") is True
        assert injector.checkpoint_lost("job-a") is False  # consumed
        assert injector.checkpoint_lost("job-b") is False

    def test_fresh_checkpoint_clears_scripted_corruption(self):
        plan = FaultPlan(checkpoint_losses=(CheckpointLoss(0.0, "job-a"),))
        injector = FaultInjector(plan=plan)
        injector.begin_interval(0.0, 60.0, SERVERS)
        injector.note_checkpoint("job-a")
        assert injector.checkpoint_lost("job-a") is False
