"""Recovery behaviour of the deployment layer under injected failures:
reconcile rollback, control-loop graceful degradation, restart recovery,
node re-registration and watcher isolation."""

import pytest

from repro.cluster import cpu_mem
from repro.common.errors import KVStoreError
from repro.core.allocation import TaskAllocation
from repro.deploy import ControlLoop
from repro.k8s import APIServer, JobController, JobTarget, PodSpec
from repro.k8s.kvstore import KVStore
from repro.obs import (
    EVENT_CHECKPOINT_MISSING,
    EVENT_RESCALE_ROLLED_BACK,
    MetricsRegistry,
    RecordingTracer,
)
from repro.schedulers import JobView, Scheduler, SchedulingDecision
from repro.workloads import StepTimeModel, make_job


@pytest.fixture
def api():
    server = APIServer()
    server.register_node("n0", cpu_mem(16, 64))
    server.register_node("n1", cpu_mem(16, 64))
    return server


def view(job_id, model="seq2seq"):
    spec = make_job(model, mode="sync", job_id=job_id)
    truth = StepTimeModel(spec.profile, "sync")
    return JobView(
        spec=spec,
        remaining_steps=50_000,
        speed=lambda p, w, t=truth: t.speed(p, w),
        observation_count=100,
    )


def target(job_id, layout, demand=cpu_mem(2, 4)):
    return JobTarget(
        job_id=job_id, worker_demand=demand, ps_demand=demand, layout=layout
    )


class TestReconcileRollback:
    def test_failed_rescale_restores_previous_pods_and_raises(self, api):
        controller = JobController(api)
        controller.reconcile([target("a", {"n0": (1, 1)})])
        before = {
            p.name: p.node for p in api.list_pods(job_id="a") if p.bound
        }
        assert len(before) == 2

        with pytest.raises(KVStoreError):
            controller.reconcile([target("a", {"ghost-node": (1, 1)})])

        after = {p.name: p.node for p in api.list_pods(job_id="a") if p.bound}
        assert after == before
        # The containers really did restart during the rollback.
        assert all(p.restarts == 1 for p in api.list_pods(job_id="a"))
        # Node accounting is consistent with exactly those pods.
        assert api.node("n0").allocatable == cpu_mem(16 - 4, 64 - 8)

    def test_raise_on_failure_false_degrades_gracefully(self, api):
        controller = JobController(api)
        controller.reconcile([target("a", {"n0": (1, 1)})])

        report = controller.reconcile(
            [
                target("a", {"ghost-node": (2, 1)}),
                target("b", {"n1": (1, 1)}),
            ],
            raise_on_failure=False,
        )
        assert report.jobs_rolled_back == ("a",)
        assert "b" in report.jobs_scaled
        assert len(api.list_pods(job_id="a")) == 2  # restored
        assert len(api.list_pods(job_id="b")) == 2  # still launched

    def test_rollback_report_populated_even_when_raising(self, api):
        controller = JobController(api)
        controller.reconcile([target("a", {"n0": (1, 1)})])
        try:
            controller.reconcile([target("a", {"n0": (40, 40)})])
        except KVStoreError:
            pass
        else:  # pragma: no cover - the overcommit must raise
            pytest.fail("overcommitting rescale should raise")
        # The job is back on its feet despite the raise.
        assert len([p for p in api.list_pods(job_id="a") if p.bound]) == 2


class FlipFlopScheduler(Scheduler):
    """First decision fits; every later one overcommits the same job."""

    name = "flipflop"

    def __init__(self):
        self.calls = 0

    def schedule(self, cluster, jobs):
        self.calls += 1
        job_id = jobs[0].job_id
        if self.calls == 1:
            layout = {"n0": (1, 1)}
            alloc = TaskAllocation(1, 1)
        else:
            layout = {"n0": (60, 60)}  # cannot possibly bind
            alloc = TaskAllocation(60, 60)
        return SchedulingDecision(
            allocations={job_id: alloc}, layouts={job_id: layout}
        )


class TestControlLoopDegradation:
    def test_failed_rescale_traced_and_counted(self, api):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        loop = ControlLoop(
            api, FlipFlopScheduler(), tracer=tracer, metrics=metrics
        )
        views = [view("a")]

        first = loop.step(views, progress={"a": 0.0})
        assert first.reconcile.pods_created == 2
        assert first.reconcile.jobs_rolled_back == ()

        # The overcommitting decision must not blow up the loop.
        second = loop.step(views, progress={"a": 500.0})
        assert second.reconcile.jobs_rolled_back == ("a",)
        assert second.reconcile.pods_created == 0

        events = tracer.of_type(EVENT_RESCALE_ROLLED_BACK)
        assert [e["job_id"] for e in events] == ["a"]
        counters = metrics.snapshot()["counters"]
        assert counters["loop.rescale_rollbacks"] == 1
        # The job still runs on its previous pods.
        assert len([p for p in api.list_pods(job_id="a") if p.bound]) == 2
        # Progress made it into the checkpoint before the failed teardown.
        assert loop.controller.load_checkpoint("a") == 500.0


class TestRecover:
    def test_missing_checkpoint_traced_and_counted(self, api):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        loop = ControlLoop(
            api, FlipFlopScheduler(), tracer=tracer, metrics=metrics
        )
        loop.controller.save_checkpoint("a", 1234.0)

        adopted = loop.recover(["a", "b"])
        assert adopted == {"a": 1234.0, "b": 0.0}
        events = tracer.of_type(EVENT_CHECKPOINT_MISSING)
        assert [e["job_id"] for e in events] == ["b"]
        assert metrics.snapshot()["counters"]["loop.checkpoints_missing"] == 1

    def test_no_events_when_all_checkpoints_present(self, api):
        tracer = RecordingTracer()
        loop = ControlLoop(api, FlipFlopScheduler(), tracer=tracer)
        loop.controller.save_checkpoint("a", 10.0)
        assert loop.recover(["a"]) == {"a": 10.0}
        assert tracer.of_type(EVENT_CHECKPOINT_MISSING) == []


class TestNodeReRegistration:
    def test_identical_reregistration_is_idempotent(self, api):
        api.create_pod(
            PodSpec(
                name="j/worker-0",
                job_id="j",
                role="worker",
                index=0,
                demand=cpu_mem(4, 8),
            )
        )
        api.bind_pod("j/worker-0", "n0")
        before = api.node("n0").allocatable

        node = api.register_node("n0", cpu_mem(16, 64))
        # Allocation record survived the re-announce.
        assert node.allocatable == before == cpu_mem(12, 56)

    def test_conflicting_capacity_rejected(self, api):
        with pytest.raises(KVStoreError):
            api.register_node("n0", cpu_mem(8, 32))
        # The original record is untouched.
        assert api.node("n0").capacity == cpu_mem(16, 64)


class TestWatcherIsolation:
    def test_one_bad_watcher_does_not_starve_the_rest(self):
        store = KVStore()
        seen = []

        def bad(event):
            raise RuntimeError("watcher bug")

        store.watch("/k", bad)
        store.watch("/k", seen.append)

        with pytest.raises(KVStoreError) as excinfo:
            store.put("/k1", "v")
        # The mutation landed and the healthy watcher heard about it.
        assert store.get("/k1") == "v"
        assert store.revision == 1
        assert [e.key for e in seen] == ["/k1"]
        assert "watcher callback(s) failed" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_all_failures_aggregated(self):
        store = KVStore()

        def bad(event):
            raise RuntimeError("boom")

        store.watch("/k", bad)
        store.watch("/k", bad)
        with pytest.raises(KVStoreError, match="2 watcher"):
            store.put("/k1", "v")
