"""End-to-end observability: a traced 2-job simulation run.

Asserts the event stream a small oracle-mode run produces: the expected
event sequence per job, the per-interval ticks with phase timings, the
metrics counters, and that attaching the sinks does not perturb the
simulation itself.
"""

import pytest

from repro.cluster import Cluster, cpu_mem
from repro.obs import (
    EVENT_ALLOCATION_DECIDED,
    EVENT_INTERVAL_TICK,
    EVENT_JOB_ARRIVED,
    EVENT_JOB_COMPLETED,
    EVENT_JOB_RESCALED,
    EVENT_PLACEMENT_DECIDED,
    MetricsRegistry,
    RecordingTracer,
)
from repro.schedulers import make_scheduler
from repro.sim import SimConfig, simulate
from repro.workloads import uniform_arrivals


def run_traced(seed=3, num_jobs=2, **cfg):
    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    jobs = uniform_arrivals(
        num_jobs=num_jobs, window=900, seed=seed, models=["cnn-rand", "dssm"]
    )
    cluster = Cluster.homogeneous(4, cpu_mem(16, 64))
    config = SimConfig(seed=seed, estimator_mode="oracle", **cfg)
    result = simulate(
        cluster, make_scheduler("optimus"), jobs, config,
        tracer=tracer, metrics=metrics,
    )
    return result, tracer, metrics


@pytest.fixture(scope="module")
def traced():
    return run_traced()


class TestTwoJobTrace:
    def test_every_job_arrives_then_completes(self, traced):
        result, tracer, _ = traced
        assert result.all_finished
        for job_id in result.jobs:
            events = [e["event"] for e in tracer.for_job(job_id)]
            assert events[0] == EVENT_JOB_ARRIVED
            assert events[-1] == EVENT_JOB_COMPLETED
            assert events.count(EVENT_JOB_ARRIVED) == 1
            assert events.count(EVENT_JOB_COMPLETED) == 1

    def test_allocation_precedes_placement_each_interval(self, traced):
        _, tracer, _ = traced
        allocations = tracer.of_type(EVENT_ALLOCATION_DECIDED)
        placements = tracer.of_type(EVENT_PLACEMENT_DECIDED)
        assert allocations and placements
        # For a given job at a given time, allocation_decided comes first.
        placed = {(e["time"], e["job_id"]): e["seq"] for e in placements}
        for event in allocations:
            key = (event["time"], event["job_id"])
            if key in placed:
                assert event["seq"] < placed[key]

    def test_allocation_events_carry_worker_ps_counts(self, traced):
        _, tracer, _ = traced
        for event in tracer.of_type(EVENT_ALLOCATION_DECIDED):
            assert event["workers"] >= 1
            assert event["ps"] >= 1
        for event in tracer.of_type(EVENT_PLACEMENT_DECIDED):
            assert event["servers"] >= 1
            assert isinstance(event["layout"], dict) and event["layout"]

    def test_rescale_events_match_job_records(self, traced):
        result, tracer, _ = traced
        for job_id, record in result.jobs.items():
            rescales = [
                e for e in tracer.for_job(job_id)
                if e["event"] == EVENT_JOB_RESCALED
            ]
            # num_scalings counts allocation changes *and* pause-resumes
            # (but not the first launch); the event fires only on changes.
            assert len(rescales) <= record.num_scalings
            for event in rescales:
                assert event["old"] != event["new"]
                assert event["overhead"] >= 0.0

    def test_interval_ticks_carry_phase_timings(self, traced):
        _, tracer, _ = traced
        ticks = tracer.of_type(EVENT_INTERVAL_TICK)
        assert ticks
        for tick in ticks:
            assert tick["active_jobs"] >= 0
            assert set(tick["phases"]) <= {
                "fit", "snapshot", "schedule", "allocate", "place", "progress"
            }
        busy = [t for t in ticks if t["running_jobs"] > 0]
        assert busy, "at least one interval should run jobs"
        for tick in busy:
            assert {"fit", "snapshot", "schedule", "progress"} <= set(tick["phases"])
            assert all(v >= 0.0 for v in tick["phases"].values())

    def test_seq_strictly_increasing_and_time_monotone(self, traced):
        _, tracer, _ = traced
        seqs = [e["seq"] for e in tracer.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        times = [e["time"] for e in tracer.events]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_metrics_agree_with_trace(self, traced):
        result, tracer, metrics = traced
        snap = metrics.snapshot()
        counters = snap["counters"]
        assert counters["engine.jobs_admitted"] == len(result.jobs) == 2
        assert counters["engine.jobs_completed"] == 2
        assert counters["engine.intervals"] == len(
            tracer.of_type(EVENT_INTERVAL_TICK)
        )
        assert counters["allocation.rounds"] >= 1
        assert counters["placement.rounds"] >= 1
        # Phase histograms exist for the phases the engine timed.
        assert any(name.startswith("phase.") for name in snap["histograms"])

    def test_phase_timings_surface_in_result(self, traced):
        result, _, _ = traced
        assert result.phase_timings
        for stats in result.phase_timings.values():
            assert stats["count"] >= 1
            assert stats["total"] >= 0.0
            assert stats["max"] <= stats["total"] + 1e-12


class TestObservabilityIsInert:
    def test_tracing_does_not_change_results(self):
        def once(**sinks):
            return simulate(
                Cluster.homogeneous(4, cpu_mem(16, 64)),
                make_scheduler("optimus"),
                uniform_arrivals(
                    num_jobs=2, window=900, seed=3, models=["cnn-rand", "dssm"]
                ),
                SimConfig(seed=3, estimator_mode="oracle", record_decisions=True),
                **sinks,
            )

        plain = once()
        traced = once(tracer=RecordingTracer(), metrics=MetricsRegistry())
        assert plain.average_jct == traced.average_jct
        assert plain.makespan == traced.makespan
        assert plain.decisions == traced.decisions
        assert {j: r.completion_time for j, r in plain.jobs.items()} == {
            j: r.completion_time for j, r in traced.jobs.items()
        }
        assert plain.phase_timings is None
        assert traced.phase_timings

    def test_default_run_emits_nothing(self):
        from repro.obs import NULL_REGISTRY
        from repro.obs.registry import active_registry

        jobs = uniform_arrivals(
            num_jobs=1, window=100, seed=1, models=["cnn-rand"]
        )
        result = simulate(
            Cluster.homogeneous(2, cpu_mem(16, 64)),
            make_scheduler("optimus"),
            jobs,
            SimConfig(seed=1, estimator_mode="oracle"),
        )
        assert result.phase_timings is None
        assert active_registry() is NULL_REGISTRY
